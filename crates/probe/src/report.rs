//! The merged outcome of the runtime analysis.

use crate::snapshot::ObservedSocket;
use std::collections::BTreeMap;

/// Runtime observation for one pod.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PodRuntime {
    /// Sockets present in both runs: the application's steady listeners.
    pub stable: Vec<ObservedSocket>,
    /// Ephemeral-range sockets present in exactly one run: dynamic ports
    /// (the paper's M2 evidence).
    pub dynamic: Vec<ObservedSocket>,
}

impl PodRuntime {
    /// All observed sockets, stable first.
    pub fn all_ports(&self) -> impl Iterator<Item = &ObservedSocket> {
        self.stable.iter().chain(self.dynamic.iter())
    }

    /// True when the pod holds a stable listener on this port/protocol.
    pub fn has_stable(&self, socket: ObservedSocket) -> bool {
        self.stable.contains(&socket)
    }

    /// True when any dynamic port was observed.
    pub fn has_dynamic_ports(&self) -> bool {
        !self.dynamic.is_empty()
    }
}

/// Runtime observations for every pod of an installation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeReport {
    /// Pod qualified name → runtime observation.
    pub pods: BTreeMap<String, PodRuntime>,
    /// Spurious UDP observations dropped by the flakiness filter.
    pub udp_noise_filtered: usize,
}

impl RuntimeReport {
    /// Observation for one pod.
    pub fn pod(&self, qualified: &str) -> Option<&PodRuntime> {
        self.pods.get(qualified)
    }

    /// Total stable sockets across pods.
    pub fn stable_count(&self) -> usize {
        self.pods.values().map(|p| p.stable.len()).sum()
    }

    /// Total dynamic sockets across pods.
    pub fn dynamic_count(&self) -> usize {
        self.pods.values().map(|p| p.dynamic.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut report = RuntimeReport::default();
        report.pods.insert(
            "default/a".into(),
            PodRuntime {
                stable: vec![ObservedSocket::tcp(80), ObservedSocket::tcp(443)],
                dynamic: vec![ObservedSocket::tcp(40000)],
            },
        );
        report.pods.insert(
            "default/b".into(),
            PodRuntime {
                stable: vec![ObservedSocket::udp(53)],
                dynamic: vec![],
            },
        );
        assert_eq!(report.stable_count(), 3);
        assert_eq!(report.dynamic_count(), 1);
        assert!(report.pod("default/a").unwrap().has_dynamic_ports());
        assert!(report
            .pod("default/b")
            .unwrap()
            .has_stable(ObservedSocket::udp(53)));
        assert!(report.pod("default/c").is_none());
    }
}
