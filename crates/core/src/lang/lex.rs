//! Tokenizer for the rule expression language.
//!
//! Hand-rolled (no parser-generator dependency): a single pass over the
//! source that tracks byte offsets *and* 1-based line/column positions, so
//! every token — and every error — carries a [`Span`] the CLI can render.

use std::fmt;

/// A source region: byte offset + length (for slicing the original text)
/// and 1-based line/column (for human-readable diagnostics). Offsets always
/// fall on `char` boundaries, columns count characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub offset: usize,
    /// Byte length of the region.
    pub len: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub column: u32,
}

impl Span {
    /// A span covering `self` through the end of `other`.
    pub(crate) fn through(self, other: Span) -> Span {
        Span {
            offset: self.offset,
            len: (other.offset + other.len).saturating_sub(self.offset),
            line: self.line,
            column: self.column,
        }
    }

    /// The source text under this span.
    pub(crate) fn slice(self, src: &str) -> &str {
        src.get(self.offset..self.offset + self.len).unwrap_or("")
    }
}

/// A typed error from any language stage (lex, parse, type-check, pack
/// load), positioned by a [`Span`]. The `Display` form leads with the
/// position so CLI consumers render it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl LangError {
    pub(crate) fn new(message: impl Into<String>, span: Span) -> Self {
        LangError {
            message: message.into(),
            span,
        }
    }

    /// Re-anchors the error into an enclosing document: the expression was
    /// embedded at `line` (1-based), starting at character `column_offset`.
    pub(crate) fn relocate(mut self, line: u32, column_offset: u32) -> Self {
        if self.span.line == 1 {
            self.span.column += column_offset;
        }
        self.span.line += line - 1;
        self
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.span.line, self.span.column, self.message
        )
    }
}

impl std::error::Error for LangError {}

/// Token kinds. `CONTAINS`/`IN` are keywords (upper-case, like SQL
/// operators) so lower-case identifiers can never collide with them.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    True,
    False,
    Contains,
    In,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Not,
    AndAnd,
    OrOr,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl Tok {
    /// How the token reads in a diagnostic.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Ident(name) => format!("identifier `{name}`"),
            Tok::Number(n) => format!("number `{n}`"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::True => "`true`".to_string(),
            Tok::False => "`false`".to_string(),
            Tok::Contains => "`CONTAINS`".to_string(),
            Tok::In => "`IN`".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::LBracket => "`[`".to_string(),
            Tok::RBracket => "`]`".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::Dot => "`.`".to_string(),
            Tok::Not => "`!`".to_string(),
            Tok::AndAnd => "`&&`".to_string(),
            Tok::OrOr => "`||`".to_string(),
            Tok::EqEq => "`==`".to_string(),
            Tok::NotEq => "`!=`".to_string(),
            Tok::Lt => "`<`".to_string(),
            Tok::LtEq => "`<=`".to_string(),
            Tok::Gt => "`>`".to_string(),
            Tok::GtEq => "`>=`".to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: Tok,
    pub span: Span,
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().peekable(),
            line: 1,
            column: 1,
        }
    }

    /// Consumes one character, keeping line/column in step.
    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        next
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    /// Span for a region starting at (`offset`, `line`, `column`) and
    /// running to the current position.
    fn span_from(&mut self, offset: usize, line: u32, column: u32) -> Span {
        let end = self.chars.peek().map_or(self.src.len(), |&(i, _)| i);
        Span {
            offset,
            len: end - offset,
            line,
            column,
        }
    }

    fn here(&mut self) -> Span {
        let offset = self.chars.peek().map_or(self.src.len(), |&(i, _)| i);
        Span {
            offset,
            len: 0,
            line: self.line,
            column: self.column,
        }
    }
}

/// Tokenizes one expression. Never panics: every malformed input maps to a
/// [`LangError`] with the offending span.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, LangError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        // Skip whitespace.
        while matches!(lx.peek(), Some(c) if c.is_whitespace()) {
            lx.bump();
        }
        let (start_line, start_col) = (lx.line, lx.column);
        let Some((start, c)) = lx.bump() else {
            return Ok(out);
        };
        let single = |lx: &mut Lexer<'_>, kind: Tok| Token {
            kind,
            span: lx.span_from(start, start_line, start_col),
        };
        let tok = match c {
            '(' => single(&mut lx, Tok::LParen),
            ')' => single(&mut lx, Tok::RParen),
            '[' => single(&mut lx, Tok::LBracket),
            ']' => single(&mut lx, Tok::RBracket),
            ',' => single(&mut lx, Tok::Comma),
            '.' => single(&mut lx, Tok::Dot),
            '!' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    single(&mut lx, Tok::NotEq)
                } else {
                    single(&mut lx, Tok::Not)
                }
            }
            '=' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    single(&mut lx, Tok::EqEq)
                } else {
                    let span = lx.span_from(start, start_line, start_col);
                    return Err(LangError::new("expected `==`, found a single `=`", span));
                }
            }
            '<' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    single(&mut lx, Tok::LtEq)
                } else {
                    single(&mut lx, Tok::Lt)
                }
            }
            '>' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    single(&mut lx, Tok::GtEq)
                } else {
                    single(&mut lx, Tok::Gt)
                }
            }
            '&' => {
                if lx.peek() == Some('&') {
                    lx.bump();
                    single(&mut lx, Tok::AndAnd)
                } else {
                    let span = lx.span_from(start, start_line, start_col);
                    return Err(LangError::new("expected `&&`, found a single `&`", span));
                }
            }
            '|' => {
                if lx.peek() == Some('|') {
                    lx.bump();
                    single(&mut lx, Tok::OrOr)
                } else {
                    let span = lx.span_from(start, start_line, start_col);
                    return Err(LangError::new("expected `||`, found a single `|`", span));
                }
            }
            '"' => {
                let mut text = String::new();
                loop {
                    match lx.bump() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match lx.bump() {
                            Some((_, '"')) => text.push('"'),
                            Some((_, '\\')) => text.push('\\'),
                            Some((_, 'n')) => text.push('\n'),
                            Some((_, 't')) => text.push('\t'),
                            Some((_, 'r')) => text.push('\r'),
                            Some((_, other)) => {
                                let span = lx.span_from(start, start_line, start_col);
                                return Err(LangError::new(
                                    format!("unsupported escape `\\{other}` in string literal"),
                                    span,
                                ));
                            }
                            None => {
                                let span = lx.span_from(start, start_line, start_col);
                                return Err(LangError::new("unterminated string literal", span));
                            }
                        },
                        Some((_, '\n')) | None => {
                            let span = lx.span_from(start, start_line, start_col);
                            return Err(LangError::new("unterminated string literal", span));
                        }
                        Some((_, other)) => text.push(other),
                    }
                }
                Token {
                    kind: Tok::Str(text),
                    span: lx.span_from(start, start_line, start_col),
                }
            }
            c if c.is_ascii_digit() => {
                while matches!(lx.peek(), Some(d) if d.is_ascii_digit()) {
                    lx.bump();
                }
                if lx.peek() == Some('.') {
                    // Only consume the dot when a digit follows: `8080.port`
                    // must stay an error about `.port`, not eat the dot.
                    let mut ahead = lx.chars.clone();
                    ahead.next();
                    if matches!(ahead.peek(), Some(&(_, d)) if d.is_ascii_digit()) {
                        lx.bump();
                        while matches!(lx.peek(), Some(d) if d.is_ascii_digit()) {
                            lx.bump();
                        }
                    }
                }
                let span = lx.span_from(start, start_line, start_col);
                let text = span.slice(src);
                let value: f64 = text
                    .parse()
                    .map_err(|_| LangError::new(format!("invalid number `{text}`"), span))?;
                Token {
                    kind: Tok::Number(value),
                    span,
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while matches!(lx.peek(), Some(d) if d.is_ascii_alphanumeric() || d == '_') {
                    lx.bump();
                }
                let span = lx.span_from(start, start_line, start_col);
                let kind = match span.slice(src) {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "CONTAINS" => Tok::Contains,
                    "IN" => Tok::In,
                    ident => Tok::Ident(ident.to_string()),
                };
                Token { kind, span }
            }
            other => {
                let span = lx.span_from(start, start_line, start_col);
                return Err(LangError::new(
                    format!("unexpected character `{}`", other.escape_default()),
                    span,
                ));
            }
        };
        out.push(tok);
    }
}

/// A zero-length span at the end of the source, for "expected more input"
/// diagnostics.
pub(crate) fn end_span(src: &str) -> Span {
    let mut lx = Lexer::new(src);
    while lx.bump().is_some() {}
    lx.here()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_carry_line_and_column() {
        let src = "a &&\n  bb";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(
            toks[0].span,
            Span {
                offset: 0,
                len: 1,
                line: 1,
                column: 1
            }
        );
        assert_eq!(toks[1].span.line, 1);
        assert_eq!(toks[1].span.column, 3);
        assert_eq!(
            toks[2].span,
            Span {
                offset: 7,
                len: 2,
                line: 2,
                column: 3
            }
        );
        assert_eq!(toks[2].span.slice(src), "bb");
    }

    #[test]
    fn keywords_and_operators() {
        let toks = tokenize("true CONTAINS IN != <= >= == ! [1, 2.5]").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], Tok::True));
        assert!(matches!(kinds[1], Tok::Contains));
        assert!(matches!(kinds[2], Tok::In));
        assert!(matches!(kinds[3], Tok::NotEq));
        assert!(matches!(kinds[4], Tok::LtEq));
        assert!(matches!(kinds[5], Tok::GtEq));
        assert!(matches!(kinds[6], Tok::EqEq));
        assert!(matches!(kinds[7], Tok::Not));
        assert!(matches!(kinds[8], Tok::LBracket));
        assert!(matches!(kinds[9], Tok::Number(n) if *n == 1.0));
    }

    #[test]
    fn string_escapes_and_errors() {
        let toks = tokenize(r#""a\"b\\c""#).unwrap();
        assert_eq!(toks[0].kind, Tok::Str("a\"b\\c".to_string()));
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("a = b").is_err());
        assert!(tokenize("§").is_err());
        let err = tokenize("  @").unwrap_err();
        assert_eq!(err.span.column, 3);
        assert!(err.to_string().starts_with("line 1, column 3:"));
    }
}
