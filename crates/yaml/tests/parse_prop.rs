//! Fuzz-style hardening suite for the parser and emitter.
//!
//! Unlike `prop.rs`, which checks the emitter/parser pair over the *supported*
//! value domain, this suite throws wild input at the parser: arbitrary bytes,
//! YAML token soup, and mutated real-chart text. The contract under fire:
//!
//! * the parser never panics — every failure is a typed [`ij_yaml::Error`];
//! * unsupported YAML 1.2 constructs (anchors, aliases, tags, directives)
//!   are rejected with an error naming the construct, never mis-parsed;
//! * pathological nesting hits a depth error instead of the stack guard;
//! * wherever parsing *succeeds*, `parse(emit(v)) == v` — the emitter is a
//!   fixpoint over everything the parser can produce.
//!
//! Run with `PROPTEST_CASES=256` (CI) or higher for a deeper sweep.

use ij_yaml::{parse, parse_all, to_string, Value};
use proptest::prelude::*;

/// Realistic chart/manifest text to mutate. Trimmed from the shapes the
/// ingestion fixtures exercise: nested maps, sequences of maps, block
/// scalars, flow collections, comments and multi-document streams.
const CORPUS: &[&str] = &[
    "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web\n  labels:\n    app: web\nspec:\n  replicas: 2\n  template:\n    spec:\n      containers:\n        - name: web\n          image: nginx:1.25\n          ports:\n            - containerPort: 8080\n",
    "kind: Service\nmetadata:\n  name: db\nspec:\n  clusterIP: None\n  ports:\n    - port: 5432\n      targetPort: 5432\n  selector: {app: db, tier: storage}\n",
    "replicaCount: 1\nimage:\n  repository: redis\n  tag: \"7.2\"\nresources:\n  limits:\n    memory: 128Mi\npodAnnotations: {}\ntolerations: []\n",
    "kind: ConfigMap\ndata:\n  nginx.conf: |\n    server {\n      listen 80;\n    }\n  motd: >-\n    welcome to\n    the cluster\n",
    "# default values\nservice:\n  type: ClusterIP # internal only\n  port: 80\ningress:\n  enabled: false\n  hosts:\n    - host: chart.example.local\n      paths: [/, /api]\n",
    "kind: NetworkPolicy\nspec:\n  podSelector:\n    matchLabels:\n      app: web\n  ingress:\n    - from:\n        - podSelector: {}\n      ports:\n        - port: 8080\n          protocol: TCP\n---\nkind: Namespace\nmetadata:\n  name: edge\n",
];

/// Tokens that stress the scalar grammar, indentation handling, flow parsing
/// and the unsupported-construct rejections all at once.
const SOUP: &[&str] = &[
    "key:",
    " ",
    "  ",
    "\n",
    "- ",
    "---\n",
    "...\n",
    "{",
    "}",
    "[",
    "]",
    ",",
    ":",
    "a",
    "0700",
    "-12",
    "3.5",
    "1e9",
    "null",
    "true",
    "\"x\"",
    "'y'",
    "|",
    "|-",
    ">",
    ">-",
    "&anchor",
    "*anchor",
    "!!str",
    "%YAML 1.2",
    "#c",
    "\t",
    "\\",
    "\"",
    "'",
];

fn arb_wild_bytes() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..400)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn arb_token_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(SOUP.to_vec()), 0..60)
        .prop_map(|tokens| tokens.concat())
}

/// A corpus document with a handful of byte-level mutations applied:
/// insert a soup token, delete a span, or duplicate a span.
fn arb_mutated_chart() -> impl Strategy<Value = String> {
    let mutation = (
        0usize..3,
        any::<u16>(),
        any::<u8>(),
        prop::sample::select(SOUP.to_vec()),
    );
    (
        prop::sample::select(CORPUS.to_vec()),
        prop::collection::vec(mutation, 0..6),
    )
        .prop_map(|(base, mutations)| {
            let mut text = base.to_string();
            for (kind, pos, span, token) in mutations {
                if text.is_empty() {
                    text = token.to_string();
                    continue;
                }
                let mut at = pos as usize % text.len();
                while !text.is_char_boundary(at) {
                    at -= 1;
                }
                let mut end = (at + span as usize % 24).min(text.len());
                while !text.is_char_boundary(end) {
                    end -= 1;
                }
                match kind {
                    0 => text.insert_str(at, token),
                    1 => text.replace_range(at..end, ""),
                    _ => {
                        let dup = text[at..end].to_string();
                        text.insert_str(at, &dup);
                    }
                }
            }
            text
        })
}

/// Every successfully parsed document must survive emit + reparse exactly.
fn assert_fixpoint(src: &str) {
    let Ok(docs) = parse_all(src) else { return };
    for doc in &docs {
        let text = to_string(doc);
        let back =
            parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n--- emitted ---\n{text}"));
        assert_eq!(&back, doc, "fixpoint broken; emitted:\n{text}");
    }
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(src in arb_wild_bytes()) {
        let _ = parse_all(&src);
    }

    #[test]
    fn parser_never_panics_on_token_soup(src in arb_token_soup()) {
        let _ = parse_all(&src);
    }

    #[test]
    fn parser_never_panics_on_mutated_charts(src in arb_mutated_chart()) {
        let _ = parse_all(&src);
    }

    #[test]
    fn fixpoint_holds_on_arbitrary_bytes(src in arb_wild_bytes()) {
        assert_fixpoint(&src);
    }

    #[test]
    fn fixpoint_holds_on_token_soup(src in arb_token_soup()) {
        assert_fixpoint(&src);
    }

    #[test]
    fn fixpoint_holds_on_mutated_charts(src in arb_mutated_chart()) {
        assert_fixpoint(&src);
    }
}

#[test]
fn corpus_documents_are_fixpoints() {
    for src in CORPUS {
        assert_fixpoint(src);
    }
}

#[test]
fn deep_block_mapping_is_a_typed_error() {
    let mut src = String::new();
    for depth in 0..2_000 {
        src.push_str(&"  ".repeat(depth));
        src.push_str("a:\n");
    }
    let err = parse(&src).expect_err("2000-deep mapping must not parse");
    assert!(err.to_string().contains("depth"), "unexpected error: {err}");
}

#[test]
fn deep_block_sequence_is_a_typed_error() {
    let mut src = String::new();
    for depth in 0..2_000 {
        src.push_str(&"  ".repeat(depth));
        src.push_str("-\n");
    }
    let err = parse(&src).expect_err("2000-deep sequence must not parse");
    assert!(err.to_string().contains("depth"), "unexpected error: {err}");
}

#[test]
fn deep_flow_nesting_is_a_typed_error() {
    let src = format!("a: {}", "[".repeat(10_000));
    let err = parse(&src).expect_err("10000-deep flow must not parse");
    assert!(err.to_string().contains("depth"), "unexpected error: {err}");

    let src = format!("a: {}", "{x: ".repeat(10_000));
    let err = parse(&src).expect_err("10000-deep flow mapping must not parse");
    assert!(err.to_string().contains("depth"), "unexpected error: {err}");
}

#[test]
fn reference_constructs_are_named_in_errors() {
    for (src, needle) in [
        ("defaults: &shared\n  cpu: 100m\n", "anchor"),
        ("limits: *shared\n", "alias"),
        ("value: !!str 42\n", "tag"),
        ("%YAML 1.2\n", "directive"),
        ("- &a 1\n", "anchor"),
        ("x: [*ref]\n", "alias"),
    ] {
        let err = parse(src).expect_err(src);
        assert!(
            err.to_string().contains(needle),
            "error for {src:?} should mention {needle}, got: {err}"
        );
    }
}

#[test]
fn overflowing_floats_stay_strings() {
    let huge = format!("big: 1{}.0\n", "0".repeat(400));
    let v = parse(&huge).expect("overlong float parses as a string");
    let s = v.path(&["big"]).and_then(Value::as_str).expect("string");
    assert!(s.starts_with("10"), "kept verbatim, got: {s}");
    assert_fixpoint(&huge);
}
