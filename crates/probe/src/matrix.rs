//! The batch reachability matrix: every (source, destination, socket)
//! verdict in one pass over the compiled policy index.
//!
//! The per-pair probe (`Cluster::connect` in a loop) answers the paper's
//! §4.3.2 question one connection at a time; for a census that is
//! O(pods² × sockets) policy evaluations. [`ReachMatrix`] instead walks
//! each destination socket once, asks the cluster's cached
//! [`PolicyIndex`](ij_cluster::PolicyIndex) for the whole *column* of
//! allowed sources ([`PolicyIndex::allowed_sources`]), and stores it as a
//! bitset — after which every reachability query is a bit probe.
//!
//! The matrix is a snapshot: it answers for the cluster state at
//! [`ReachMatrix::compute`] time. Results are bit-for-bit identical to the
//! sequential per-pair probe (property-tested in `tests/prop_reach.rs`).

use crate::reach::ReachableEndpoint;
use ij_cluster::{Cluster, PodSet, PolicyIndex};
use ij_model::Protocol;
use std::sync::Arc;

/// One destination pod's row: its probeable sockets and, per socket, the
/// sources allowed by policy to connect.
#[derive(Debug, Clone)]
struct TargetRow {
    /// Non-loopback sockets in the pod's (sorted) socket order.
    sockets: Vec<(u16, Protocol)>,
    /// Per socket: bit `i` set iff pod `i` may connect.
    allowed: Vec<PodSet>,
}

/// The full src × dst × socket reachability of a cluster snapshot.
#[derive(Debug, Clone)]
pub struct ReachMatrix {
    /// The index snapshot the matrix was computed over; also serves the
    /// pod name ↔ index tables (same [`Cluster::pods`] order).
    index: Arc<PolicyIndex>,
    rows: Vec<TargetRow>,
}

impl ReachMatrix {
    /// Computes the matrix for the cluster's current state, sharing the
    /// cluster's cached policy index (one compilation per generation, no
    /// matter how many matrices or probes are taken from it).
    pub fn compute(cluster: &Cluster) -> Self {
        let index = cluster.policy_index();
        let pods = cluster.pods();
        let mut rows = Vec::with_capacity(pods.len());
        for (i, rp) in pods.iter().enumerate() {
            let mut sockets = Vec::new();
            let mut allowed = Vec::new();
            for socket in &rp.sockets {
                if socket.loopback_only {
                    continue;
                }
                sockets.push((socket.port, socket.protocol));
                allowed.push(index.allowed_sources(i, socket.port, socket.protocol));
            }
            rows.push(TargetRow { sockets, allowed });
        }
        ReachMatrix { index, rows }
    }

    /// Number of pods in the snapshot.
    pub fn pod_count(&self) -> usize {
        self.rows.len()
    }

    /// Index of a pod by qualified `namespace/name`.
    pub fn pod_index(&self, qualified: &str) -> Option<usize> {
        self.index.pod_index(qualified)
    }

    /// Qualified name of the pod at `index`.
    pub fn pod_name(&self, index: usize) -> &str {
        self.index.pod_name(index)
    }

    /// The probeable (non-loopback) sockets of the pod at `dst`.
    pub fn sockets(&self, dst: usize) -> &[(u16, Protocol)] {
        &self.rows[dst].sockets
    }

    /// The sources allowed by policy on the `k`-th socket of `dst`.
    pub fn allowed_sources(&self, dst: usize, k: usize) -> &PodSet {
        &self.rows[dst].allowed[k]
    }

    /// True when `src` would successfully connect to `dst` on
    /// `(port, protocol)` — i.e. a socket is open there and policy admits
    /// the source. Matches `Cluster::connect == Some(Connected)`.
    pub fn connected(&self, src: usize, dst: usize, port: u16, protocol: Protocol) -> bool {
        let row = &self.rows[dst];
        row.sockets
            .iter()
            .position(|&(p, proto)| p == port && proto == protocol)
            .is_some_and(|k| row.allowed[k].contains(src))
    }

    /// Number of distinct sources that may reach *any* socket of `dst` —
    /// the exposure breadth of one pod under the current policies. Runs on
    /// the [`PodSet`] block kernels: the common one- and two-socket rows
    /// use the fused [`PodSet::union_count`] (no temporary set at all);
    /// wider rows fold the columns with block-wise unions.
    pub fn sources_reaching_any(&self, dst: usize) -> usize {
        let allowed = &self.rows[dst].allowed;
        match allowed.as_slice() {
            [] => 0,
            [only] => only.count(),
            [a, b] => a.union_count(b),
            [first, rest @ ..] => {
                let mut union = first.clone();
                for set in rest {
                    union.union_with(set);
                }
                union.count()
            }
        }
    }

    /// Name-based convenience form of [`connected`](Self::connected).
    pub fn reaches(&self, src: &str, dst: &str, port: u16, protocol: Protocol) -> bool {
        match (self.pod_index(src), self.pod_index(dst)) {
            (Some(s), Some(d)) => self.connected(s, d, port, protocol),
            _ => false,
        }
    }

    /// Every endpoint reachable from `src`, in the canonical
    /// (pod, port) order of the sequential probe.
    pub fn reachable_from(&self, src: &str) -> Vec<ReachableEndpoint> {
        let mut out = Vec::new();
        let Some(src_idx) = self.pod_index(src) else {
            return out;
        };
        for (dst, row) in self.rows.iter().enumerate() {
            if dst == src_idx {
                continue;
            }
            for (k, &(port, protocol)) in row.sockets.iter().enumerate() {
                if row.allowed[k].contains(src_idx) {
                    out.push(ReachableEndpoint {
                        pod: self.index.pod_name(dst).to_string(),
                        port,
                        protocol,
                    });
                }
            }
        }
        out.sort_by(|a, b| (&a.pod, a.port).cmp(&(&b.pod, b.port)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig, ConnectOutcome};
    use ij_model::{
        Container, ContainerPort, LabelSelector, Labels, NetworkPolicy, Object, ObjectMeta, Pod,
        PodSpec,
    };

    fn demo_cluster() -> Cluster {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            seed: 9,
            behaviors: BehaviorRegistry::new(),
        });
        for (name, port) in [("web", 8080u16), ("db", 5432)] {
            cluster
                .apply(Object::Pod(Pod::new(
                    ObjectMeta::named(name).with_labels(Labels::from_pairs([("app", name)])),
                    PodSpec {
                        containers: vec![Container::new(name, format!("img/{name}"))
                            .with_ports(vec![ContainerPort::tcp(port)])],
                        ..Default::default()
                    },
                )))
                .unwrap();
        }
        cluster.reconcile();
        cluster
    }

    #[test]
    fn matrix_agrees_with_connect() {
        let mut cluster = demo_cluster();
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                ObjectMeta::named("lock-db"),
                LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
            )))
            .unwrap();
        let matrix = ReachMatrix::compute(&cluster);
        for src in cluster.pods() {
            for dst in cluster.pods() {
                if src.qualified_name() == dst.qualified_name() {
                    continue;
                }
                for socket in &dst.sockets {
                    let expected = cluster.connect(
                        &src.qualified_name(),
                        &dst.qualified_name(),
                        socket.port,
                        socket.protocol,
                    ) == Some(ConnectOutcome::Connected);
                    assert_eq!(
                        matrix.reaches(
                            &src.qualified_name(),
                            &dst.qualified_name(),
                            socket.port,
                            socket.protocol,
                        ),
                        expected,
                        "{} -> {}:{}",
                        src.qualified_name(),
                        dst.qualified_name(),
                        socket.port
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_is_a_snapshot() {
        let mut cluster = demo_cluster();
        let before = ReachMatrix::compute(&cluster);
        assert!(before.reaches("default/web", "default/db", 5432, Protocol::Tcp));
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                ObjectMeta::named("lock-db"),
                LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
            )))
            .unwrap();
        // The old snapshot still answers for the old state …
        assert!(before.reaches("default/web", "default/db", 5432, Protocol::Tcp));
        // … and a fresh one sees the policy (generation bump recompiled).
        let after = ReachMatrix::compute(&cluster);
        assert!(!after.reaches("default/web", "default/db", 5432, Protocol::Tcp));
    }

    #[test]
    fn sources_reaching_any_matches_per_socket_columns() {
        let mut cluster = demo_cluster();
        // Lock db down to nothing so the two pods differ in exposure.
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                ObjectMeta::named("lock-db"),
                LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
            )))
            .unwrap();
        let matrix = ReachMatrix::compute(&cluster);
        for dst in 0..matrix.pod_count() {
            // Reference: the union of the socket columns, bit by bit.
            let expected = (0..matrix.pod_count())
                .filter(|&src| {
                    (0..matrix.sockets(dst).len())
                        .any(|k| matrix.allowed_sources(dst, k).contains(src))
                })
                .count();
            assert_eq!(matrix.sources_reaching_any(dst), expected, "dst={dst}");
        }
    }

    #[test]
    fn unknown_pods_are_unreachable() {
        let cluster = demo_cluster();
        let matrix = ReachMatrix::compute(&cluster);
        assert!(!matrix.reaches("default/ghost", "default/db", 5432, Protocol::Tcp));
        assert!(matrix.reachable_from("default/ghost").is_empty());
        assert_eq!(matrix.pod_index("default/ghost"), None);
    }
}
