//! The validating admission controller.

use ij_cluster::{AdmissionController, AdmissionOutcome, AdmissionReview};
use ij_core::StaticModel;
use ij_model::Object;

/// Which checks the guard enforces, and how.
#[derive(Debug, Clone)]
pub struct GuardPolicy {
    /// Deny instead of warn.
    pub enforce: bool,
    /// Check new compute units for label collisions with existing ones
    /// (M4A within a release, M4\* across releases).
    pub check_label_collisions: bool,
    /// Check new services for empty/unmatched selectors (M5D). Services
    /// applied before their workloads are common, so this check only fires
    /// on selectors that are literally empty or that collide with nothing
    /// *and* the policy says to be strict about ordering.
    pub check_service_targets: bool,
    /// Check new services for numeric targets no selected unit declares
    /// (M5B).
    pub check_undeclared_targets: bool,
    /// Strict ordering mode: also deny services whose (non-empty) selector
    /// matches no *existing* compute unit (M5D). Off by default because
    /// installers may legitimately apply services before their workloads.
    pub check_unmatched_selectors: bool,
    /// Flag hostNetwork pod templates (M7).
    pub check_host_network: bool,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            enforce: true,
            check_label_collisions: true,
            check_service_targets: true,
            check_undeclared_targets: true,
            check_unmatched_selectors: false,
            check_host_network: true,
        }
    }
}

impl GuardPolicy {
    /// A warn-only posture (audit mode).
    pub fn audit_only() -> Self {
        GuardPolicy {
            enforce: false,
            ..Default::default()
        }
    }
}

/// The admission controller; plug into
/// [`ij_cluster::Cluster::push_admission`].
#[derive(Debug, Clone, Default)]
pub struct GuardAdmission {
    /// Enforcement policy.
    pub policy: GuardPolicy,
}

impl GuardAdmission {
    /// Creates a guard with the given policy.
    pub fn new(policy: GuardPolicy) -> Self {
        GuardAdmission { policy }
    }

    fn violations(&self, review: &AdmissionReview<'_>) -> Vec<String> {
        let existing = StaticModel::from_objects(review.existing);
        let mut out = Vec::new();
        match review.object {
            Object::Workload(_) | Object::Pod(_) => {
                let incoming = StaticModel::from_objects(std::slice::from_ref(review.object));
                let Some(unit) = incoming.units.first() else {
                    return out;
                };
                if self.policy.check_label_collisions && !unit.labels.is_empty() {
                    for other in &existing.units {
                        if other.namespace == unit.namespace
                            && other.labels == unit.labels
                            && other.name != unit.name
                        {
                            out.push(format!(
                                "label collision (M4): `{}` would carry the identical label set \
                                 `{}` as existing unit `{}`",
                                unit.name, unit.labels, other.name
                            ));
                        }
                    }
                    // A new unit sliding under an existing service's selector
                    // is the Thanos-style impersonation vector (§2.1.2).
                    for svc in &existing.services {
                        if !svc.spec.selector.is_empty()
                            && svc.meta.namespace == unit.namespace
                            && unit.labels.contains_all(&svc.spec.selector)
                        {
                            let legitimate = existing.units.iter().any(|u| {
                                u.namespace == svc.meta.namespace
                                    && u.labels.contains_all(&svc.spec.selector)
                            });
                            if legitimate {
                                out.push(format!(
                                    "service capture (M4): `{}` would join the backend set of \
                                     service `{}` alongside its existing targets",
                                    unit.name,
                                    svc.meta.qualified_name()
                                ));
                            }
                        }
                    }
                }
                if self.policy.check_host_network && unit.host_network {
                    out.push(format!(
                        "host network (M7): `{}` binds to the host network namespace, \
                         bypassing NetworkPolicies",
                        unit.name
                    ));
                }
            }
            Object::Service(svc) => {
                if self.policy.check_service_targets && svc.spec.selector.is_empty() {
                    out.push(format!(
                        "service without target (M5D): `{}` has no selector",
                        svc.meta.qualified_name()
                    ));
                }
                if self.policy.check_unmatched_selectors && !svc.spec.selector.is_empty() {
                    let matches_any = existing.units.iter().any(|u| {
                        u.namespace == svc.meta.namespace
                            && u.labels.contains_all(&svc.spec.selector)
                    });
                    if !matches_any {
                        out.push(format!(
                            "service without target (M5D): `{}` selector `{}` matches no \
                             existing compute unit",
                            svc.meta.qualified_name(),
                            svc.spec.selector
                        ));
                    }
                }
                if self.policy.check_undeclared_targets && !svc.spec.selector.is_empty() {
                    let selected: Vec<_> = existing
                        .units
                        .iter()
                        .filter(|u| {
                            u.namespace == svc.meta.namespace
                                && u.labels.contains_all(&svc.spec.selector)
                        })
                        .collect();
                    if !selected.is_empty() {
                        for sp in &svc.spec.ports {
                            if let ij_model::TargetPort::Number(target) = sp.target_port {
                                let declared =
                                    selected.iter().any(|u| u.declares(target, sp.protocol));
                                if !declared {
                                    out.push(format!(
                                        "undeclared target (M5B): service `{}` forwards to \
                                         {target}/{} which no selected unit declares",
                                        svc.meta.qualified_name(),
                                        sp.protocol
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }
}

impl AdmissionController for GuardAdmission {
    fn name(&self) -> &str {
        "ij-guard"
    }

    fn review(&self, review: &AdmissionReview<'_>) -> AdmissionOutcome {
        let violations = self.violations(review);
        if violations.is_empty() {
            AdmissionOutcome::Allow
        } else if self.policy.enforce {
            AdmissionOutcome::Deny(violations.join("; "))
        } else {
            AdmissionOutcome::Warn(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_cluster::{Cluster, ClusterConfig, InstallError};
    use ij_model::{
        Container, ContainerPort, Labels, ObjectMeta, Pod, PodSpec, Service, ServicePort,
    };

    fn guarded_cluster(policy: GuardPolicy) -> Cluster {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.push_admission(Box::new(GuardAdmission::new(policy)));
        cluster
    }

    fn web_pod(name: &str, labels: &[(&str, &str)]) -> Object {
        Object::Pod(Pod::new(
            ObjectMeta::named(name).with_labels(Labels::from_pairs(labels.iter().copied())),
            PodSpec {
                containers: vec![Container::new("c", "img/web")
                    .with_ports(vec![ContainerPort::named("http", 8080)])],
                ..Default::default()
            },
        ))
    }

    #[test]
    fn blocks_identical_label_sets() {
        let mut cluster = guarded_cluster(GuardPolicy::default());
        cluster.apply(web_pod("legit", &[("app", "web")])).unwrap();
        let err = cluster
            .apply(web_pod("imposter", &[("app", "web")]))
            .unwrap_err();
        assert!(matches!(err, InstallError::Denied { .. }));
        assert!(err.to_string().contains("M4"));
    }

    #[test]
    fn blocks_service_capture() {
        let mut cluster = guarded_cluster(GuardPolicy::default());
        cluster
            .apply(web_pod("legit", &[("app", "web"), ("tier", "x")]))
            .unwrap();
        cluster
            .apply(Object::Service(Service::cluster_ip(
                ObjectMeta::named("web"),
                Labels::from_pairs([("app", "web")]),
                vec![ServicePort::tcp_to(80, 8080)],
            )))
            .unwrap();
        // Different full label set (so no identical-set collision), but the
        // selector still captures it → impersonation vector, denied.
        let err = cluster
            .apply(web_pod("imposter", &[("app", "web"), ("evil", "yes")]))
            .unwrap_err();
        assert!(err.to_string().contains("service capture"));
    }

    #[test]
    fn blocks_selectorless_service() {
        let mut cluster = guarded_cluster(GuardPolicy::default());
        let err = cluster
            .apply(Object::Service(Service::cluster_ip(
                ObjectMeta::named("ghost"),
                Labels::new(),
                vec![ServicePort::tcp(80)],
            )))
            .unwrap_err();
        assert!(err.to_string().contains("M5D"));
    }

    #[test]
    fn blocks_undeclared_numeric_target() {
        let mut cluster = guarded_cluster(GuardPolicy::default());
        cluster.apply(web_pod("web", &[("app", "web")])).unwrap();
        let err = cluster
            .apply(Object::Service(Service::cluster_ip(
                ObjectMeta::named("web-bad"),
                Labels::from_pairs([("app", "web")]),
                vec![ServicePort::tcp_to(80, 9999)],
            )))
            .unwrap_err();
        assert!(err.to_string().contains("M5B"));
    }

    #[test]
    fn allows_well_formed_objects() {
        let mut cluster = guarded_cluster(GuardPolicy::default());
        cluster.apply(web_pod("web", &[("app", "web")])).unwrap();
        let warnings = cluster
            .apply(Object::Service(Service::cluster_ip(
                ObjectMeta::named("web"),
                Labels::from_pairs([("app", "web")]),
                vec![ServicePort::tcp_to(80, 8080)],
            )))
            .unwrap();
        assert!(warnings.is_empty());
    }

    #[test]
    fn audit_mode_warns_instead_of_denying() {
        let mut cluster = guarded_cluster(GuardPolicy::audit_only());
        cluster.apply(web_pod("legit", &[("app", "web")])).unwrap();
        let warnings = cluster
            .apply(web_pod("imposter", &[("app", "web")]))
            .unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("label collision"));
        assert_eq!(
            cluster.objects().len(),
            2,
            "object persisted under audit mode"
        );
    }

    #[test]
    fn host_network_flagged() {
        let mut cluster = guarded_cluster(GuardPolicy::default());
        let pod = Object::Pod(Pod::new(
            ObjectMeta::named("exporter"),
            PodSpec {
                containers: vec![Container::new("e", "img/exp")],
                host_network: true,
                node_name: None,
            },
        ));
        let err = cluster.apply(pod).unwrap_err();
        assert!(err.to_string().contains("M7"));
    }

    #[test]
    fn checks_can_be_disabled() {
        let policy = GuardPolicy {
            check_host_network: false,
            ..Default::default()
        };
        let mut cluster = guarded_cluster(policy);
        let pod = Object::Pod(Pod::new(
            ObjectMeta::named("exporter"),
            PodSpec {
                containers: vec![Container::new("e", "img/exp")],
                host_network: true,
                node_name: None,
            },
        ));
        assert!(cluster.apply(pod).is_ok());
    }
}
