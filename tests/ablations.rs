//! Ablations of the design choices DESIGN.md calls out, measured against
//! the corpus ground truth (which the real study lacked):
//!
//! 1. hybrid vs static-only vs runtime-only analysis;
//! 2. single vs double runtime pass (M2 recall);
//! 3. UDP flakiness filter on/off (§5.1.2's ~8% false positives);
//! 4. host-baseline subtraction on/off (M7 over-reporting).

use inside_job::chart::Release;
use inside_job::cluster::{Cluster, ClusterConfig};
use inside_job::core::{Analyzer, MisconfigId};
use inside_job::datasets::{
    analyze_one, build_app, corpus, AppSpec, CorpusOptions, NetpolSpec, Org, Plan,
};
use inside_job::probe::{HostBaseline, ProbeConfig, RuntimeAnalyzer};

/// A representative slice: one org's worth of charts is plenty to measure
/// recall differences while keeping the test quick.
fn slice() -> Vec<AppSpec> {
    corpus()
        .into_iter()
        .filter(|a| a.org == Org::Wikimedia || a.org == Org::Cncf)
        .collect()
}

fn recall(analyzer: Analyzer, probe: ProbeConfig) -> (usize, usize) {
    let opts = CorpusOptions {
        analyzer,
        probe,
        ..Default::default()
    };
    let mut found = 0usize;
    let mut expected = 0usize;
    for spec in slice() {
        let built = build_app(&spec);
        let analysis = analyze_one(&built, &opts).expect("corpus app analyzes");
        found += analysis.findings.len();
        expected += spec.plan.expected_local_findings();
    }
    (found, expected)
}

#[test]
fn hybrid_attains_full_recall_on_ground_truth() {
    let (found, expected) = recall(Analyzer::hybrid(), ProbeConfig::default());
    assert_eq!(found, expected);
}

#[test]
fn static_only_misses_runtime_classes() {
    let (found, expected) = recall(Analyzer::static_only(), ProbeConfig::default());
    assert!(
        found < expected,
        "static-only should under-detect: {found} vs {expected}"
    );
    // It must still find everything statically visible.
    let statically_expected: usize = slice()
        .iter()
        .map(|s| {
            MisconfigId::ALL
                .iter()
                .filter(|id| !id.needs_runtime())
                .map(|id| s.plan.expected_of(*id))
                .sum::<usize>()
        })
        .sum();
    assert_eq!(found, statically_expected);
}

#[test]
fn runtime_only_misses_relationship_classes() {
    let (found, expected) = recall(Analyzer::runtime_only(), ProbeConfig::default());
    assert!(found < expected);
    let runtime_expected: usize = slice()
        .iter()
        .map(|s| {
            s.plan.expected_of(MisconfigId::M1)
                + s.plan.expected_of(MisconfigId::M2)
                + s.plan.expected_of(MisconfigId::M3)
        })
        .sum();
    assert_eq!(found, runtime_expected);
}

#[test]
fn single_pass_loses_m2_and_misclassifies_m1() {
    let single = ProbeConfig {
        double_run: false,
        ..Default::default()
    };
    let opts = CorpusOptions {
        probe: single,
        ..Default::default()
    };
    let spec = AppSpec::new(
        "m2-app",
        Org::Cncf,
        "1.0.0",
        Plan {
            m2: 2,
            netpol: NetpolSpec::Enabled { loose: false },
            ..Default::default()
        },
    );
    let built = build_app(&spec);
    let analysis = analyze_one(&built, &opts).expect("corpus app analyzes");
    assert!(
        !analysis.findings.iter().any(|f| f.id == MisconfigId::M2),
        "single pass cannot distinguish dynamic ports"
    );
    // The ephemeral ports instead surface as (misleading) M1 findings.
    assert!(
        analysis.findings.iter().any(|f| f.id == MisconfigId::M1),
        "{:#?}",
        analysis.findings
    );
}

#[test]
fn udp_noise_filter_controls_false_positives() {
    // With injected UDP measurement noise and the filter off, spurious M2
    // findings appear; the filter removes them (§5.1.2: ~8% of raw findings
    // were such artifacts).
    let spec = AppSpec::new(
        "noisy-app",
        Org::Cncf,
        "1.0.0",
        Plan {
            m1: 1,
            netpol: NetpolSpec::Enabled { loose: false },
            ..Default::default()
        },
    );
    let built = build_app(&spec);

    let noisy_unfiltered = CorpusOptions {
        probe: ProbeConfig {
            udp_noise_rate: 1.0,
            filter_udp_flakiness: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let unfiltered = analyze_one(&built, &noisy_unfiltered).expect("corpus app analyzes");
    let spurious: Vec<_> = unfiltered
        .findings
        .iter()
        .filter(|f| f.id == MisconfigId::M2)
        .collect();
    assert!(
        !spurious.is_empty(),
        "noise leaks through without the filter"
    );

    let noisy_filtered = CorpusOptions {
        probe: ProbeConfig {
            udp_noise_rate: 1.0,
            filter_udp_flakiness: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let filtered = analyze_one(&built, &noisy_filtered).expect("corpus app analyzes");
    assert!(
        !filtered.findings.iter().any(|f| f.id == MisconfigId::M2),
        "{:#?}",
        filtered.findings
    );
    assert_eq!(
        filtered.findings.len(),
        spec.plan.expected_local_findings(),
        "with the filter, exactly the ground truth remains"
    );
}

#[test]
fn baseline_subtraction_prevents_m7_overreporting() {
    // A hostNetwork app analyzed without the pre-install baseline blames
    // node daemons (kubelet & co.) on the application as M1 findings.
    let spec = AppSpec::new(
        "hostnet-app",
        Org::Cncf,
        "1.0.0",
        Plan {
            m7: 1,
            netpol: NetpolSpec::Enabled { loose: false },
            ..Default::default()
        },
    );
    let built = build_app(&spec);
    let rendered = built
        .chart()
        .render(&Release::new("hostnet-app", "default"))
        .unwrap();

    let run = |baseline: HostBaseline| {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            seed: 4,
            behaviors: built.registry(),
        });
        let real_baseline = HostBaseline::capture(&cluster);
        cluster.install(&rendered).unwrap();
        let b = if baseline.is_empty() {
            baseline
        } else {
            real_baseline
        };
        let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &b);
        Analyzer::hybrid().analyze_app(
            "hostnet-app",
            &rendered.objects,
            &cluster,
            Some(&runtime),
            true,
        )
    };

    let with_baseline = run(HostBaseline::capture(&Cluster::new(
        ClusterConfig::default(),
    )));
    assert_eq!(
        with_baseline.len(),
        spec.plan.expected_local_findings(),
        "{with_baseline:#?}"
    );

    let without_baseline = run(HostBaseline::empty());
    let m1_spurious = without_baseline
        .iter()
        .filter(|f| f.id == MisconfigId::M1)
        .count();
    assert!(
        m1_spurious >= 3,
        "node daemons leak into the report without subtraction: {without_baseline:#?}"
    );
}

#[test]
fn registry_ablation_drops_exactly_one_class() {
    // 5. per-rule ablations via the RuleRegistry: disabling `m2` must drop
    //    the M2 findings and *only* them, app by app against the ground
    //    truth slice — everything else is byte-identical.
    let full = CorpusOptions::default();
    let ablated = CorpusOptions {
        analyzer: Analyzer::hybrid().without_rule("m2"),
        ..Default::default()
    };
    let mut dropped = 0usize;
    for spec in slice() {
        let built = build_app(&spec);
        let with = analyze_one(&built, &full)
            .expect("corpus app analyzes")
            .findings;
        let without = analyze_one(&built, &ablated)
            .expect("corpus app analyzes")
            .findings;
        let expected: Vec<_> = with
            .iter()
            .filter(|f| f.id != MisconfigId::M2)
            .cloned()
            .collect();
        dropped += with.len() - expected.len();
        assert_eq!(without, expected, "app {}", spec.name);
    }
    assert!(dropped > 0, "the slice must carry M2 findings to ablate");
}
