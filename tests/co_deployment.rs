//! §4.3.2's closing remark: "the results are obtained by deploying a single
//! application in the cluster; the opportunities for reaching misconfigured
//! ports would increase for multiple applications deployed at once."
//!
//! This test co-deploys several charts into one shared cluster and verifies
//! (a) the attacker's reachable misconfigured surface is the union of the
//! per-app surfaces, (b) the cluster-wide M4* collision only exists in the
//! co-deployed setting, and (c) uninstalling a release removes exactly its
//! share of the surface.

use inside_job::chart::Release;
use inside_job::cluster::{BehaviorRegistry, Cluster, ClusterConfig};
use inside_job::core::{Analyzer, MisconfigId, StaticModel};
use inside_job::datasets::{build_app, AppSpec, NetpolSpec, Org, Plan};
use inside_job::model::{Container, Object, ObjectMeta, Pod, PodSpec};
use inside_job::probe::reachable_pod_endpoints;

fn specs() -> Vec<AppSpec> {
    vec![
        AppSpec::new(
            "app-a",
            Org::Cncf,
            "1.0.0",
            Plan {
                m1: 2,
                netpol: NetpolSpec::Missing,
                m4star_tokens: vec!["shared-operator"],
                ..Default::default()
            },
        ),
        AppSpec::new(
            "app-b",
            Org::Cncf,
            "1.0.0",
            Plan {
                m1: 1,
                m2: 1,
                netpol: NetpolSpec::Missing,
                m4star_tokens: vec!["shared-operator"],
                ..Default::default()
            },
        ),
        AppSpec::new(
            "app-c",
            Org::Cncf,
            "1.0.0",
            Plan {
                m7: 1,
                netpol: NetpolSpec::Missing,
                ..Default::default()
            },
        ),
    ]
}

fn co_deployed_cluster() -> (Cluster, Vec<(String, StaticModel)>) {
    let mut registry = BehaviorRegistry::new();
    let builts: Vec<_> = specs().iter().map(build_app).collect();
    for b in &builts {
        for (image, behavior) in &b.behaviors {
            registry.register(image.clone(), behavior.clone());
        }
    }
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 1234,
        behaviors: registry,
    });
    let mut statics = Vec::new();
    for b in &builts {
        let rendered = b
            .chart()
            .render(&Release::new(&b.spec.name, "default"))
            .expect("renders");
        cluster.install(&rendered).expect("no admission");
        statics.push((
            b.spec.name.clone(),
            StaticModel::from_objects(&rendered.objects),
        ));
    }
    cluster
        .apply(Object::Pod(Pod::new(
            ObjectMeta::named("attacker"),
            PodSpec {
                containers: vec![Container::new("sh", "attacker/recon")],
                ..Default::default()
            },
        )))
        .expect("apply attacker");
    cluster.reconcile();
    (cluster, statics)
}

/// Counts attacker-reachable endpoints that are misconfigured (undeclared or
/// ephemeral), attributed per release prefix.
fn misconfigured_surface(cluster: &Cluster) -> Vec<String> {
    let statics = StaticModel::from_objects(cluster.objects());
    let mut out = Vec::new();
    for ep in reachable_pod_endpoints(cluster, "default/attacker") {
        let Some(rp) = cluster.pod(&ep.pod) else {
            continue;
        };
        let unit = rp.owner.clone().unwrap_or_else(|| ep.pod.clone());
        let declared = statics
            .unit(&unit)
            .map(|u| u.declares(ep.port, ep.protocol))
            .unwrap_or(true);
        let ephemeral = rp
            .sockets
            .iter()
            .any(|s| s.port == ep.port && s.protocol == ep.protocol && s.ephemeral);
        if !declared || ephemeral {
            out.push(format!("{}:{}", ep.pod, ep.port));
        }
    }
    out
}

#[test]
fn co_deployment_unions_the_attack_surface() {
    let (cluster, _) = co_deployed_cluster();
    let surface = misconfigured_surface(&cluster);
    // app-a: 2 undeclared ports; app-b: 1 undeclared + 1-2 ephemeral draws
    // (one per snapshot-free ground truth run, i.e. exactly one here).
    let a_hits = surface.iter().filter(|s| s.contains("app-a")).count();
    let b_hits = surface.iter().filter(|s| s.contains("app-b")).count();
    assert_eq!(a_hits, 2, "{surface:?}");
    assert_eq!(b_hits, 2, "undeclared + ephemeral: {surface:?}");
    assert!(surface.len() >= 4, "co-deployed surface is the union");
}

#[test]
fn m4star_exists_only_in_the_co_deployed_view() {
    let (_, statics) = co_deployed_cluster();
    // Per-app (single-application methodology): no M4* can be seen.
    let analyzer = Analyzer::hybrid();
    for (_, model) in &statics {
        let single = analyzer.analyze_global(&[("only".to_string(), model.clone())]);
        assert!(single.is_empty());
    }
    // Cluster-wide pass over the co-deployed set: the shared-operator token
    // collides across app-a and app-b.
    let global = analyzer.analyze_global(&statics);
    assert_eq!(global.len(), 1);
    assert_eq!(global[0].id, MisconfigId::M4Star);
    assert!(global[0].detail.contains("app-a") && global[0].detail.contains("app-b"));
}

#[test]
fn uninstall_removes_exactly_one_apps_surface() {
    let (mut cluster, _) = co_deployed_cluster();
    let before = misconfigured_surface(&cluster);
    assert!(before.iter().any(|s| s.contains("app-a")));

    cluster.uninstall("app-a");
    let after = misconfigured_surface(&cluster);
    assert!(after.iter().all(|s| !s.contains("app-a")), "{after:?}");
    // The other releases' surfaces are untouched.
    let b_before = before.iter().filter(|s| s.contains("app-b")).count();
    let b_after = after.iter().filter(|s| s.contains("app-b")).count();
    assert_eq!(b_before, b_after);
}
