//! `ij` — the command-line interface of the Inside Job analyzer.
//!
//! ```text
//! ij analyze <chart-dir> [--values <file>] [--static-only] [--dot <out.dot>]
//! ij render  <chart-dir> [--values <file>]
//! ij disclose <chart-dir> [--values <file>]
//! ```
//!
//! * `analyze` — render the chart, install it into a fresh simulated
//!   cluster, run the hybrid (or static-only) analyzer, print findings with
//!   severities and mitigations; optionally write the effective-connectivity
//!   DOT graph.
//! * `render` — print the rendered manifests.
//! * `disclose` — produce a responsible-disclosure markdown report for the
//!   chart's findings.
//!
//! Unknown container images behave exactly as declared (no runtime delta),
//! so on-disk charts are analyzed for their *structural* misconfigurations
//! (M4–M7 and service references); pair the library API with a
//! `BehaviorRegistry` to model runtime deltas (M1–M3) for known images.

use inside_job::chart::{Chart, Release};
use inside_job::cluster::{Cluster, ClusterConfig};
use inside_job::core::{
    chart_defines_network_policies, disclosure_report, Analyzer, AppReport, Census,
};
use inside_job::probe::{connectivity_dot, HostBaseline, RuntimeAnalyzer};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    command: String,
    chart_dir: PathBuf,
    values: Option<PathBuf>,
    static_only: bool,
    dot: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ij <analyze|render|disclose> <chart-dir> [--values <file>] [--static-only] [--dot <out.dot>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let chart_dir = PathBuf::from(argv.next()?);
    let mut args = Args {
        command,
        chart_dir,
        values: None,
        static_only: false,
        dot: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--values" => args.values = Some(PathBuf::from(argv.next()?)),
            "--static-only" => args.static_only = true,
            "--dot" => args.dot = Some(PathBuf::from(argv.next()?)),
            _ => return None,
        }
    }
    Some(args)
}

fn load_release(args: &Args, name: &str) -> Result<Release, String> {
    let mut release = Release::new(name, "default");
    if let Some(values_path) = &args.values {
        let src = std::fs::read_to_string(values_path)
            .map_err(|e| format!("{}: {e}", values_path.display()))?;
        release = release.with_values_yaml(&src).map_err(|e| e.to_string())?;
    }
    Ok(release)
}

fn run() -> Result<(), String> {
    let Some(args) = parse_args() else {
        return Err("bad arguments".to_string());
    };
    let chart = Chart::from_dir(Path::new(&args.chart_dir)).map_err(|e| e.to_string())?;
    let release = load_release(&args, &chart.name.clone())?;
    let rendered = chart.render(&release).map_err(|e| e.to_string())?;

    match args.command.as_str() {
        "render" => {
            for obj in &rendered.objects {
                println!("---");
                print!("{}", obj.to_manifest());
            }
            Ok(())
        }
        "analyze" | "disclose" => {
            let mut cluster = Cluster::new(ClusterConfig::default());
            let baseline = HostBaseline::capture(&cluster);
            cluster.install(&rendered).map_err(|e| e.to_string())?;
            let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
            let analyzer = if args.static_only {
                Analyzer::static_only()
            } else {
                Analyzer::hybrid()
            };
            let findings = analyzer.analyze_app(
                &chart.name,
                &rendered.objects,
                &cluster,
                Some(&runtime),
                chart_defines_network_policies(&chart),
            );

            if args.command == "disclose" {
                let census = Census {
                    apps: vec![AppReport {
                        app: chart.name.clone(),
                        dataset: chart.name.clone(),
                        version: chart.version.clone(),
                        findings: findings.clone(),
                    }],
                };
                print!("{}", disclosure_report(&census, &chart.name));
            } else {
                println!(
                    "chart `{}` {} — {} finding(s)",
                    chart.name,
                    chart.version,
                    findings.len()
                );
                for f in &findings {
                    println!(
                        "\n[{}] {:?} — {}",
                        f.id,
                        f.id.severity(),
                        f.id.description()
                    );
                    println!("  object: {}", f.object);
                    println!("  detail: {}", f.detail);
                    println!("  fix:    {}", f.id.mitigation());
                }
            }

            if let Some(dot_path) = &args.dot {
                let dot = connectivity_dot(&cluster);
                std::fs::write(dot_path, dot)
                    .map_err(|e| format!("{}: {e}", dot_path.display()))?;
                eprintln!("wrote connectivity graph to {}", dot_path.display());
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if msg == "bad arguments" {
                return usage();
            }
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
