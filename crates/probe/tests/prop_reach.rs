//! Property suite for the batch [`ReachMatrix`]: on random clusters (pods,
//! namespaces, policies, hostNetwork pods) the matrix must agree with the
//! naive per-pair [`PolicyEngine`] verdict — the oracle the compiled index
//! replaces on the hot path.

use ij_cluster::{Cluster, ClusterConfig, PolicyEngine};
use ij_model::{
    Container, ContainerPort, IpBlock, LabelSelector, Labels, NetworkPolicy, NetworkPolicyPeer,
    NetworkPolicyRule, NetworkPolicySpec, Object, ObjectMeta, Pod, PodSpec, PolicyPort,
    PolicyPortRef, PolicyType, Protocol,
};
use ij_probe::{reachable_pod_endpoints, ReachMatrix, ReachableEndpoint};
use proptest::prelude::*;

fn arb_labels() -> impl Strategy<Value = Labels> {
    prop::collection::btree_map("[ab]", "[xy]", 1..3).prop_map(Labels)
}

fn arb_opt<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), inner).prop_map(|(on, value)| on.then_some(value))
}

fn arb_peer() -> impl Strategy<Value = NetworkPolicyPeer> {
    let ip_block = (
        prop::sample::select(vec![
            "10.244.0.0/16".to_string(),
            "10.244.0.0/28".to_string(),
            "192.168.49.0/24".to_string(),
        ]),
        prop::collection::vec(
            prop::sample::select(vec!["10.244.0.1/32".to_string(), "bogus".to_string()]),
            0..2,
        ),
    )
        .prop_map(|(cidr, except)| IpBlock { cidr, except });
    (
        arb_opt(arb_labels().prop_map(LabelSelector::from_labels)),
        arb_opt(
            prop::sample::select(vec![
                Labels::from_pairs([("team", "sre")]),
                Labels::from_pairs([("kubernetes.io/metadata.name", "default")]),
            ])
            .prop_map(LabelSelector::from_labels),
        ),
        arb_opt(ip_block),
    )
        .prop_map(
            |(pod_selector, namespace_selector, ip_block)| NetworkPolicyPeer {
                pod_selector,
                namespace_selector,
                ip_block,
            },
        )
}

fn arb_rule() -> impl Strategy<Value = NetworkPolicyRule> {
    let port = prop_oneof![
        Just(PolicyPort::tcp(8080)),
        Just(PolicyPort::tcp(9100)),
        Just(PolicyPort {
            protocol: Protocol::Tcp,
            port: Some(PolicyPortRef::Name("http".into())),
            end_port: None,
        }),
        Just(PolicyPort {
            protocol: Protocol::Tcp,
            port: None,
            end_port: None,
        }),
    ];
    (
        prop::collection::vec(arb_peer(), 0..3),
        prop::collection::vec(port, 0..2),
    )
        .prop_map(|(peers, ports)| NetworkPolicyRule { peers, ports })
}

fn arb_policy() -> impl Strategy<Value = NetworkPolicy> {
    (
        prop::sample::select(vec!["default".to_string(), "prod".to_string()]),
        arb_labels(),
        any::<bool>(),
        (any::<bool>(), any::<bool>()),
        prop::collection::vec(arb_rule(), 0..2),
        prop::collection::vec(arb_rule(), 0..2),
    )
        .prop_map(
            |(ns, selector, select_all, (ingress_ty, egress_ty), ingress, egress)| {
                let mut policy_types = Vec::new();
                if ingress_ty {
                    policy_types.push(PolicyType::Ingress);
                }
                if egress_ty {
                    policy_types.push(PolicyType::Egress);
                }
                NetworkPolicy {
                    meta: ObjectMeta::named("np").in_namespace(ns),
                    spec: NetworkPolicySpec {
                        pod_selector: if select_all {
                            LabelSelector::everything()
                        } else {
                            LabelSelector::from_labels(selector)
                        },
                        policy_types,
                        ingress,
                        egress,
                    },
                }
            },
        )
}

/// Pods with two declared ports (one named) across two namespaces; the
/// default behaviour model opens every declared port.
fn build_cluster(pods: &[(Labels, bool, String)], policies: &[NetworkPolicy]) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        seed: 3,
        behaviors: Default::default(),
    });
    cluster
        .apply(Object::Namespace(
            ObjectMeta::named("prod").with_labels(Labels::from_pairs([("team", "sre")])),
        ))
        .expect("namespace applies");
    for (i, (labels, host, ns)) in pods.iter().enumerate() {
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named(format!("p{i}"))
                    .in_namespace(ns.clone())
                    .with_labels(labels.clone()),
                PodSpec {
                    containers: vec![Container::new("c", "img").with_ports(vec![
                        ContainerPort::named("http", 8080),
                        ContainerPort::tcp(9100),
                    ])],
                    host_network: *host,
                    node_name: None,
                },
            )))
            .expect("apply pod");
    }
    cluster.reconcile();
    for (i, np) in policies.iter().enumerate() {
        let mut np = np.clone();
        np.meta.name = format!("np-{i}");
        cluster
            .apply(Object::NetworkPolicy(np))
            .expect("apply policy");
    }
    cluster
}

/// The sequential per-pair oracle: naive engine verdict + listener check,
/// exactly the shape `reachable_pod_endpoints` had before the matrix.
fn naive_reachable(
    cluster: &Cluster,
    policies: &[NetworkPolicy],
    src: &str,
) -> Vec<ReachableEndpoint> {
    let engine = PolicyEngine::new(policies, cluster.namespace_labels());
    let mut out = Vec::new();
    let Some(src_pod) = cluster.pod(src) else {
        return out;
    };
    for dst in cluster.pods() {
        if dst.qualified_name() == src_pod.qualified_name() {
            continue;
        }
        for socket in &dst.sockets {
            if socket.loopback_only {
                continue;
            }
            if engine
                .verdict(src_pod, dst, socket.port, socket.protocol)
                .is_allowed()
            {
                out.push(ReachableEndpoint {
                    pod: dst.qualified_name(),
                    port: socket.port,
                    protocol: socket.protocol,
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.pod, a.port).cmp(&(&b.pod, b.port)));
    out
}

fn arb_pods() -> impl Strategy<Value = Vec<(Labels, bool, String)>> {
    prop::collection::vec(
        (
            arb_labels(),
            any::<bool>(),
            prop::sample::select(vec!["default".to_string(), "prod".to_string()]),
        ),
        2..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The matrix agrees with the naive engine on every (src, dst, socket)
    /// triple of a random cluster.
    #[test]
    fn matrix_equals_naive_per_pair_probe(
        pods in arb_pods(),
        policies in prop::collection::vec(arb_policy(), 0..4),
    ) {
        let cluster = build_cluster(&pods, &policies);
        let applied: Vec<NetworkPolicy> =
            cluster.network_policies().into_iter().cloned().collect();
        let engine = PolicyEngine::new(&applied, cluster.namespace_labels());
        let matrix = ReachMatrix::compute(&cluster);
        for src in cluster.pods() {
            for dst in cluster.pods() {
                for socket in &dst.sockets {
                    if socket.loopback_only {
                        continue;
                    }
                    prop_assert_eq!(
                        matrix.reaches(
                            &src.qualified_name(),
                            &dst.qualified_name(),
                            socket.port,
                            socket.protocol,
                        ),
                        engine
                            .verdict(src, dst, socket.port, socket.protocol)
                            .is_allowed(),
                        "{} -> {}:{}/{:?}",
                        src.qualified_name(),
                        dst.qualified_name(),
                        socket.port,
                        socket.protocol
                    );
                }
            }
        }
    }

    /// The public `reachable_pod_endpoints` (matrix-backed) returns exactly
    /// the sequential oracle's endpoint list for every vantage pod.
    #[test]
    fn reachable_endpoints_equal_sequential_oracle(
        pods in arb_pods(),
        policies in prop::collection::vec(arb_policy(), 0..4),
    ) {
        let cluster = build_cluster(&pods, &policies);
        let applied: Vec<NetworkPolicy> =
            cluster.network_policies().into_iter().cloned().collect();
        for src in cluster.pods().to_vec() {
            let name = src.qualified_name();
            prop_assert_eq!(
                reachable_pod_endpoints(&cluster, &name),
                naive_reachable(&cluster, &applied, &name),
                "vantage {}", name
            );
        }
    }

    /// Probing twice — and probing after an unrelated cache rebuild — is
    /// deterministic.
    #[test]
    fn matrix_is_deterministic(
        pods in arb_pods(),
        policies in prop::collection::vec(arb_policy(), 0..3),
    ) {
        let cluster = build_cluster(&pods, &policies);
        let a = reachable_pod_endpoints(&cluster, "default/p0");
        let b = reachable_pod_endpoints(&cluster, "default/p0");
        prop_assert_eq!(a, b);
    }
}
