//! # Seeded procedural corpus generation
//!
//! The hand-written corpus of [`corpus`](crate::corpus) reproduces the
//! paper's Table 2 exactly — but it stops at 290 applications. This module
//! synthesizes populations at **arbitrary scale** with the same ground-truth
//! property: every generated chart knows precisely which findings it should
//! produce, so analyzer precision and recall stay measurable at 100, 1,000,
//! or 100,000 applications.
//!
//! Generation is a pure function: application `i` of a profile is fully
//! determined by `(profile, seed, i)` through a per-index xoshiro256\*\*
//! stream, so specs can be produced **on demand** (the census pipeline
//! streams them into workers instead of materializing the population) and
//! the same seed yields a byte-identical population at any thread count.
//!
//! ```
//! use ij_datasets::{CorpusGenerator, CorpusProfile};
//!
//! let generator = CorpusGenerator::new(
//!     CorpusProfile::named("mesh-heavy").unwrap().with_apps(50).with_seed(7),
//! );
//! let spec = generator.spec(17);
//! assert_eq!(spec, generator.spec(17), "generation is a pure function");
//! let summary = generator.describe();
//! assert_eq!(summary.apps, 50);
//! ```

mod archetypes;
mod churn;
mod inject;
mod profile;

pub use archetypes::Archetype;
pub use churn::{apply_mutation, ChurnMutation, ChurnSession, FLIP_TOKEN};
pub use inject::{MisconfigMix, MixError};
pub use profile::{CorpusProfile, CorpusProfileBuilder};

use crate::spec::{AppSpec, Org};
use ij_core::MisconfigId;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;

/// Deterministic procedural corpus: a [`CorpusProfile`] plus the per-index
/// generation function. See the [module docs](self) for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    profile: CorpusProfile,
}

impl CorpusGenerator {
    /// Wraps a profile.
    pub fn new(profile: CorpusProfile) -> Self {
        CorpusGenerator { profile }
    }

    /// The generating profile.
    pub fn profile(&self) -> &CorpusProfile {
        &self.profile
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.profile.apps()
    }

    /// True for an empty population.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The archetype application `index` is drawn from.
    pub fn archetype(&self, index: usize) -> Archetype {
        self.profile.pick_archetype(&mut self.rng_for(index))
    }

    /// Generates application `index` (`0..len()`): a pure function of the
    /// profile and index — calling it twice, on any thread, yields the same
    /// spec.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn spec(&self, index: usize) -> AppSpec {
        self.generate(index).1
    }

    /// One generation pass: the archetype draw and everything derived from
    /// it share a single per-index RNG.
    fn generate(&self, index: usize) -> (Archetype, AppSpec) {
        assert!(
            index < self.len(),
            "spec index {index} out of range for a {}-app population",
            self.len()
        );
        let mut rng = self.rng_for(index);
        let archetype = self.profile.pick_archetype(&mut rng);
        let mut plan = archetype.base_plan(&mut rng);
        self.profile
            .mix()
            .sample_into(&mut plan, archetype, &mut rng);
        let version = format!(
            "{}.{}.{}",
            rng.gen_range(0u32..3),
            rng.gen_range(0u32..10),
            rng.gen_range(0u32..10)
        );
        // Round-robin dataset assignment keeps the Table-2 census renderer
        // meaningful for synthetic populations.
        let org = Org::ALL[index % Org::ALL.len()];
        let spec = AppSpec::new(
            format!("{}-{index:05}", archetype.slug()),
            org,
            version,
            plan,
        );
        (archetype, spec)
    }

    /// Streams the population in index order without materializing it.
    pub fn iter(&self) -> impl Iterator<Item = AppSpec> + '_ {
        (0..self.len()).map(|i| self.spec(i))
    }

    /// Summarizes the population (one transient pass over the generated
    /// specs): archetype composition, expected per-class findings, policy
    /// postures. This is what `ij corpus --describe` prints.
    pub fn describe(&self) -> PopulationSummary {
        PopulationSummary::from_specs(
            format!("synthetic profile `{}`", self.profile.name()),
            Some(self.profile.seed()),
            (0..self.len()).map(|i| {
                let (archetype, spec) = self.generate(i);
                (archetype.slug().to_string(), spec)
            }),
        )
    }

    /// The per-index RNG: the base seed and index mixed through splitmix64
    /// (so neighbouring indices get unrelated streams), feeding the
    /// vendored xoshiro256\*\* generator.
    fn rng_for(&self, index: usize) -> StdRng {
        let mut x = self
            .profile
            .seed()
            .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(x ^ (x >> 31))
    }
}

/// What a (synthetic or built-in) population looks like before any analysis
/// runs: group composition and the ground-truth expectation per rule.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSummary {
    /// What is being described (profile or corpus name).
    pub label: String,
    /// Generation seed, when the population is procedural.
    pub seed: Option<u64>,
    /// Population size.
    pub apps: usize,
    /// Applications per group (archetype slug or dataset name).
    pub groups: BTreeMap<String, usize>,
    /// Expected findings per class. M4\* counts token groups with at least
    /// two members (one cluster-wide finding each).
    pub expected: BTreeMap<MisconfigId, usize>,
    /// Applications expected to carry at least one finding.
    pub affected: usize,
    /// Applications whose chart defines a NetworkPolicy (even if disabled).
    pub policy_defining: usize,
    /// Applications whose policy is rendered with default values.
    pub policy_enabled: usize,
}

impl PopulationSummary {
    /// Builds a summary from `(group label, spec)` pairs. Specs are
    /// consumed one at a time, so callers can stream a generated
    /// population through without holding it in memory.
    pub fn from_specs(
        label: impl Into<String>,
        seed: Option<u64>,
        entries: impl IntoIterator<Item = (String, AppSpec)>,
    ) -> Self {
        let mut summary = PopulationSummary {
            label: label.into(),
            seed,
            apps: 0,
            groups: BTreeMap::new(),
            expected: BTreeMap::new(),
            affected: 0,
            policy_defining: 0,
            policy_enabled: 0,
        };
        // Tokens are `&'static str` from the closed shared pool, so group
        // accounting needs no string allocation, however large the
        // population.
        let mut token_members: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut tokened_apps: Vec<Vec<&'static str>> = Vec::new();
        let mut locally_affected: Vec<bool> = Vec::new();
        for (group, spec) in entries {
            summary.apps += 1;
            *summary.groups.entry(group).or_default() += 1;
            for id in MisconfigId::ALL {
                if id == MisconfigId::M4Star {
                    continue;
                }
                *summary.expected.entry(id).or_default() += spec.plan.expected_of(id);
            }
            summary.policy_defining += usize::from(spec.plan.netpol.defines_policy());
            summary.policy_enabled += usize::from(spec.plan.netpol.enabled_by_default());
            for token in &spec.plan.m4star_tokens {
                *token_members.entry(token).or_default() += 1;
            }
            locally_affected.push(spec.plan.expected_local_findings() > 0);
            tokened_apps.push(spec.plan.m4star_tokens.clone());
        }
        // One cluster-wide finding per token shared by ≥ 2 applications; an
        // app is affected when it has local findings or joins such a group.
        let colliding = token_members
            .iter()
            .filter(|(_, members)| **members >= 2)
            .count();
        summary.expected.insert(MisconfigId::M4Star, colliding);
        for (local, tokens) in locally_affected.iter().zip(&tokened_apps) {
            let collides = tokens
                .iter()
                .any(|t| token_members.get(t).copied().unwrap_or(0) >= 2);
            summary.affected += usize::from(*local || collides);
        }
        summary
    }

    /// Total expected findings across every class.
    pub fn expected_total(&self) -> usize {
        self.expected.values().sum()
    }

    /// Renders the summary as the `ij corpus --describe` text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — {} application(s)", self.label, self.apps));
        if let Some(seed) = self.seed {
            out.push_str(&format!(", seed {seed}"));
        }
        out.push('\n');
        out.push_str(&format!("{:<14} {:>6}\n", "group", "apps"));
        for (group, count) in &self.groups {
            out.push_str(&format!("{group:<14} {count:>6}\n"));
        }
        out.push_str("expected findings:");
        for id in MisconfigId::ALL {
            out.push_str(&format!(
                " {} {}",
                id.as_str(),
                self.expected.get(&id).copied().unwrap_or(0)
            ));
        }
        out.push('\n');
        let pct = |n: usize| {
            if self.apps == 0 {
                0.0
            } else {
                n as f64 / self.apps as f64 * 100.0
            }
        };
        out.push_str(&format!(
            "total expected: {} finding(s); affected: {} ({:.1}%)\n",
            self.expected_total(),
            self.affected,
            pct(self.affected)
        ));
        out.push_str(&format!(
            "policies: {} defined ({:.1}%), {} enabled by default ({:.1}%)\n",
            self.policy_defining,
            pct(self.policy_defining),
            self.policy_enabled,
            pct(self.policy_enabled)
        ));
        out
    }
}

/// Summary of the built-in (hand-written) Table-2 corpus, grouped by
/// dataset — `ij corpus --describe` without `--synthetic`.
pub fn describe_builtin() -> PopulationSummary {
    PopulationSummary::from_specs(
        "built-in Table 2 corpus",
        None,
        crate::corpus()
            .into_iter()
            .map(|spec| (spec.org.as_str().to_string(), spec)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(profile: &str, apps: usize, seed: u64) -> CorpusGenerator {
        CorpusGenerator::new(
            CorpusProfile::named(profile)
                .expect("known profile")
                .with_apps(apps)
                .with_seed(seed),
        )
    }

    #[test]
    fn generation_is_pure_and_deterministic() {
        let a = tiny("baseline", 64, 7);
        let b = tiny("baseline", 64, 7);
        for i in 0..a.len() {
            assert_eq!(a.spec(i), b.spec(i), "index {i}");
            assert_eq!(format!("{:?}", a.spec(i)), format!("{:?}", b.spec(i)));
        }
    }

    #[test]
    fn different_seeds_and_indices_differ() {
        let a = tiny("baseline", 64, 7);
        let b = tiny("baseline", 64, 8);
        let diverged = (0..64)
            .filter(|&i| a.spec(i).plan != b.spec(i).plan)
            .count();
        assert!(
            diverged > 16,
            "only {diverged}/64 plans changed with the seed"
        );
        let names: std::collections::BTreeSet<String> = a.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 64, "generated names must be unique");
    }

    #[test]
    fn iter_matches_indexed_access() {
        let generator = tiny("pipeline-heavy", 24, 1);
        for (i, spec) in generator.iter().enumerate() {
            assert_eq!(spec, generator.spec(i));
        }
        assert_eq!(generator.iter().count(), 24);
    }

    #[test]
    fn archetype_matches_the_spec_prefix() {
        let generator = tiny("baseline", 48, 3);
        for i in 0..48 {
            let spec = generator.spec(i);
            assert!(
                spec.name.starts_with(generator.archetype(i).slug()),
                "{} vs {}",
                spec.name,
                generator.archetype(i)
            );
        }
    }

    #[test]
    fn describe_accounts_for_the_population() {
        let generator = tiny("baseline", 200, 5);
        let summary = generator.describe();
        assert_eq!(summary.apps, 200);
        assert_eq!(summary.groups.values().sum::<usize>(), 200);
        // Expected counts equal the sum over the generated plans.
        let m1: usize = generator.iter().map(|s| s.plan.m1).sum();
        assert_eq!(summary.expected[&MisconfigId::M1], m1);
        let rendered = summary.render();
        assert!(rendered.contains("200 application(s)"));
        assert!(rendered.contains("seed 5"));
        assert!(rendered.contains("M4*"));
    }

    #[test]
    fn legacy_profile_is_hostnetwork_heavy() {
        let baseline = tiny("baseline", 400, 11).describe();
        let legacy = tiny("legacy", 400, 11).describe();
        assert!(
            legacy.expected[&MisconfigId::M7] > 2 * baseline.expected[&MisconfigId::M7],
            "legacy M7 {} vs baseline {}",
            legacy.expected[&MisconfigId::M7],
            baseline.expected[&MisconfigId::M7]
        );
    }

    #[test]
    fn policy_mature_profile_is_quiet() {
        let baseline = tiny("baseline", 400, 11).describe();
        let mature = tiny("policy-mature", 400, 11).describe();
        assert!(
            mature.expected_total() * 2 < baseline.expected_total(),
            "mature {} vs baseline {}",
            mature.expected_total(),
            baseline.expected_total()
        );
        assert!(mature.policy_enabled > baseline.policy_enabled);
    }

    #[test]
    fn builtin_summary_matches_table2() {
        let summary = describe_builtin();
        assert_eq!(summary.apps, 290);
        assert_eq!(summary.expected_total(), 634);
        assert_eq!(summary.affected, 259);
        assert_eq!(summary.groups.len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        tiny("baseline", 4, 0).spec(4);
    }
}
