//! CI allocation-regression gate for the census hot path.
//!
//! The render→emit→reparse round-trip was removed in favour of direct
//! Value evaluation with per-worker scratch reuse; the cheapest way to
//! notice that work creeping back in is to count allocator calls. This
//! test installs a counting `#[global_allocator]` (integration tests are
//! their own binaries, so the wrapper is scoped to this file), runs the
//! generated compact census at two sizes, and takes the delta per app —
//! fixed startup cost (profiles, chart compilation, interner tables)
//! cancels out, leaving the steady-state per-app allocation count.
//!
//! The measured steady state on the reference machine is ~2,300
//! allocations per app — that covers the whole per-app pipeline (spec
//! generation, chart build, compile, direct-to-Value render, install,
//! probe, analyze, retained findings), not just rendering. The 3,000
//! ceiling gives ~30% headroom against small legitimate changes while
//! failing loudly if text materialization or per-app buffer churn
//! returns (the emit+reparse path costs hundreds of extra allocations
//! per app in rendered strings and reparsed document trees alone).
//!
//! Debug builds are skipped (unoptimized collections allocate on a
//! different schedule); CI runs this with
//! `cargo test --release -p ij-bench --test alloc_guard`.

use ij_datasets::{CensusPipeline, CorpusGenerator, CorpusProfile};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point that hands out (or regrows) memory.
/// Deallocations are free-of-charge: the gate is about allocation churn.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const SMALL: usize = 200;
const LARGE: usize = 1_200;
const PER_APP_CEILING: u64 = 3_000;

fn census_allocs(apps: usize) -> u64 {
    let generator = CorpusGenerator::new(
        CorpusProfile::named("baseline")
            .expect("baseline profile")
            .with_apps(apps)
            .with_seed(7),
    );
    let pipeline = CensusPipeline::builder().seed(7).build();
    let before = ALLOCS.load(Ordering::Relaxed);
    let census = pipeline
        .run_generated_compact(&generator)
        .expect("generated corpus renders and installs");
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(census.apps.len(), apps);
    assert!(
        census.total_misconfigurations() > 0,
        "census produced nothing; the allocation bound would be vacuous"
    );
    after - before
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation counts are calibrated for release builds"
)]
fn steady_state_census_allocations_stay_bounded() {
    let small = census_allocs(SMALL);
    let large = census_allocs(LARGE);
    assert!(
        large > small,
        "larger census allocated less ({large} vs {small}); the delta is meaningless"
    );
    let per_app = (large - small) / (LARGE - SMALL) as u64;
    eprintln!(
        "alloc_guard: {small} allocs @ {SMALL} apps, {large} @ {LARGE}; \
         steady state {per_app} allocs/app (ceiling {PER_APP_CEILING})"
    );
    assert!(
        per_app < PER_APP_CEILING,
        "steady-state census allocations regressed: {per_app} allocs/app \
         breached the {PER_APP_CEILING} ceiling (~2,300 expected; the \
         emit+reparse round-trip costs hundreds more per app)"
    );
}
