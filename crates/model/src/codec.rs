//! Shared helpers for decoding typed objects out of [`ij_yaml::Value`] trees.

use crate::error::{Error, Result};
use ij_yaml::{Map, Value};

/// Fetches a required string field.
pub(crate) fn req_str(map: &Map, field: &str, ctx: &str) -> Result<String> {
    match map.get(field) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(Error::field(format!("{ctx}.{field}"), "string")),
        None => Err(Error::malformed(format!("missing `{ctx}.{field}`"))),
    }
}

/// Fetches an optional string field (absent and `null` both yield `None`).
pub(crate) fn opt_str(map: &Map, field: &str, ctx: &str) -> Result<Option<String>> {
    match map.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        // Numeric-looking strings sometimes appear unquoted (e.g. a port
        // name that is a number is invalid in Kubernetes, but a version
        // string like `1.25` parses as a float). Accept scalars verbatim.
        Some(Value::Int(i)) => Ok(Some(i.to_string())),
        Some(Value::Float(f)) => Ok(Some(f.to_string())),
        Some(Value::Bool(b)) => Ok(Some(b.to_string())),
        Some(_) => Err(Error::field(format!("{ctx}.{field}"), "string")),
    }
}

/// Fetches an optional integer field, accepting numeric strings.
pub(crate) fn opt_int(map: &Map, field: &str, ctx: &str) -> Result<Option<i64>> {
    match map.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) => Ok(Some(*i)),
        Some(Value::Str(s)) => s
            .parse::<i64>()
            .map(Some)
            .map_err(|_| Error::field(format!("{ctx}.{field}"), "integer")),
        Some(_) => Err(Error::field(format!("{ctx}.{field}"), "integer")),
    }
}

/// Fetches an optional boolean field.
pub(crate) fn opt_bool(map: &Map, field: &str, ctx: &str) -> Result<Option<bool>> {
    match map.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(Error::field(format!("{ctx}.{field}"), "boolean")),
    }
}

/// Fetches an optional nested mapping.
pub(crate) fn opt_map<'a>(map: &'a Map, field: &str, ctx: &str) -> Result<Option<&'a Map>> {
    match map.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Map(m)) => Ok(Some(m)),
        Some(_) => Err(Error::field(format!("{ctx}.{field}"), "mapping")),
    }
}

/// Fetches an optional sequence (absent and `null` both yield an empty slice).
pub(crate) fn opt_seq<'a>(map: &'a Map, field: &str, ctx: &str) -> Result<&'a [Value]> {
    match map.get(field) {
        None | Some(Value::Null) => Ok(&[]),
        Some(Value::Seq(s)) => Ok(s),
        Some(_) => Err(Error::field(format!("{ctx}.{field}"), "sequence")),
    }
}

/// Decodes a `key: value` string map (labels, selectors, annotations).
pub(crate) fn string_map(map: &Map, ctx: &str) -> Result<Vec<(String, String)>> {
    let mut out = Vec::with_capacity(map.len());
    for (k, v) in map.iter() {
        let s = match v {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Null => String::new(),
            _ => return Err(Error::field(format!("{ctx}.{k}"), "string value")),
        };
        out.push((k.to_string(), s));
    }
    Ok(out)
}

/// Requires the value to be a mapping.
pub(crate) fn as_map<'a>(v: &'a Value, ctx: &str) -> Result<&'a Map> {
    v.as_map()
        .ok_or_else(|| Error::field(ctx.to_string(), "mapping"))
}
