//! Naive re-parse rendering vs the compile-once layer, at three corpus
//! sizes.
//!
//! "Naive" is the seed behaviour: every `Chart::render` call re-lexes and
//! re-parses each template file, then round-trips the rendered text through
//! the YAML parser and object decoder. "Compiled" replays the cached
//! [`CompiledChart`] ASTs (action-free files are pre-decoded at compile
//! time). "Cached" is what the census pipeline actually does on a repeat
//! render of the same `(app, release)` — a [`CensusPipeline::render_app`]
//! hit. All three produce byte-identical `RenderedRelease`s — asserted at
//! setup — so the timings are an apples-to-apples measure of the speedups
//! recorded in `BENCH_render.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ij_chart::{CompiledChart, Release};
use ij_datasets::{build_app, corpus, BuiltApp, CensusPipeline};
use std::hint::black_box;

fn bench_render_pipeline(c: &mut Criterion) {
    let all = corpus();
    let full = all.len();
    for (label, n) in [("small", 12usize), ("medium", 60), ("full", full)] {
        let builts: Vec<BuiltApp> = all.iter().take(n).map(build_app).collect();
        let releases: Vec<Release> = builts
            .iter()
            .map(|b| Release::new(&b.spec.name, "default"))
            .collect();
        let compiled: Vec<CompiledChart> = builts
            .iter()
            .map(|b| b.compiled().expect("corpus charts compile").clone())
            .collect();
        let pipeline = CensusPipeline::builder().build();
        for ((built, release), compiled) in builts.iter().zip(&releases).zip(&compiled) {
            let naive = built.chart().render(release).expect("naive render");
            let replay = compiled.render(release).expect("compiled render");
            let cached = pipeline.render_app(built, release).expect("cached render");
            assert_eq!(
                format!("{naive:#?}"),
                format!("{replay:#?}"),
                "{label}: compiled render diverged for {}",
                built.spec.name
            );
            assert_eq!(
                format!("{replay:#?}"),
                format!("{:#?}", *cached),
                "{label}: cached render diverged for {}",
                built.spec.name
            );
        }

        c.bench_function(&format!("render_naive_{label}"), |b| {
            b.iter(|| {
                let mut objects = 0usize;
                for (built, release) in builts.iter().zip(&releases) {
                    objects += black_box(built.chart().render(release).expect("renders"))
                        .objects
                        .len();
                }
                objects
            })
        });
        c.bench_function(&format!("render_compiled_{label}"), |b| {
            b.iter(|| {
                let mut objects = 0usize;
                for (compiled, release) in compiled.iter().zip(&releases) {
                    objects += black_box(compiled.render(release).expect("renders"))
                        .objects
                        .len();
                }
                objects
            })
        });
        c.bench_function(&format!("render_cached_{label}"), |b| {
            b.iter(|| {
                let mut objects = 0usize;
                for (built, release) in builts.iter().zip(&releases) {
                    objects += black_box(pipeline.render_app(built, release).expect("renders"))
                        .objects
                        .len();
                }
                objects
            })
        });
    }
}

criterion_group!(render, bench_render_pipeline);
criterion_main!(render);
