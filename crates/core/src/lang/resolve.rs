//! Selection scopes and the entity resolver: how a rule expression sees the
//! analyzer's model.
//!
//! A pack rule declares a **selection scope** ([`Select`]): the kind of
//! entity its expression runs once per. Each scope exposes a fixed, typed
//! attribute schema (dense [`AttrId`]s in declaration order); broader scopes
//! nest — a `socket` expression can read every `unit.*` and `app.*`
//! attribute too, because a socket belongs to exactly one unit of one
//! application.
//!
//! [`EntityResolver`] adapts one concrete entity (plus the facts the native
//! rules derive: observed sockets, dynamic ports, service selection, target
//! resolution) to the evaluator's [`RuleResolver`] interface. All derived
//! facts are computed once per entity, before evaluation.

use super::eval::{RuleResolver, Value};
use crate::model::ComputeUnit;
use crate::rules::RuleContext;
use ij_model::{
    AttrId, AttrSchema, AttrType, KeyId, LabelId, LabelInterner, Protocol, Service, ServicePort,
    TargetPort,
};
use ij_probe::ObservedSocket;
use std::collections::BTreeSet;

/// The entity kind a rule's expression is evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Select {
    /// Once per application.
    App,
    /// Once per compute unit.
    Unit,
    /// Once per stable observed socket of each observed compute unit.
    Socket,
    /// Once per service.
    Service,
    /// Once per `(service, port mapping)` of services that select at least
    /// zero units — i.e. every port of every service.
    ServicePort,
}

impl Select {
    /// The spelling used by pack files and `ij rules` output.
    pub fn as_str(&self) -> &'static str {
        match self {
            Select::App => "app",
            Select::Unit => "unit",
            Select::Socket => "socket",
            Select::Service => "service",
            Select::ServicePort => "service_port",
        }
    }

    /// Parses a pack-file spelling.
    pub fn parse(s: &str) -> Option<Select> {
        match s {
            "app" => Some(Select::App),
            "unit" => Some(Select::Unit),
            "socket" => Some(Select::Socket),
            "service" => Some(Select::Service),
            "service_port" => Some(Select::ServicePort),
            _ => None,
        }
    }

    /// True when the scope carries a compute unit, enabling `ports.*` and
    /// `labels.*` builtins.
    pub fn unit_scoped(&self) -> bool {
        matches!(self, Select::Unit | Select::Socket)
    }
}

/// What one attribute id resolves to. The compiled rule stores a
/// `Vec<AttrKey>` indexed by [`AttrId`], so evaluation is a table jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AttrKey {
    AppName,
    AppUnitCount,
    AppServiceCount,
    AppPolicyCount,
    AppHasPolicies,
    AppChartDefinesPolicies,
    AppHasRuntime,
    UnitName,
    UnitKind,
    UnitNamespace,
    UnitHostNetwork,
    UnitObserved,
    UnitHasDynamicPorts,
    UnitDeclaredCount,
    UnitLabelCount,
    SocketPort,
    SocketProtocol,
    ServiceName,
    ServiceNamespace,
    ServiceSelector,
    ServiceHeadless,
    ServiceSelectorEmpty,
    ServiceSelectedCount,
    PortPort,
    PortProtocol,
    PortTargetKind,
    PortTargetName,
    PortTargetResolved,
    PortTargetNumber,
    PortTargetDeclared,
    PortAnySelectedObserved,
    PortTargetOpen,
}

const APP_ATTRS: &[(&str, AttrType, AttrKey)] = &[
    ("app.name", AttrType::String, AttrKey::AppName),
    ("app.unit_count", AttrType::Number, AttrKey::AppUnitCount),
    (
        "app.service_count",
        AttrType::Number,
        AttrKey::AppServiceCount,
    ),
    (
        "app.policy_count",
        AttrType::Number,
        AttrKey::AppPolicyCount,
    ),
    ("app.has_policies", AttrType::Bool, AttrKey::AppHasPolicies),
    (
        "app.chart_defines_policies",
        AttrType::Bool,
        AttrKey::AppChartDefinesPolicies,
    ),
    ("app.has_runtime", AttrType::Bool, AttrKey::AppHasRuntime),
];

const UNIT_ATTRS: &[(&str, AttrType, AttrKey)] = &[
    ("unit.name", AttrType::String, AttrKey::UnitName),
    ("unit.kind", AttrType::String, AttrKey::UnitKind),
    ("unit.namespace", AttrType::String, AttrKey::UnitNamespace),
    (
        "unit.host_network",
        AttrType::Bool,
        AttrKey::UnitHostNetwork,
    ),
    ("unit.observed", AttrType::Bool, AttrKey::UnitObserved),
    (
        "unit.has_dynamic_ports",
        AttrType::Bool,
        AttrKey::UnitHasDynamicPorts,
    ),
    (
        "unit.declared_count",
        AttrType::Number,
        AttrKey::UnitDeclaredCount,
    ),
    (
        "unit.label_count",
        AttrType::Number,
        AttrKey::UnitLabelCount,
    ),
];

const SOCKET_ATTRS: &[(&str, AttrType, AttrKey)] = &[
    ("socket.port", AttrType::Number, AttrKey::SocketPort),
    ("socket.protocol", AttrType::String, AttrKey::SocketProtocol),
];

const SERVICE_ATTRS: &[(&str, AttrType, AttrKey)] = &[
    ("service.name", AttrType::String, AttrKey::ServiceName),
    (
        "service.namespace",
        AttrType::String,
        AttrKey::ServiceNamespace,
    ),
    (
        "service.selector",
        AttrType::String,
        AttrKey::ServiceSelector,
    ),
    ("service.headless", AttrType::Bool, AttrKey::ServiceHeadless),
    (
        "service.selector_empty",
        AttrType::Bool,
        AttrKey::ServiceSelectorEmpty,
    ),
    (
        "service.selected_count",
        AttrType::Number,
        AttrKey::ServiceSelectedCount,
    ),
];

const SERVICE_PORT_ATTRS: &[(&str, AttrType, AttrKey)] = &[
    ("port.port", AttrType::Number, AttrKey::PortPort),
    ("port.protocol", AttrType::String, AttrKey::PortProtocol),
    (
        "port.target_kind",
        AttrType::String,
        AttrKey::PortTargetKind,
    ),
    (
        "port.target_name",
        AttrType::String,
        AttrKey::PortTargetName,
    ),
    (
        "port.target_resolved",
        AttrType::Bool,
        AttrKey::PortTargetResolved,
    ),
    (
        "port.target_number",
        AttrType::Number,
        AttrKey::PortTargetNumber,
    ),
    (
        "port.target_declared",
        AttrType::Bool,
        AttrKey::PortTargetDeclared,
    ),
    (
        "port.any_selected_observed",
        AttrType::Bool,
        AttrKey::PortAnySelectedObserved,
    ),
    ("port.target_open", AttrType::Bool, AttrKey::PortTargetOpen),
];

/// Builds the attribute schema of a scope, plus the parallel `AttrId` →
/// [`AttrKey`] table the resolver jumps through.
pub(crate) fn schema_for(select: Select) -> (AttrSchema, Vec<AttrKey>) {
    let tables: &[&[(&str, AttrType, AttrKey)]] = match select {
        Select::App => &[APP_ATTRS],
        Select::Unit => &[APP_ATTRS, UNIT_ATTRS],
        Select::Socket => &[APP_ATTRS, UNIT_ATTRS, SOCKET_ATTRS],
        Select::Service => &[APP_ATTRS, SERVICE_ATTRS],
        Select::ServicePort => &[APP_ATTRS, SERVICE_ATTRS, SERVICE_PORT_ATTRS],
    };
    let mut schema = AttrSchema::new();
    let mut keys = Vec::new();
    for table in tables {
        for (name, ty, key) in *table {
            let id = schema.declare(name, *ty);
            debug_assert_eq!(id.index(), keys.len());
            keys.push(*key);
        }
    }
    (schema, keys)
}

/// A compute unit's labels lowered to the pack's interned id space, plus a
/// `KeyId` → value table for `labels.get`. Keys or pairs the pack never
/// interned simply don't appear, which is exactly the right semantics: no
/// probe in the pack can ask about them.
pub(crate) struct UnitLabelProbe<'a> {
    pair_ids: Vec<LabelId>,
    key_vals: Vec<(KeyId, &'a str)>,
}

impl<'a> UnitLabelProbe<'a> {
    fn new(unit: &'a ComputeUnit, interner: &LabelInterner) -> Self {
        let mut pair_ids = Vec::new();
        let mut key_vals = Vec::new();
        for (k, v) in unit.labels.iter() {
            if let Some(key_id) = interner.lookup_key(k) {
                key_vals.push((key_id, v));
                if let Some(pair_id) = interner.lookup_pair(k, v) {
                    pair_ids.push(pair_id);
                }
            }
        }
        pair_ids.sort_unstable();
        UnitLabelProbe { pair_ids, key_vals }
    }
}

/// One compute unit with its runtime-derived facts, computed once.
pub(crate) struct UnitView<'a> {
    pub(crate) unit: &'a ComputeUnit,
    pub(crate) observed: bool,
    pub(crate) has_dynamic: bool,
    pub(crate) stable: BTreeSet<ObservedSocket>,
    probe: UnitLabelProbe<'a>,
}

impl<'a> UnitView<'a> {
    pub(crate) fn new(
        ctx: &RuleContext<'a>,
        unit: &'a ComputeUnit,
        interner: &LabelInterner,
    ) -> Self {
        UnitView {
            unit,
            observed: ctx.unit_observed(&unit.name),
            has_dynamic: ctx.unit_has_dynamic(&unit.name),
            stable: ctx.unit_stable(&unit.name),
            probe: UnitLabelProbe::new(unit, interner),
        }
    }
}

/// One service with its selection resolved.
pub(crate) struct SvcView<'a> {
    pub(crate) svc: &'a Service,
    pub(crate) selected: Vec<&'a ComputeUnit>,
}

impl<'a> SvcView<'a> {
    pub(crate) fn new(ctx: &RuleContext<'a>, svc: &'a Service) -> Self {
        SvcView {
            svc,
            selected: ctx.statics.units_selected_by(svc),
        }
    }
}

/// Facts about one service port mapping, mirroring the native M5 logic.
pub(crate) struct PortFacts {
    resolved: Option<u16>,
    declared: bool,
    any_observed: bool,
    open: bool,
}

impl PortFacts {
    pub(crate) fn compute(ctx: &RuleContext<'_>, view: &SvcView<'_>, sp: &ServicePort) -> Self {
        let resolved = match &sp.target_port {
            TargetPort::Number(n) => Some(*n),
            TargetPort::Name(name) => view.selected.iter().find_map(|u| u.resolve_port_name(name)),
        };
        let declared =
            resolved.is_some_and(|t| view.selected.iter().any(|u| u.declares(t, sp.protocol)));
        let observed_units: Vec<&&ComputeUnit> = view
            .selected
            .iter()
            .filter(|u| ctx.unit_observed(&u.name))
            .collect();
        let any_observed = !observed_units.is_empty();
        let open = resolved.is_some_and(|target| {
            observed_units.iter().any(|u| {
                ctx.unit_stable(&u.name).contains(&ObservedSocket {
                    port: target,
                    protocol: sp.protocol,
                })
            })
        });
        PortFacts {
            resolved,
            declared,
            any_observed,
            open,
        }
    }
}

/// The concrete entity an expression is being evaluated against.
pub(crate) enum Entity<'a> {
    App,
    Unit(&'a UnitView<'a>),
    Socket {
        unit: &'a UnitView<'a>,
        socket: ObservedSocket,
    },
    Service(&'a SvcView<'a>),
    ServicePort {
        svc: &'a SvcView<'a>,
        sp: &'a ServicePort,
        facts: &'a PortFacts,
    },
}

/// Adapter from one entity (plus its precomputed facts) to the evaluator's
/// [`RuleResolver`] interface.
pub(crate) struct EntityResolver<'a> {
    pub(crate) ctx: &'a RuleContext<'a>,
    pub(crate) keys: &'a [AttrKey],
    pub(crate) entity: Entity<'a>,
}

impl<'a> EntityResolver<'a> {
    fn unit_view(&self) -> Option<&UnitView<'a>> {
        match &self.entity {
            Entity::Unit(u) | Entity::Socket { unit: u, .. } => Some(u),
            _ => None,
        }
    }

    fn svc_view(&self) -> Option<&SvcView<'a>> {
        match &self.entity {
            Entity::Service(s) | Entity::ServicePort { svc: s, .. } => Some(s),
            _ => None,
        }
    }
}

impl RuleResolver for EntityResolver<'_> {
    fn attr(&self, id: AttrId) -> Value {
        let key = self.keys[id.index()];
        let ctx = self.ctx;
        match key {
            AttrKey::AppName => Value::str(ctx.app),
            AttrKey::AppUnitCount => Value::Number(ctx.statics.units.len() as f64),
            AttrKey::AppServiceCount => Value::Number(ctx.statics.services.len() as f64),
            AttrKey::AppPolicyCount => Value::Number(ctx.statics.policies.len() as f64),
            AttrKey::AppHasPolicies => Value::Bool(!ctx.statics.policies.is_empty()),
            AttrKey::AppChartDefinesPolicies => Value::Bool(ctx.chart_defines_policies),
            AttrKey::AppHasRuntime => Value::Bool(ctx.runtime.is_some()),
            AttrKey::UnitName
            | AttrKey::UnitKind
            | AttrKey::UnitNamespace
            | AttrKey::UnitHostNetwork
            | AttrKey::UnitObserved
            | AttrKey::UnitHasDynamicPorts
            | AttrKey::UnitDeclaredCount
            | AttrKey::UnitLabelCount => {
                let view = self.unit_view().expect("unit attribute outside unit scope");
                match key {
                    AttrKey::UnitName => Value::str(&view.unit.name),
                    AttrKey::UnitKind => Value::str(&view.unit.kind),
                    AttrKey::UnitNamespace => Value::str(&view.unit.namespace),
                    AttrKey::UnitHostNetwork => Value::Bool(view.unit.host_network),
                    AttrKey::UnitObserved => Value::Bool(view.observed),
                    AttrKey::UnitHasDynamicPorts => Value::Bool(view.has_dynamic),
                    AttrKey::UnitDeclaredCount => {
                        Value::Number(view.unit.declared_ports().count() as f64)
                    }
                    AttrKey::UnitLabelCount => Value::Number(view.unit.labels.len() as f64),
                    _ => unreachable!(),
                }
            }
            AttrKey::SocketPort | AttrKey::SocketProtocol => {
                let Entity::Socket { socket, .. } = &self.entity else {
                    unreachable!("socket attribute outside socket scope")
                };
                match key {
                    AttrKey::SocketPort => Value::Number(f64::from(socket.port)),
                    AttrKey::SocketProtocol => Value::str(socket.protocol.as_str()),
                    _ => unreachable!(),
                }
            }
            AttrKey::ServiceName
            | AttrKey::ServiceNamespace
            | AttrKey::ServiceSelector
            | AttrKey::ServiceHeadless
            | AttrKey::ServiceSelectorEmpty
            | AttrKey::ServiceSelectedCount => {
                let view = self
                    .svc_view()
                    .expect("service attribute outside service scope");
                match key {
                    AttrKey::ServiceName => Value::str(view.svc.meta.qualified_name()),
                    AttrKey::ServiceNamespace => Value::str(&view.svc.meta.namespace),
                    AttrKey::ServiceSelector => Value::str(view.svc.spec.selector.to_string()),
                    AttrKey::ServiceHeadless => Value::Bool(view.svc.is_headless()),
                    AttrKey::ServiceSelectorEmpty => Value::Bool(view.svc.spec.selector.is_empty()),
                    AttrKey::ServiceSelectedCount => Value::Number(view.selected.len() as f64),
                    _ => unreachable!(),
                }
            }
            AttrKey::PortPort
            | AttrKey::PortProtocol
            | AttrKey::PortTargetKind
            | AttrKey::PortTargetName
            | AttrKey::PortTargetResolved
            | AttrKey::PortTargetNumber
            | AttrKey::PortTargetDeclared
            | AttrKey::PortAnySelectedObserved
            | AttrKey::PortTargetOpen => {
                let Entity::ServicePort { sp, facts, .. } = &self.entity else {
                    unreachable!("port attribute outside service_port scope")
                };
                match key {
                    AttrKey::PortPort => Value::Number(f64::from(sp.port)),
                    AttrKey::PortProtocol => Value::str(sp.protocol.as_str()),
                    AttrKey::PortTargetKind => Value::str(match &sp.target_port {
                        TargetPort::Number(_) => "number",
                        TargetPort::Name(_) => "name",
                    }),
                    AttrKey::PortTargetName => Value::str(match &sp.target_port {
                        TargetPort::Number(_) => "",
                        TargetPort::Name(n) => n.as_str(),
                    }),
                    AttrKey::PortTargetResolved => Value::Bool(facts.resolved.is_some()),
                    AttrKey::PortTargetNumber => {
                        Value::Number(f64::from(facts.resolved.unwrap_or(0)))
                    }
                    AttrKey::PortTargetDeclared => Value::Bool(facts.declared),
                    AttrKey::PortAnySelectedObserved => Value::Bool(facts.any_observed),
                    AttrKey::PortTargetOpen => Value::Bool(facts.open),
                    _ => unreachable!(),
                }
            }
        }
    }

    fn label_key_present(&self, id: KeyId) -> bool {
        self.unit_view()
            .is_some_and(|v| v.probe.key_vals.iter().any(|(k, _)| *k == id))
    }

    fn label_pair_present(&self, id: LabelId) -> bool {
        self.unit_view()
            .is_some_and(|v| v.probe.pair_ids.binary_search(&id).is_ok())
    }

    fn label_value(&self, id: KeyId) -> Option<&str> {
        self.unit_view()?
            .probe
            .key_vals
            .iter()
            .find(|(k, _)| *k == id)
            .map(|(_, v)| *v)
    }

    fn port_declared(&self, port: u16, protocol: &str) -> bool {
        let Some(view) = self.unit_view() else {
            return false;
        };
        let Some(protocol) = parse_protocol(protocol) else {
            return false;
        };
        view.unit.declares(port, protocol)
    }
}

/// Canonical protocol spellings only — rule expressions deal in the same
/// upper-case names the model prints.
pub(crate) fn parse_protocol(s: &str) -> Option<Protocol> {
    match s {
        "TCP" => Some(Protocol::Tcp),
        "UDP" => Some(Protocol::Udp),
        "SCTP" => Some(Protocol::Sctp),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_nest_and_stay_dense() {
        for select in [
            Select::App,
            Select::Unit,
            Select::Socket,
            Select::Service,
            Select::ServicePort,
        ] {
            let (schema, keys) = schema_for(select);
            assert_eq!(schema.len(), keys.len(), "{select:?}");
            // Every broader scope embeds the app attributes.
            for (name, _, _) in APP_ATTRS {
                assert!(schema.lookup(name).is_some(), "{select:?} misses {name}");
            }
        }
        let (socket_schema, _) = schema_for(Select::Socket);
        assert!(socket_schema.lookup("unit.host_network").is_some());
        assert!(socket_schema.lookup("socket.port").is_some());
        assert!(socket_schema.lookup("service.name").is_none());
        assert_eq!(Select::parse("service_port"), Some(Select::ServicePort));
        assert_eq!(Select::parse("pod"), None);
        assert!(Select::Socket.unit_scoped());
        assert!(!Select::ServicePort.unit_scoped());
    }
}
