//! The procedural corpus end to end: generated populations stream through
//! the census pipeline, the analyzer's findings match the generated ground
//! truth with per-rule precision/recall of exactly 1.0, and the CLI's
//! `--synthetic` census is byte-identical across thread counts.

use inside_job::core::MisconfigId;
use inside_job::datasets::{
    score_corpus, CensusPipeline, CorpusGenerator, CorpusProfile, MisconfigMix,
};
use std::process::Command;

fn generator(profile: &str, apps: usize, seed: u64) -> CorpusGenerator {
    CorpusGenerator::new(
        CorpusProfile::named(profile)
            .unwrap_or_else(|| panic!("profile {profile}"))
            .with_apps(apps)
            .with_seed(seed),
    )
}

/// The acceptance bar of the generator: the hybrid analyzer over a
/// generated population detects **exactly** the injected ground truth —
/// per-rule precision and recall of 1.0 (trivially including the static
/// rules), plus exact cluster-wide M4\* group accounting.
#[test]
fn generated_ground_truth_scores_perfectly() {
    // The baseline M4* rate (1.7%) needs a large population before two
    // apps share a token; raise it so this 400-app run always exercises
    // the cluster-wide accounting.
    let mut mix = MisconfigMix::baseline();
    mix.set("m4star", 0.1).expect("known rule");
    let generator = CorpusGenerator::new(
        CorpusProfile::named("baseline")
            .expect("baseline profile")
            .with_apps(400)
            .with_seed(7)
            .with_mix(mix),
    );
    let census = CensusPipeline::builder()
        .seed(7)
        .build()
        .run_generated(&generator)
        .expect("generated corpus renders and installs");
    assert_eq!(census.apps.len(), 400);

    // Reports come back in generation order, so spec i pairs with report i.
    let specs: Vec<_> = generator.iter().collect();
    let report = score_corpus(
        specs
            .iter()
            .zip(&census.apps)
            .map(|(spec, app)| (spec, app.findings.as_slice())),
    );
    for id in MisconfigId::ALL {
        if id == MisconfigId::M4Star {
            continue; // attributed cluster-wide; checked below
        }
        let class = report.class(id);
        assert_eq!(class.precision(), 1.0, "{id} precision: {class:?}");
        assert_eq!(class.recall(), 1.0, "{id} recall: {class:?}");
    }
    let overall = report.overall();
    assert!(
        overall.true_positives > 200,
        "population too quiet: {overall:?}"
    );
    assert_eq!(overall.false_positives, 0);
    assert_eq!(overall.false_negatives, 0);

    // M4*: one finding per shared-token group with at least two members.
    let expected = generator.describe();
    let m4star_found: usize = census
        .apps
        .iter()
        .map(|a| a.count_of(MisconfigId::M4Star))
        .sum();
    assert_eq!(m4star_found, expected.expected[&MisconfigId::M4Star]);
    assert!(m4star_found > 0, "a 400-app baseline population collides");
}

/// Every scenario of the matrix keeps the ground-truth property, not just
/// the baseline profile.
#[test]
fn every_scenario_profile_scores_perfectly() {
    for profile in CorpusProfile::scenario_matrix() {
        let name = profile.name().to_string();
        let generator = CorpusGenerator::new(profile.with_apps(40).with_seed(3));
        let census = CensusPipeline::builder()
            .seed(3)
            .build()
            .run_generated(&generator)
            .expect("generated corpus renders and installs");
        let specs: Vec<_> = generator.iter().collect();
        let report = score_corpus(
            specs
                .iter()
                .zip(&census.apps)
                .map(|(spec, app)| (spec, app.findings.as_slice())),
        );
        let overall = report.overall();
        assert_eq!(overall.false_positives, 0, "{name}: {overall:?}");
        assert_eq!(overall.false_negatives, 0, "{name}: {overall:?}");
    }
}

/// The acceptance criterion verbatim: `ij census --synthetic 1000 --seed 7
/// --threads 8` completes and is byte-identical to `--threads 1`.
#[test]
fn cli_synthetic_census_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_ij"))
            .args([
                "census",
                "--synthetic",
                "1000",
                "--seed",
                "7",
                "--threads",
                threads,
            ])
            .output()
            .expect("spawn ij");
        assert!(
            out.status.success(),
            "--threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let eight = run("8");
    let one = run("1");
    assert!(!eight.is_empty());
    assert_eq!(
        String::from_utf8_lossy(&eight),
        String::from_utf8_lossy(&one),
        "synthetic census diverged across thread counts"
    );
    let table = String::from_utf8_lossy(&eight).to_string();
    assert!(table.contains("across 1000 application(s)"), "{table}");
}

/// `ij corpus --describe --synthetic …` prints exactly the ground truth the
/// census then reproduces: total findings and affected counts line up.
#[test]
fn describe_matches_the_census_it_predicts() {
    let generator = generator("mesh-heavy", 120, 9);
    let summary = generator.describe();
    let census = CensusPipeline::builder()
        .seed(9)
        .build()
        .run_generated(&generator)
        .expect("generated corpus renders and installs");
    assert_eq!(census.total_misconfigurations(), summary.expected_total());
    let affected = census.apps.iter().filter(|a| a.total() > 0).count();
    assert_eq!(affected, summary.affected);
}
