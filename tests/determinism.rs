//! Reproducibility: the whole evaluation is a pure function of the seed.

use inside_job::core::MisconfigId;
use inside_job::datasets::{corpus, run_census, CorpusOptions, Org};

#[test]
fn census_is_deterministic_across_runs() {
    let slice: Vec<_> = corpus()
        .into_iter()
        .filter(|a| a.org == Org::PrometheusCommunity)
        .collect();
    let a = run_census(&slice, &CorpusOptions::default());
    let b = run_census(&slice, &CorpusOptions::default());
    assert_eq!(a.apps.len(), b.apps.len());
    for (x, y) in a.apps.iter().zip(b.apps.iter()) {
        assert_eq!(x.findings, y.findings, "app {}", x.app);
    }
}

#[test]
fn different_seed_same_census_shape() {
    // Ephemeral port numbers change with the seed, but the *findings* (which
    // never depend on the specific port value, only its class) must not.
    let slice: Vec<_> = corpus()
        .into_iter()
        .filter(|a| a.org == Org::Wikimedia)
        .collect();
    let a = run_census(&slice, &CorpusOptions::default());
    let b = run_census(
        &slice,
        &CorpusOptions {
            seed: 0xDEADBEEF,
            ..Default::default()
        },
    );
    for id in MisconfigId::ALL {
        let count =
            |c: &inside_job::core::Census| c.apps.iter().map(|r| r.count_of(id)).sum::<usize>();
        assert_eq!(count(&a), count(&b), "{id} count differs across seeds");
    }
}
