//! Pods, containers, and declared container ports.

use crate::codec;
use crate::error::{Error, Result};
use crate::meta::ObjectMeta;
use ij_yaml::{Map, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Transport protocol of a port. Kubernetes defaults to TCP everywhere.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Protocol {
    /// Transmission Control Protocol (the default).
    #[default]
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Stream Control Transmission Protocol (rare; supported for
    /// completeness).
    Sctp,
}

impl Protocol {
    pub(crate) fn decode(s: &str, ctx: &str) -> Result<Protocol> {
        match s {
            "TCP" => Ok(Protocol::Tcp),
            "UDP" => Ok(Protocol::Udp),
            "SCTP" => Ok(Protocol::Sctp),
            other => Err(Error::malformed(format!(
                "{ctx}: unknown protocol `{other}`"
            ))),
        }
    }

    /// Kubernetes wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Protocol::Tcp => "TCP",
            Protocol::Udp => "UDP",
            Protocol::Sctp => "SCTP",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A declared container port.
///
/// Per the paper (§3.4), this declaration is *documentative*: Kubernetes never
/// verifies that the container actually listens here (M3) nor that every open
/// socket is declared (M1). The analyzer's whole job is to close that gap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerPort {
    /// Optional IANA-style name, referenced by services' named targetPorts.
    pub name: Option<String>,
    /// The declared port number.
    pub container_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Optional host port mapping (binds through the node).
    pub host_port: Option<u16>,
}

impl ContainerPort {
    /// A plain TCP port declaration.
    pub fn tcp(port: u16) -> Self {
        ContainerPort {
            name: None,
            container_port: port,
            protocol: Protocol::Tcp,
            host_port: None,
        }
    }

    /// A named TCP port declaration.
    pub fn named(name: impl Into<String>, port: u16) -> Self {
        ContainerPort {
            name: Some(name.into()),
            container_port: port,
            protocol: Protocol::Tcp,
            host_port: None,
        }
    }

    /// Builder-style protocol override.
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    pub(crate) fn decode(map: &Map, ctx: &str) -> Result<ContainerPort> {
        let container_port = codec::opt_int(map, "containerPort", ctx)?
            .ok_or_else(|| Error::malformed(format!("missing `{ctx}.containerPort`")))?;
        if !(1..=65535).contains(&container_port) {
            return Err(Error::malformed(format!(
                "{ctx}.containerPort: {container_port} out of range"
            )));
        }
        let protocol = match codec::opt_str(map, "protocol", ctx)? {
            Some(p) => Protocol::decode(&p, ctx)?,
            None => Protocol::Tcp,
        };
        let host_port = codec::opt_int(map, "hostPort", ctx)?
            .map(|p| {
                u16::try_from(p)
                    .map_err(|_| Error::malformed(format!("{ctx}.hostPort: {p} out of range")))
            })
            .transpose()?;
        Ok(ContainerPort {
            name: codec::opt_str(map, "name", ctx)?,
            container_port: container_port as u16,
            protocol,
            host_port,
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut m = Map::with_capacity(4);
        if let Some(n) = &self.name {
            m.push_unchecked("name", Value::str(n));
        }
        m.push_unchecked("containerPort", Value::Int(self.container_port as i64));
        if self.protocol != Protocol::Tcp {
            m.push_unchecked("protocol", Value::str(self.protocol.as_str()));
        }
        if let Some(hp) = self.host_port {
            m.push_unchecked("hostPort", Value::Int(hp as i64));
        }
        Value::Map(m)
    }
}

/// An environment variable. The simulator's container behaviour models read
/// these to decide deployment modes (e.g. a `CLUSTER_MODE` switch that opens
/// or closes ports), mirroring how real applications behave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvVar {
    /// Variable name.
    pub name: String,
    /// Literal value (valueFrom sources are out of scope).
    pub value: String,
}

/// A container within a pod.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Container {
    /// Container name, unique within the pod.
    pub name: String,
    /// Image reference; the simulator maps this to a behaviour model.
    pub image: String,
    /// Declared ports (purely documentative — see [`ContainerPort`]).
    pub ports: Vec<ContainerPort>,
    /// Environment.
    pub env: Vec<EnvVar>,
}

impl Container {
    /// Creates a container with no declared ports.
    pub fn new(name: impl Into<String>, image: impl Into<String>) -> Self {
        Container {
            name: name.into(),
            image: image.into(),
            ports: Vec::new(),
            env: Vec::new(),
        }
    }

    /// Builder-style port declaration.
    pub fn with_ports(mut self, ports: Vec<ContainerPort>) -> Self {
        self.ports = ports;
        self
    }

    /// Builder-style environment variable.
    pub fn with_env(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.push(EnvVar {
            name: name.into(),
            value: value.into(),
        });
        self
    }

    /// Finds a declared port by its name.
    pub fn port_by_name(&self, name: &str) -> Option<&ContainerPort> {
        self.ports.iter().find(|p| p.name.as_deref() == Some(name))
    }

    /// Environment lookup.
    pub fn env_value(&self, name: &str) -> Option<&str> {
        self.env
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value.as_str())
    }

    pub(crate) fn decode(map: &Map, ctx: &str) -> Result<Container> {
        let name = codec::req_str(map, "name", ctx)?;
        let image = codec::opt_str(map, "image", ctx)?.unwrap_or_default();
        let mut ports = Vec::new();
        for (i, p) in codec::opt_seq(map, "ports", ctx)?.iter().enumerate() {
            let pctx = format!("{ctx}.ports[{i}]");
            ports.push(ContainerPort::decode(codec::as_map(p, &pctx)?, &pctx)?);
        }
        let mut env = Vec::new();
        for (i, e) in codec::opt_seq(map, "env", ctx)?.iter().enumerate() {
            let ectx = format!("{ctx}.env[{i}]");
            let em = codec::as_map(e, &ectx)?;
            env.push(EnvVar {
                name: codec::req_str(em, "name", &ectx)?,
                value: codec::opt_str(em, "value", &ectx)?.unwrap_or_default(),
            });
        }
        Ok(Container {
            name,
            image,
            ports,
            env,
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut m = Map::with_capacity(4);
        m.push_unchecked("name", Value::str(&self.name));
        m.push_unchecked("image", Value::str(&self.image));
        if !self.ports.is_empty() {
            m.push_unchecked(
                "ports",
                Value::Seq(self.ports.iter().map(ContainerPort::encode).collect()),
            );
        }
        if !self.env.is_empty() {
            let env = self
                .env
                .iter()
                .map(|e| {
                    let mut em = Map::with_capacity(2);
                    em.push_unchecked("name", Value::str(&e.name));
                    em.push_unchecked("value", Value::str(&e.value));
                    Value::Map(em)
                })
                .collect();
            m.push_unchecked("env", Value::Seq(env));
        }
        Value::Map(m)
    }
}

/// Pod specification.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PodSpec {
    /// Containers sharing the pod's network namespace.
    pub containers: Vec<Container>,
    /// When true the pod binds directly into the node's network namespace,
    /// bypassing all NetworkPolicies (the paper's M7).
    pub host_network: bool,
    /// Scheduling pin, set by the scheduler.
    pub node_name: Option<String>,
}

impl PodSpec {
    pub(crate) fn decode(map: &Map, ctx: &str) -> Result<PodSpec> {
        let mut containers = Vec::new();
        for (i, c) in codec::opt_seq(map, "containers", ctx)?.iter().enumerate() {
            let cctx = format!("{ctx}.containers[{i}]");
            containers.push(Container::decode(codec::as_map(c, &cctx)?, &cctx)?);
        }
        Ok(PodSpec {
            containers,
            host_network: codec::opt_bool(map, "hostNetwork", ctx)?.unwrap_or(false),
            node_name: codec::opt_str(map, "nodeName", ctx)?,
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut m = Map::with_capacity(3);
        if self.host_network {
            m.push_unchecked("hostNetwork", Value::Bool(true));
        }
        if let Some(n) = &self.node_name {
            m.push_unchecked("nodeName", Value::str(n));
        }
        m.push_unchecked(
            "containers",
            Value::Seq(self.containers.iter().map(Container::encode).collect()),
        );
        Value::Map(m)
    }
}

/// Observed pod status, populated by the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PodStatus {
    /// Pod IP on the cluster network (node IP for hostNetwork pods).
    pub pod_ip: Option<String>,
    /// Lifecycle phase (`Pending`, `Running`, ...).
    pub phase: String,
}

/// A pod: the smallest deployable compute unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pod {
    /// Metadata (name, namespace, labels).
    pub meta: ObjectMeta,
    /// Desired specification.
    pub spec: PodSpec,
    /// Observed status.
    pub status: PodStatus,
}

impl Pod {
    /// Creates a pod with the given metadata and spec.
    pub fn new(meta: ObjectMeta, spec: PodSpec) -> Self {
        Pod {
            meta,
            spec,
            status: PodStatus::default(),
        }
    }

    /// All declared ports across containers.
    pub fn declared_ports(&self) -> impl Iterator<Item = (&Container, &ContainerPort)> {
        self.spec
            .containers
            .iter()
            .flat_map(|c| c.ports.iter().map(move |p| (c, p)))
    }

    /// Resolves a named port to its number across all containers.
    pub fn resolve_port_name(&self, name: &str) -> Option<u16> {
        self.spec
            .containers
            .iter()
            .find_map(|c| c.port_by_name(name).map(|p| p.container_port))
    }

    pub(crate) fn decode(root: &Map) -> Result<Pod> {
        let meta = ObjectMeta::decode(root)?;
        let spec = match codec::opt_map(root, "spec", "pod")? {
            Some(m) => PodSpec::decode(m, "spec")?,
            None => PodSpec::default(),
        };
        Ok(Pod::new(meta, spec))
    }

    pub(crate) fn encode(&self) -> Value {
        let mut m = Map::with_capacity(4);
        m.push_unchecked("apiVersion", Value::str("v1"));
        m.push_unchecked("kind", Value::str("Pod"));
        m.push_unchecked("metadata", self.meta.encode());
        m.push_unchecked("spec", self.spec.encode());
        Value::Map(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_flink_style_pod() {
        // The motivating example from Figure 1 of the paper.
        let src = "\
apiVersion: v1
kind: Pod
metadata:
  name: flink
spec:
  containers:
    - name: flink
      image: bitnami/flink
      ports:
        - containerPort: 6121
        - containerPort: 6123
        - containerPort: 8081
";
        let v = ij_yaml::parse(src).unwrap();
        let pod = Pod::decode(v.as_map().unwrap()).unwrap();
        assert_eq!(pod.meta.name, "flink");
        let ports: Vec<u16> = pod
            .declared_ports()
            .map(|(_, p)| p.container_port)
            .collect();
        assert_eq!(ports, vec![6121, 6123, 8081]);
        assert!(!pod.spec.host_network);
    }

    #[test]
    fn named_port_resolution() {
        let pod = Pod::new(
            ObjectMeta::named("web"),
            PodSpec {
                containers: vec![Container::new("web", "nginx")
                    .with_ports(vec![ContainerPort::named("http", 8080)])],
                ..Default::default()
            },
        );
        assert_eq!(pod.resolve_port_name("http"), Some(8080));
        assert_eq!(pod.resolve_port_name("https"), None);
    }

    #[test]
    fn port_range_validation() {
        let src = "name: c\nports:\n  - containerPort: 70000\n";
        let v = ij_yaml::parse(src).unwrap();
        assert!(Container::decode(v.as_map().unwrap(), "c").is_err());
    }

    #[test]
    fn udp_protocol_decodes() {
        let src = "containerPort: 53\nprotocol: UDP\n";
        let v = ij_yaml::parse(src).unwrap();
        let p = ContainerPort::decode(v.as_map().unwrap(), "p").unwrap();
        assert_eq!(p.protocol, Protocol::Udp);
    }

    #[test]
    fn pod_encode_round_trip() {
        let pod = Pod::new(
            ObjectMeta::named("web").with_labels(Labels::from_pairs([("app", "web")])),
            PodSpec {
                containers: vec![Container::new("web", "nginx:1.25")
                    .with_ports(vec![
                        ContainerPort::named("http", 8080),
                        ContainerPort::tcp(9090).with_protocol(Protocol::Udp),
                    ])
                    .with_env("MODE", "cluster")],
                host_network: true,
                node_name: None,
            },
        );
        let encoded = pod.encode();
        let back = Pod::decode(encoded.as_map().unwrap()).unwrap();
        assert_eq!(pod.meta, back.meta);
        assert_eq!(pod.spec, back.spec);
    }

    use crate::meta::Labels;
}
