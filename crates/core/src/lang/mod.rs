//! # The auditable rule expression language
//!
//! A small, typed expression language that makes the analyzer's rules
//! *data*: parse → typed AST → compiled evaluator, with every name resolved
//! at load time. The pipeline:
//!
//! 1. **Lex/parse** ([`parse`]): hand-rolled recursive descent over a
//!    C-like grammar — `!` binds tighter than comparisons, then `&&`, then
//!    `||`; comparisons don't chain. Every error carries a line/column
//!    [`Span`].
//!
//!    ```text
//!    expr   := or
//!    or     := and ("||" and)*
//!    and    := cmp ("&&" cmp)*
//!    cmp    := unary (("==" | "!=" | "<" | "<=" | ">" | ">=" |
//!                      "CONTAINS" | "IN") unary)?
//!    unary  := "!" unary | primary
//!    primary:= literal | list | path | path "(" args ")" | "(" expr ")"
//!    ```
//!
//! 2. **Type-check/compile** ([`compile`]): attributes resolve to dense
//!    [`AttrId`](ij_model::AttrId)s against the selection scope's schema,
//!    `labels.*` literals intern to [`KeyId`](ij_model::KeyId)/
//!    [`LabelId`](ij_model::LabelId) probes, builtin calls bind to their
//!    [`BuiltinKind`]. What survives cannot fail at run time.
//!
//! 3. **Evaluate** ([`evaluate`] / [`evaluate_with_trace`]): deterministic,
//!    infallible, resolver-driven — the [`RuleResolver`] answers integer-id
//!    probes only; no string lookup happens per entity. The traced variant
//!    records one [`TraceAtom`] per attribute read, label/port probe,
//!    call, and comparison, in evaluation order; short-circuited branches
//!    leave no atoms, so the trace *is* the explanation of the verdict.
//!
//! [`RulePack`] layers a file format on top (rules + `disable` directives)
//! and compiles into registry entries; the built-in pack
//! ([`RulePack::builtin`]) re-expresses M1, M2, the M5 family, M6, and M7,
//! and is property-tested byte-identical to the native rules.

mod ast;
mod builtins;
mod compile;
mod eval;
mod lex;
mod pack;
mod resolve;

pub use ast::{parse, Comparator, Expr, ExprKind};
pub use builtins::{BuiltinDef, BuiltinKind, BuiltinsRegistry};
pub use compile::{compile, CompileEnv, CompiledExpr, Type};
pub use eval::{evaluate, evaluate_with_trace, RuleResolver, TraceAtom, Value};
pub use lex::{LangError, Span};
pub use pack::{CompiledRule, RulePack, BUILTIN_PACK_SOURCE};
pub use resolve::Select;
