//! The CNI's NetworkPolicy engine.
//!
//! Kubernetes semantics, faithfully:
//!
//! * With **no** policy selecting a pod for a direction, that direction is
//!   **allow-all** (the default the paper's M6 flags as too permissive).
//! * Once ≥1 policy selects the pod for a direction, the direction becomes
//!   deny-by-default and the union of all matching rules is allowed.
//! * Policies are namespaced; `podSelector` peers match pods in the
//!   *policy's* namespace unless a `namespaceSelector` widens the scope.
//! * `hostNetwork` pods bypass enforcement entirely (M7): as destination the
//!   packets never traverse the pod's veth, and as source the traffic
//!   carries the node IP, which pod selectors can never match.

use crate::cluster::RunningPod;
use ij_model::{Labels, NetworkPolicy, PolicyType, Protocol};
use std::collections::HashMap;

/// The outcome of a connection attempt evaluated against policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectionVerdict {
    /// Connection permitted.
    Allowed(AllowReason),
    /// Blocked by the destination's ingress policies.
    DeniedIngress,
    /// Blocked by the source's egress policies.
    DeniedEgress,
}

impl ConnectionVerdict {
    /// True when traffic flows.
    pub fn is_allowed(&self) -> bool {
        matches!(self, ConnectionVerdict::Allowed(_))
    }
}

/// Why a connection was permitted — the analyzer reports these to explain
/// *how* a misconfigured endpoint stayed reachable (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowReason {
    /// No policy selects either side: Kubernetes default-allow.
    DefaultAllow,
    /// Policies exist and at least one rule matches on every controlled
    /// direction.
    PolicyRuleMatch,
    /// The destination runs on the host network, bypassing enforcement.
    HostNetworkBypass,
}

/// Evaluates NetworkPolicies over a set of running pods.
pub struct PolicyEngine<'a> {
    policies: Vec<&'a NetworkPolicy>,
    namespace_labels: HashMap<String, Labels>,
}

impl<'a> PolicyEngine<'a> {
    /// Builds an engine from the cluster's policies and the labels of its
    /// namespaces.
    pub fn new(
        policies: &'a [NetworkPolicy],
        namespaces: impl IntoIterator<Item = (String, Labels)>,
    ) -> Self {
        Self::from_refs(policies.iter().collect(), namespaces)
    }

    /// Builds an engine from policy references (used when policies live
    /// inside a heterogeneous object store).
    pub fn from_refs(
        policies: Vec<&'a NetworkPolicy>,
        namespaces: impl IntoIterator<Item = (String, Labels)>,
    ) -> Self {
        PolicyEngine {
            policies,
            namespace_labels: namespaces.into_iter().collect(),
        }
    }

    /// Labels of a namespace; undeclared namespaces still carry the
    /// well-known `kubernetes.io/metadata.name` label, as since v1.22.
    fn ns_labels(&self, ns: &str) -> Labels {
        let mut labels = self.namespace_labels.get(ns).cloned().unwrap_or_default();
        labels.insert("kubernetes.io/metadata.name", ns);
        labels
    }

    /// Evaluates whether `src` may open a connection to `dst` on
    /// `(port, protocol)`.
    pub fn verdict(
        &self,
        src: &RunningPod,
        dst: &RunningPod,
        port: u16,
        protocol: Protocol,
    ) -> ConnectionVerdict {
        // M7: a destination on the host network is never policy-protected.
        if dst.pod.spec.host_network {
            return ConnectionVerdict::Allowed(AllowReason::HostNetworkBypass);
        }

        let ingress_policies: Vec<&NetworkPolicy> = self
            .policies
            .iter()
            .copied()
            .filter(|p| {
                p.applies_to(PolicyType::Ingress)
                    && p.meta.namespace == dst.pod.meta.namespace
                    && p.spec.pod_selector.matches(&dst.pod.meta.labels)
            })
            .collect();
        // Egress enforcement applies to the source — unless the source is on
        // the host network, where its traffic never hits the pod datapath.
        let egress_policies: Vec<&NetworkPolicy> = if src.pod.spec.host_network {
            Vec::new()
        } else {
            self.policies
                .iter()
                .copied()
                .filter(|p| {
                    p.applies_to(PolicyType::Egress)
                        && p.meta.namespace == src.pod.meta.namespace
                        && p.spec.pod_selector.matches(&src.pod.meta.labels)
                })
                .collect()
        };

        if !ingress_policies.is_empty() {
            let allowed = ingress_policies.iter().any(|p| {
                p.spec.ingress.iter().any(|rule| {
                    self.peers_match(&rule.peers, &p.meta.namespace, src)
                        && ports_match(&rule.ports, dst, port, protocol)
                })
            });
            if !allowed {
                return ConnectionVerdict::DeniedIngress;
            }
        }
        if !egress_policies.is_empty() {
            let allowed = egress_policies.iter().any(|p| {
                p.spec.egress.iter().any(|rule| {
                    self.peers_match(&rule.peers, &p.meta.namespace, dst)
                        && ports_match(&rule.ports, dst, port, protocol)
                })
            });
            if !allowed {
                return ConnectionVerdict::DeniedEgress;
            }
        }

        if ingress_policies.is_empty() && egress_policies.is_empty() {
            ConnectionVerdict::Allowed(AllowReason::DefaultAllow)
        } else {
            ConnectionVerdict::Allowed(AllowReason::PolicyRuleMatch)
        }
    }

    /// True when the peer list (empty = all) admits `other`.
    fn peers_match(
        &self,
        peers: &[ij_model::NetworkPolicyPeer],
        policy_ns: &str,
        other: &RunningPod,
    ) -> bool {
        if peers.is_empty() {
            return true;
        }
        peers.iter().any(|peer| {
            if let Some(block) = &peer.ip_block {
                if ip_in_cidr(&other.ip, &block.cidr)
                    && !block.except.iter().any(|e| ip_in_cidr(&other.ip, e))
                {
                    return true;
                }
            }
            // A host-network peer presents the node IP; pod selectors never
            // match it. Only ipBlock peers (handled above) can admit it.
            if other.pod.spec.host_network {
                return false;
            }
            match (&peer.pod_selector, &peer.namespace_selector) {
                (None, None) => peer.ip_block.is_none(),
                (Some(ps), None) => {
                    other.pod.meta.namespace == policy_ns && ps.matches(&other.pod.meta.labels)
                }
                (None, Some(ns)) => ns.matches(&self.ns_labels(&other.pod.meta.namespace)),
                (Some(ps), Some(ns)) => {
                    ns.matches(&self.ns_labels(&other.pod.meta.namespace))
                        && ps.matches(&other.pod.meta.labels)
                }
            }
        })
    }
}

/// True when the rule's port list (empty = all) covers the destination port.
fn ports_match(
    ports: &[ij_model::PolicyPort],
    dst: &RunningPod,
    port: u16,
    protocol: Protocol,
) -> bool {
    if ports.is_empty() {
        return true;
    }
    let resolve = |name: &str| dst.pod.resolve_port_name(name);
    ports.iter().any(|p| p.covers(port, protocol, &resolve))
}

/// Parses a dotted-quad IPv4 address. Shared with the compiled
/// [`PolicyIndex`](crate::PolicyIndex) so both paths agree on what counts
/// as a parseable address.
pub(crate) fn parse_v4(s: &str) -> Option<u32> {
    let mut out: u32 = 0;
    let mut parts = 0;
    for seg in s.split('.') {
        let n: u32 = seg.parse().ok()?;
        if n > 255 {
            return None;
        }
        out = (out << 8) | n;
        parts += 1;
    }
    (parts == 4).then_some(out)
}

/// Parses a CIDR (or bare address) into `(network, mask)`; `None` means
/// malformed, which never matches anything.
pub(crate) fn parse_cidr(cidr: &str) -> Option<(u32, u32)> {
    let (net, len) = match cidr.split_once('/') {
        Some((net, len)) => (parse_v4(net)?, len.parse::<u32>().ok()?.min(32)),
        None => (parse_v4(cidr)?, 32),
    };
    let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
    Some((net, mask))
}

/// Minimal IPv4 CIDR containment test.
fn ip_in_cidr(ip: &str, cidr: &str) -> bool {
    let Some(addr) = parse_v4(ip) else {
        return false;
    };
    let Some((net, mask)) = parse_cidr(cidr) else {
        return false;
    };
    (addr & mask) == (net & mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{OpenSocket, RunningPod};
    use ij_model::{
        Container, ContainerPort, LabelSelector, NetworkPolicy, NetworkPolicyPeer, ObjectMeta, Pod,
        PodSpec, PolicyPort,
    };

    fn pod(name: &str, ns: &str, labels: &[(&str, &str)], host_network: bool) -> RunningPod {
        let meta = ObjectMeta::named(name)
            .in_namespace(ns)
            .with_labels(Labels::from_pairs(labels.iter().copied()));
        RunningPod {
            pod: Pod::new(
                meta,
                PodSpec {
                    containers: vec![Container::new("c", "img")
                        .with_ports(vec![ContainerPort::named("http", 8080)])],
                    host_network,
                    node_name: Some("node-0".into()),
                },
            ),
            node: "node-0".into(),
            ip: if host_network {
                "192.168.49.2".into()
            } else {
                "10.244.0.5".into()
            },
            sockets: vec![OpenSocket {
                port: 8080,
                protocol: Protocol::Tcp,
                loopback_only: false,
                ephemeral: false,
                container: "c".into(),
            }],
            owner: None,
        }
    }

    fn allow_from(app: &str, ns: &str, from_app: &str, port: u16) -> NetworkPolicy {
        NetworkPolicy::allow_ingress(
            ObjectMeta::named(format!("allow-{app}")).in_namespace(ns),
            LabelSelector::from_labels(Labels::from_pairs([("app", app)])),
            vec![NetworkPolicyPeer::pods(LabelSelector::from_labels(
                Labels::from_pairs([("app", from_app)]),
            ))],
            vec![PolicyPort::tcp(port)],
        )
    }

    #[test]
    fn default_allow_without_policies() {
        let engine = PolicyEngine::new(&[], []);
        let a = pod("a", "default", &[("app", "a")], false);
        let b = pod("b", "default", &[("app", "b")], false);
        assert_eq!(
            engine.verdict(&a, &b, 8080, Protocol::Tcp),
            ConnectionVerdict::Allowed(AllowReason::DefaultAllow)
        );
    }

    #[test]
    fn policy_denies_unlisted_peer() {
        let policies = vec![allow_from("db", "default", "api", 8080)];
        let engine = PolicyEngine::new(&policies, []);
        let api = pod("api", "default", &[("app", "api")], false);
        let web = pod("web", "default", &[("app", "web")], false);
        let db = pod("db", "default", &[("app", "db")], false);
        assert!(engine.verdict(&api, &db, 8080, Protocol::Tcp).is_allowed());
        assert_eq!(
            engine.verdict(&web, &db, 8080, Protocol::Tcp),
            ConnectionVerdict::DeniedIngress
        );
    }

    #[test]
    fn policy_denies_unlisted_port() {
        let policies = vec![allow_from("db", "default", "api", 5432)];
        let engine = PolicyEngine::new(&policies, []);
        let api = pod("api", "default", &[("app", "api")], false);
        let db = pod("db", "default", &[("app", "db")], false);
        assert_eq!(
            engine.verdict(&api, &db, 8080, Protocol::Tcp),
            ConnectionVerdict::DeniedIngress
        );
    }

    #[test]
    fn union_of_policies() {
        // Two policies on the same pod: rules are unioned.
        let policies = vec![
            allow_from("db", "default", "api", 5432),
            allow_from("db", "default", "backup", 5432),
        ];
        let engine = PolicyEngine::new(&policies, []);
        let backup = pod("backup", "default", &[("app", "backup")], false);
        let db = pod("db", "default", &[("app", "db")], false);
        assert!(engine
            .verdict(&backup, &db, 5432, Protocol::Tcp)
            .is_allowed());
    }

    #[test]
    fn deny_all_policy() {
        let policies = vec![NetworkPolicy::deny_all_ingress(
            ObjectMeta::named("deny").in_namespace("default"),
            LabelSelector::everything(),
        )];
        let engine = PolicyEngine::new(&policies, []);
        let a = pod("a", "default", &[("app", "a")], false);
        let b = pod("b", "default", &[("app", "b")], false);
        assert_eq!(
            engine.verdict(&a, &b, 8080, Protocol::Tcp),
            ConnectionVerdict::DeniedIngress
        );
    }

    #[test]
    fn host_network_destination_bypasses_policy() {
        // The §4.3.2 finding: strict policies targeting hostNetwork pods are
        // ineffective.
        let policies = vec![NetworkPolicy::deny_all_ingress(
            ObjectMeta::named("deny").in_namespace("default"),
            LabelSelector::everything(),
        )];
        let engine = PolicyEngine::new(&policies, []);
        let a = pod("a", "default", &[("app", "a")], false);
        let exporter = pod("exporter", "default", &[("app", "exporter")], true);
        assert_eq!(
            engine.verdict(&a, &exporter, 9100, Protocol::Tcp),
            ConnectionVerdict::Allowed(AllowReason::HostNetworkBypass)
        );
    }

    #[test]
    fn host_network_source_not_matched_by_pod_selector() {
        let policies = vec![allow_from("db", "default", "api", 8080)];
        let engine = PolicyEngine::new(&policies, []);
        // Attacker impersonates the api labels but runs on the host network:
        // its traffic carries the node IP, so the selector cannot admit it.
        let host_api = pod("api", "default", &[("app", "api")], true);
        let db = pod("db", "default", &[("app", "db")], false);
        assert_eq!(
            engine.verdict(&host_api, &db, 8080, Protocol::Tcp),
            ConnectionVerdict::DeniedIngress
        );
    }

    #[test]
    fn namespace_selector_cross_namespace() {
        let np = NetworkPolicy::allow_ingress(
            ObjectMeta::named("allow-monitoring").in_namespace("prod"),
            LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
            vec![NetworkPolicyPeer {
                pod_selector: None,
                namespace_selector: Some(LabelSelector::from_labels(Labels::from_pairs([(
                    "team", "sre",
                )]))),
                ip_block: None,
            }],
            vec![],
        );
        let policies = vec![np];
        let engine = PolicyEngine::new(
            &policies,
            [(
                "monitoring".to_string(),
                Labels::from_pairs([("team", "sre")]),
            )],
        );
        let prom = pod("prom", "monitoring", &[("app", "prometheus")], false);
        let other = pod("other", "default", &[("app", "prometheus")], false);
        let db = pod("db", "prod", &[("app", "db")], false);
        assert!(engine.verdict(&prom, &db, 5432, Protocol::Tcp).is_allowed());
        assert_eq!(
            engine.verdict(&other, &db, 5432, Protocol::Tcp),
            ConnectionVerdict::DeniedIngress
        );
    }

    #[test]
    fn metadata_name_namespace_selector() {
        // Selecting a namespace by its implicit kubernetes.io/metadata.name.
        let np = NetworkPolicy::allow_ingress(
            ObjectMeta::named("allow-kube-system").in_namespace("prod"),
            LabelSelector::everything(),
            vec![NetworkPolicyPeer {
                pod_selector: None,
                namespace_selector: Some(LabelSelector::from_labels(Labels::from_pairs([(
                    "kubernetes.io/metadata.name",
                    "kube-system",
                )]))),
                ip_block: None,
            }],
            vec![],
        );
        let policies = vec![np];
        let engine = PolicyEngine::new(&policies, []);
        let sys = pod("coredns", "kube-system", &[("k8s-app", "dns")], false);
        let db = pod("db", "prod", &[("app", "db")], false);
        assert!(engine.verdict(&sys, &db, 1234, Protocol::Tcp).is_allowed());
    }

    #[test]
    fn egress_policy_restricts_source() {
        let np = NetworkPolicy {
            meta: ObjectMeta::named("egress-lock").in_namespace("default"),
            spec: ij_model::NetworkPolicySpec {
                pod_selector: LabelSelector::from_labels(Labels::from_pairs([("app", "worker")])),
                policy_types: vec![PolicyType::Egress],
                ingress: vec![],
                egress: vec![ij_model::NetworkPolicyRule {
                    peers: vec![NetworkPolicyPeer::pods(LabelSelector::from_labels(
                        Labels::from_pairs([("app", "queue")]),
                    ))],
                    ports: vec![PolicyPort::tcp(6379)],
                }],
            },
        };
        let policies = vec![np];
        let engine = PolicyEngine::new(&policies, []);
        let worker = pod("worker", "default", &[("app", "worker")], false);
        let queue = pod("queue", "default", &[("app", "queue")], false);
        let db = pod("db", "default", &[("app", "db")], false);
        assert!(engine
            .verdict(&worker, &queue, 6379, Protocol::Tcp)
            .is_allowed());
        assert_eq!(
            engine.verdict(&worker, &db, 5432, Protocol::Tcp),
            ConnectionVerdict::DeniedEgress
        );
    }

    #[test]
    fn ip_block_peer() {
        let np = NetworkPolicy::allow_ingress(
            ObjectMeta::named("allow-cidr").in_namespace("default"),
            LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
            vec![NetworkPolicyPeer {
                pod_selector: None,
                namespace_selector: None,
                ip_block: Some(ij_model::IpBlock {
                    cidr: "10.244.0.0/16".into(),
                    except: vec!["10.244.0.5/32".into()],
                }),
            }],
            vec![],
        );
        let policies = vec![np];
        let engine = PolicyEngine::new(&policies, []);
        let db = pod("db", "default", &[("app", "db")], false);
        let mut ok = pod("ok", "default", &[("app", "x")], false);
        ok.ip = "10.244.1.9".into();
        let excluded = pod("excluded", "default", &[("app", "x")], false); // 10.244.0.5
        assert!(engine.verdict(&ok, &db, 1, Protocol::Tcp).is_allowed());
        assert_eq!(
            engine.verdict(&excluded, &db, 1, Protocol::Tcp),
            ConnectionVerdict::DeniedIngress
        );
    }

    #[test]
    fn cidr_math() {
        assert!(ip_in_cidr("10.244.3.7", "10.244.0.0/16"));
        assert!(!ip_in_cidr("10.245.0.1", "10.244.0.0/16"));
        assert!(ip_in_cidr("1.2.3.4", "0.0.0.0/0"));
        assert!(ip_in_cidr("1.2.3.4", "1.2.3.4"));
        assert!(!ip_in_cidr("bogus", "10.0.0.0/8"));
    }

    #[test]
    fn named_port_in_policy_resolves_against_destination() {
        let np = NetworkPolicy::allow_ingress(
            ObjectMeta::named("named").in_namespace("default"),
            LabelSelector::from_labels(Labels::from_pairs([("app", "b")])),
            vec![],
            vec![ij_model::PolicyPort {
                protocol: Protocol::Tcp,
                port: Some(ij_model::PolicyPortRef::Name("http".into())),
                end_port: None,
            }],
        );
        let policies = vec![np];
        let engine = PolicyEngine::new(&policies, []);
        let a = pod("a", "default", &[("app", "a")], false);
        let b = pod("b", "default", &[("app", "b")], false); // declares http=8080
        assert!(engine.verdict(&a, &b, 8080, Protocol::Tcp).is_allowed());
        assert_eq!(
            engine.verdict(&a, &b, 9999, Protocol::Tcp),
            ConnectionVerdict::DeniedIngress
        );
    }
}
