//! Offline shim for `criterion`.
//!
//! Implements just enough of the Criterion API for the workspace's two
//! benches: `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`/`bench_function`/`finish`, a `Bencher` with `iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Behaviour mirrors real Criterion's two modes:
//!
//! * `cargo bench` passes `--bench`: each benchmark runs a short warm-up
//!   then a timed loop, and a mean time per iteration is printed.
//! * `cargo test` runs the bench binary *without* `--bench`: each closure
//!   executes exactly once as a smoke test, keeping `cargo test -q` fast.

use std::time::{Duration, Instant};

/// True when invoked by `cargo bench` (which passes `--bench`); false under
/// `cargo test`, where benches run once as smoke tests.
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Substring filters from the command line (real Criterion's positional
/// `FILTER` argument): any argument that is not a flag. When present, only
/// benchmarks whose full name contains one of them run.
fn matches_filter(name: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

pub struct Bencher {
    bench_mode: bool,
    /// (iterations, total wall time) of the measured loop.
    measurement: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if !self.bench_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm up ~50ms, then size the timed loop off the warm-up rate.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let target = Duration::from_millis(300).as_nanos();
        // A single iteration already blows past the timing target: the
        // warm-up pass *is* the measurement. Re-running would double the
        // wall clock of slow arms (a million-app census is minutes per
        // iteration) for no extra precision.
        if per_iter >= target {
            self.measurement = Some((warm_iters.max(1), start.elapsed()));
            return;
        }
        let iters = ((target / per_iter.max(1)) as u64).clamp(1, 1_000_000);
        let timed = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.measurement = Some((iters, timed.elapsed()));
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Mirrors `Criterion::configure_from_args`; CLI filtering is not
    /// implemented in the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    if !matches_filter(name) {
        return;
    }
    let mut b = Bencher {
        bench_mode: bench_mode(),
        measurement: None,
    };
    f(&mut b);
    match b.measurement {
        Some((iters, total)) => {
            let per = total.as_nanos() / u128::from(iters.max(1));
            println!("bench: {name:<40} {per:>12} ns/iter ({iters} iters)");
        }
        None if b.bench_mode => println!("bench: {name:<40} (no measurement)"),
        None => println!("bench (test mode): {name} ok"),
    }
}

/// Re-export for compatibility; real criterion has its own black_box.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        compile_error!("criterion shim: config-style criterion_group! is not supported");
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
