//! Compile-once chart rendering.
//!
//! [`Chart::render`] is a parse-per-call API: every call re-lexes and
//! re-parses each template file of the chart and its dependencies. That is
//! the right trade-off for a one-shot `ij render`, but the census pipeline
//! renders hundreds of charts (and renders some of them several times:
//! census, policy-impact, repeated studies). [`CompiledChart`] front-loads
//! all of that work:
//!
//! * every template file — including dependency charts — is lexed and
//!   parsed exactly **once**, at compile time;
//! * files without template actions (the common case for generated corpus
//!   charts) are rendered and decoded to typed objects at compile time;
//!   rendering them again is a clone plus a namespace stamp;
//! * per render, the root dot (`.Values`/`.Release`/`.Chart`) is built once
//!   per chart level and the shared partial set is borrowed — no partial
//!   body or values subtree is ever deep-cloned.
//!
//! Output is byte-identical to [`Chart::render`] (property-tested against
//! random corpus charts in `ij-datasets`). The one behavioural difference
//! is error timing: [`Chart::compile`] surfaces template syntax errors and
//! static-file decode errors eagerly — even for files of a dependency whose
//! enable condition is off — where the parse-per-call path only reports
//! them when the file is actually rendered.
//!
//! The handle is `Arc`-backed: clones share the compiled representation and
//! are cheap enough to cache per app (see `BuiltApp::compiled` in
//! `ij-datasets`).

use crate::chart::{
    decode_rendered, merge_values, stamp_namespace, Chart, Release, RenderedRelease, TemplateSource,
};
use crate::error::{Error, Result};
use crate::template::{
    build_root, eval_condition, parse_template, render_file, render_file_into, shared_defines,
    Node, ParsedTemplate, Pipeline,
};
use ij_model::Object;
use ij_yaml::{Map, Value};
use std::sync::Arc;

/// A chart compiled for render-many workloads: cached template ASTs, a
/// pre-decoded object set for action-free files, and per-release contexts
/// built exactly once per chart level. Build via [`Chart::compile`]; clone
/// freely (clones share the compiled representation).
#[derive(Debug, Clone)]
pub struct CompiledChart {
    root: Arc<CompiledLevel>,
}

/// One chart level (the root chart or a dependency): its identity, default
/// values, compiled template files, and compiled dependencies.
#[derive(Debug)]
struct CompiledLevel {
    name: String,
    version: String,
    values: Value,
    files: Vec<CompiledFile>,
    deps: Vec<CompiledDep>,
}

#[derive(Debug)]
struct CompiledDep {
    /// The dependency chart's name (also its values scope in the parent).
    chart_name: String,
    /// Dotted enable condition into the parent's merged values.
    condition: Option<String>,
    level: CompiledLevel,
}

#[derive(Debug)]
struct CompiledFile {
    name: String,
    /// Cached AST for text-sourced files; `None` for [`TemplateSource::Doc`]
    /// sources, which have nothing to parse (and contribute no partials).
    parsed: Option<ParsedTemplate>,
    plan: RenderPlan,
}

/// A pre-rendered file outcome: the document values it produces and their
/// typed decodings, both computed at compile time. The docs carry their
/// manifest namespaces ("default" when unset — stamping the compile-time
/// namespace is the identity); the release namespace is stamped per render.
#[derive(Debug, Default)]
struct StaticDocs {
    docs: Vec<Value>,
    objects: Vec<Object>,
}

/// What rendering a compiled file amounts to.
#[derive(Debug)]
enum RenderPlan {
    /// Underscore file: contributes partials, renders nothing.
    Partial,
    /// Action-free file whose output is all whitespace: renders nothing.
    Blank,
    /// Action-free file (or a pre-structured document): output never
    /// depends on the release, so documents and typed objects are decoded
    /// once at compile time and cloned per render.
    Static(StaticDocs),
    /// Text file whose only action is a single top-level `if`: every
    /// branch outcome is pre-rendered and pre-decoded at compile time, so a
    /// render evaluates the condition pipelines and clones the chosen
    /// outcome — no text is materialized. This is the shape of generated
    /// corpus gates like `{{- if .Values.networkPolicy.enabled }}…{{- end }}`.
    Gated {
        /// `(condition, outcome)` in source order; `None` is `else`.
        branches: Vec<(Option<Pipeline>, StaticDocs)>,
        /// Outcome when no branch is taken: the surrounding text alone.
        fallthrough: StaticDocs,
        line: usize,
    },
    /// File with template actions: evaluated per render (the cached AST is
    /// replayed; only evaluation happens).
    Dynamic,
}

impl CompiledChart {
    /// Compiles a chart: parses every template file (including
    /// dependencies) once and pre-decodes action-free files.
    ///
    /// ```
    /// use ij_chart::{Chart, CompiledChart, Release};
    ///
    /// let chart = Chart::builder("web")
    ///     .values_yaml("replicas: 2\n").unwrap()
    ///     .template("deploy.yaml", "\
    /// apiVersion: apps/v1
    /// kind: Deployment
    /// metadata:
    ///   name: {{ .Release.Name }}-web
    /// spec:
    ///   replicas: {{ .Values.replicas }}
    ///   selector:
    ///     matchLabels:
    ///       app: web
    ///   template:
    ///     metadata:
    ///       labels:
    ///         app: web
    ///     spec:
    ///       containers:
    ///         - name: web
    ///           image: acme/web
    ///           ports:
    ///             - containerPort: 8080
    /// ")
    ///     .build();
    ///
    /// // Parse once, render many: every render replays the cached ASTs.
    /// let compiled = CompiledChart::compile(&chart).unwrap();
    /// let fast = compiled.render(&Release::new("r1", "default")).unwrap();
    ///
    /// // Byte-identical to the parse-per-call oracle.
    /// let oracle = chart.render(&Release::new("r1", "default")).unwrap();
    /// assert_eq!(format!("{fast:?}"), format!("{oracle:?}"));
    /// ```
    pub fn compile(chart: &Chart) -> Result<CompiledChart> {
        Ok(CompiledChart {
            root: Arc::new(compile_level(chart)?),
        })
    }

    /// Root chart name.
    pub fn name(&self) -> &str {
        &self.root.name
    }

    /// Root chart version.
    pub fn version(&self) -> &str {
        &self.root.version
    }

    /// An identity token for the compiled representation: equal for two
    /// handles iff they share the same compilation (clones do; compiling
    /// the same chart twice does not). Useful as a render-memoization key —
    /// keep a handle alive alongside the key, since the token is only
    /// meaningful while the compilation it names exists.
    pub fn instance_key(&self) -> usize {
        Arc::as_ptr(&self.root) as usize
    }

    /// Renders the chart (and enabled dependencies) into typed objects.
    /// Byte-identical to [`Chart::render`] for the same chart and release.
    pub fn render(&self, release: &Release) -> Result<RenderedRelease> {
        let mut objects = Vec::new();
        let mut scratch = RenderScratch::default();
        self.render_objects_into(release, &mut scratch, &mut objects)?;
        Ok(RenderedRelease {
            release_name: release.name.clone(),
            namespace: release.namespace.clone(),
            chart_name: self.root.name.clone(),
            objects,
        })
    }

    /// Renders straight into a caller-owned object vec, reusing `scratch`
    /// across calls — the allocation-amortized form of [`render`](Self::render)
    /// the census workers use. Appends to `out` without clearing it; the
    /// appended objects are exactly `render(release)?.objects`.
    pub fn render_objects_into(
        &self,
        release: &Release,
        scratch: &mut RenderScratch,
        out: &mut Vec<Object>,
    ) -> Result<()> {
        let merged = merge_values(&self.root.values, &release.overrides)?;
        self.root.render_into(release, merged, scratch, out)
    }

    /// Evaluates the chart for a release directly into per-file document
    /// values — the manifest stream the text path would emit and reparse,
    /// without the text. Static and gated files clone compile-time
    /// documents; only genuinely dynamic files render text (which is then
    /// parsed, never emitted).
    ///
    /// The documents carry their manifest namespaces: the release namespace
    /// is **not** stamped here, because stamping is part of decoding (see
    /// `decode_rendered`). Emitting each returned document and decoding it
    /// under the release namespace yields exactly
    /// [`render`](Self::render)`(release)?.objects` — the property test in
    /// `ij-datasets` holds this path to the text oracle.
    pub fn render_values(&self, release: &Release) -> Result<Vec<Value>> {
        let merged = merge_values(&self.root.values, &release.overrides)?;
        let mut docs = Vec::new();
        self.root.render_values_into(release, merged, &mut docs)?;
        Ok(docs)
    }
}

/// Reusable render state owned by a pipeline worker: the text buffer
/// genuinely dynamic files render into. Every use clears it; only capacity
/// survives between apps, so steady-state renders stop allocating output
/// buffers.
#[derive(Debug, Default)]
pub struct RenderScratch {
    rendered: String,
}

fn compile_level(chart: &Chart) -> Result<CompiledLevel> {
    let mut files = Vec::with_capacity(chart.templates.len());
    for (tpl_name, source) in &chart.templates {
        let (parsed, plan) = match source {
            TemplateSource::Doc(doc) => {
                // Already structured: no lexing, no emit, no reparse. The
                // typed decoding is the same one the text round trip would
                // produce, because the emitter round-trips documents
                // exactly (`parse(to_string(doc)) == doc`).
                let plan = if doc.is_null() {
                    RenderPlan::Blank
                } else {
                    let docs = vec![doc.clone()];
                    let objects = decode_docs(tpl_name, &docs)?;
                    RenderPlan::Static(StaticDocs { docs, objects })
                };
                (None, plan)
            }
            TemplateSource::Text(src) => {
                let parsed = parse_template(tpl_name, src)?;
                let plan = if crate::chart::is_partial_file(tpl_name) {
                    RenderPlan::Partial
                } else if parsed.nodes.iter().all(|n| matches!(n, Node::Text(_))) {
                    // No actions anywhere: the output is the concatenated
                    // text, independent of values and release — decode it
                    // now. Stamping with the "default" namespace is the
                    // identity, so the cached objects carry their manifest
                    // namespaces and the release namespace is stamped per
                    // render.
                    let rendered = concat_text(&parsed.nodes);
                    if rendered.trim().is_empty() {
                        RenderPlan::Blank
                    } else {
                        RenderPlan::Static(static_docs_from_text(tpl_name, &rendered)?)
                    }
                } else if let Some(plan) = gated_plan(tpl_name, &parsed) {
                    plan
                } else {
                    RenderPlan::Dynamic
                };
                (Some(parsed), plan)
            }
        };
        files.push(CompiledFile {
            name: tpl_name.clone(),
            parsed,
            plan,
        });
    }
    let mut deps = Vec::with_capacity(chart.dependencies.len());
    for dep in &chart.dependencies {
        deps.push(CompiledDep {
            chart_name: dep.chart.name.clone(),
            condition: dep.condition.clone(),
            level: compile_level(&dep.chart)?,
        });
    }
    Ok(CompiledLevel {
        name: chart.name.clone(),
        version: chart.version.clone(),
        values: chart.values.clone(),
        files,
        deps,
    })
}

fn concat_text(nodes: &[Node]) -> String {
    nodes
        .iter()
        .map(|n| match n {
            Node::Text(t) => t.as_str(),
            _ => unreachable!("caller checked all-text"),
        })
        .collect()
}

/// Parses pre-rendered text into the documents and objects a render of it
/// would produce (null documents dropped, like `decode_rendered`).
fn static_docs_from_text(tpl_name: &str, rendered: &str) -> Result<StaticDocs> {
    if rendered.trim().is_empty() {
        return Ok(StaticDocs::default());
    }
    let docs = ij_yaml::parse_all(rendered).map_err(|e| Error::RenderedYaml {
        template: tpl_name.to_string(),
        source: e,
        rendered: rendered.to_string(),
    })?;
    let docs: Vec<Value> = docs.into_iter().filter(|d| !d.is_null()).collect();
    let objects = decode_docs(tpl_name, &docs)?;
    Ok(StaticDocs { docs, objects })
}

fn decode_docs(tpl_name: &str, docs: &[Value]) -> Result<Vec<Object>> {
    let mut objects = Vec::with_capacity(docs.len());
    for doc in docs.iter().filter(|d| !d.is_null()) {
        objects.push(Object::decode(doc).map_err(|e| Error::Decode {
            template: tpl_name.to_string(),
            message: e.to_string(),
        })?);
    }
    Ok(objects)
}

/// Recognizes files whose only action is one top-level `if` whose branch
/// bodies are pure text: the finite set of outcomes (each branch, plus the
/// fall-through) is pre-rendered and pre-decoded now, leaving only the
/// condition pipelines for render time. Any outcome that fails to parse or
/// decode disqualifies the file — it stays `Dynamic`, so the error (if any)
/// surfaces at render time only when that branch is actually taken, exactly
/// like the parse-per-call path.
fn gated_plan(tpl_name: &str, parsed: &ParsedTemplate) -> Option<RenderPlan> {
    let mut if_idx = None;
    for (i, node) in parsed.nodes.iter().enumerate() {
        match node {
            Node::Text(_) => {}
            Node::If { branches, .. }
                if if_idx.is_none()
                    && branches
                        .iter()
                        .all(|(_, body)| body.iter().all(|n| matches!(n, Node::Text(_)))) =>
            {
                if_idx = Some(i);
            }
            _ => return None,
        }
    }
    let if_idx = if_idx?;
    let prefix = concat_text(&parsed.nodes[..if_idx]);
    let suffix = concat_text(&parsed.nodes[if_idx + 1..]);
    let Node::If { branches, line } = &parsed.nodes[if_idx] else {
        unreachable!("if_idx points at the If node");
    };
    let mut compiled = Vec::with_capacity(branches.len());
    for (cond, body) in branches {
        let outcome = format!("{prefix}{}{suffix}", concat_text(body));
        compiled.push((
            cond.clone(),
            static_docs_from_text(tpl_name, &outcome).ok()?,
        ));
    }
    let fallthrough = static_docs_from_text(tpl_name, &format!("{prefix}{suffix}")).ok()?;
    Some(RenderPlan::Gated {
        branches: compiled,
        fallthrough,
        line: *line,
    })
}

impl CompiledLevel {
    /// Replays this level's cached templates for one release, appending
    /// objects, then recurses into enabled dependencies — the compiled
    /// mirror of `Chart::render_into`. `values` is owned: it moves into the
    /// root dot instead of being cloned per file.
    fn render_into(
        &self,
        release: &Release,
        values: Value,
        scratch: &mut RenderScratch,
        objects: &mut Vec<Object>,
    ) -> Result<()> {
        let shared = shared_defines(self.files.iter().filter_map(|f| f.parsed.as_ref()));
        let root = build_root(
            values,
            &release.name,
            &release.namespace,
            &self.name,
            &self.version,
        );
        for file in &self.files {
            match &file.plan {
                RenderPlan::Partial | RenderPlan::Blank => {}
                RenderPlan::Static(sd) => {
                    for obj in &sd.objects {
                        let mut obj = obj.clone();
                        stamp_namespace(&mut obj, &release.namespace);
                        objects.push(obj);
                    }
                }
                RenderPlan::Gated {
                    branches,
                    fallthrough,
                    line,
                } => {
                    let parsed = file.parsed.as_ref().expect("gated files are text-sourced");
                    let mut chosen = fallthrough;
                    for (cond, outcome) in branches {
                        let take = match cond {
                            Some(p) => {
                                eval_condition(&file.name, parsed, &shared, &root, p, *line)?
                            }
                            None => true,
                        };
                        if take {
                            chosen = outcome;
                            break;
                        }
                    }
                    for obj in &chosen.objects {
                        let mut obj = obj.clone();
                        stamp_namespace(&mut obj, &release.namespace);
                        objects.push(obj);
                    }
                }
                RenderPlan::Dynamic => {
                    let parsed = file
                        .parsed
                        .as_ref()
                        .expect("dynamic files are text-sourced");
                    render_file_into(&file.name, parsed, &shared, &root, &mut scratch.rendered)?;
                    decode_rendered(&file.name, &scratch.rendered, &release.namespace, objects)?;
                }
            }
        }
        let values = root.get("Values").expect("root always carries Values");
        for dep in &self.deps {
            if let Some(cond) = &dep.condition {
                let path: Vec<&str> = cond.split('.').collect();
                let enabled = values.path(&path).map(Value::truthy).unwrap_or(false);
                if !enabled {
                    continue;
                }
            }
            // The subchart sees its own defaults overlaid with the parent's
            // values scoped under the subchart's name.
            let scoped = values
                .get(&dep.chart_name)
                .cloned()
                .unwrap_or(Value::Map(Map::new()));
            let sub_values = merge_values(&dep.level.values, &scoped)?;
            dep.level
                .render_into(release, sub_values, scratch, objects)?;
        }
        Ok(())
    }

    /// The document-stream mirror of `render_into`: appends every file's
    /// rendered documents as `Value`s, in the same file and dependency
    /// order, without stamping the release namespace (that belongs to
    /// decoding).
    fn render_values_into(
        &self,
        release: &Release,
        values: Value,
        docs: &mut Vec<Value>,
    ) -> Result<()> {
        let shared = shared_defines(self.files.iter().filter_map(|f| f.parsed.as_ref()));
        let root = build_root(
            values,
            &release.name,
            &release.namespace,
            &self.name,
            &self.version,
        );
        for file in &self.files {
            match &file.plan {
                RenderPlan::Partial | RenderPlan::Blank => {}
                RenderPlan::Static(sd) => docs.extend(sd.docs.iter().cloned()),
                RenderPlan::Gated {
                    branches,
                    fallthrough,
                    line,
                } => {
                    let parsed = file.parsed.as_ref().expect("gated files are text-sourced");
                    let mut chosen = fallthrough;
                    for (cond, outcome) in branches {
                        let take = match cond {
                            Some(p) => {
                                eval_condition(&file.name, parsed, &shared, &root, p, *line)?
                            }
                            None => true,
                        };
                        if take {
                            chosen = outcome;
                            break;
                        }
                    }
                    docs.extend(chosen.docs.iter().cloned());
                }
                RenderPlan::Dynamic => {
                    let parsed = file
                        .parsed
                        .as_ref()
                        .expect("dynamic files are text-sourced");
                    let rendered = render_file(&file.name, parsed, &shared, &root)?;
                    if rendered.trim().is_empty() {
                        continue;
                    }
                    let parsed_docs =
                        ij_yaml::parse_all(&rendered).map_err(|e| Error::RenderedYaml {
                            template: file.name.clone(),
                            source: e,
                            rendered: rendered.clone(),
                        })?;
                    docs.extend(parsed_docs.into_iter().filter(|d| !d.is_null()));
                }
            }
        }
        let values = root.get("Values").expect("root always carries Values");
        for dep in &self.deps {
            if let Some(cond) = &dep.condition {
                let path: Vec<&str> = cond.split('.').collect();
                let enabled = values.path(&path).map(Value::truthy).unwrap_or(false);
                if !enabled {
                    continue;
                }
            }
            let scoped = values
                .get(&dep.chart_name)
                .cloned()
                .unwrap_or(Value::Map(Map::new()));
            let sub_values = merge_values(&dep.level.values, &scoped)?;
            dep.level.render_values_into(release, sub_values, docs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Dependency;

    fn chart_with_everything() -> Chart {
        let db = Chart::builder("db")
            .values_yaml("port: 5432\nenabled: true\n")
            .unwrap()
            .template(
                "svc.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-db
spec:
  selector:
    app: db
  ports:
    - port: {{ .Values.port }}
",
            )
            .build();
        Chart::builder("app")
            .version("2.4.8")
            .values_yaml("db:\n  enabled: true\n  port: 6543\nreplicas: 3\n")
            .unwrap()
            .template(
                "_helpers.tpl",
                "{{ define \"app.labels\" }}app: {{ .Chart.Name }}{{ end }}",
            )
            .template(
                "static.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: static-svc
spec:
  selector:
    app: app
  ports:
    - port: 80
",
            )
            .template(
                "dynamic.yaml",
                "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-app
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:{{ include \"app.labels\" . | nindent 6 }}
  template:
    metadata:
      labels:{{ include \"app.labels\" . | nindent 8 }}
    spec:
      containers:
        - name: app
          image: img/app
",
            )
            .template("blank.yaml", "{{ if .Values.never }}kind: Pod\n{{ end }}")
            .dependency_if(db, "db.enabled")
            .build()
    }

    fn bytes(r: &RenderedRelease) -> String {
        format!("{r:#?}")
    }

    #[test]
    fn compiled_render_matches_per_call_render() {
        let chart = chart_with_everything();
        let compiled = chart.compile().expect("compiles");
        for release in [
            Release::new("demo", "apps"),
            Release::new("other", "default"),
            Release::new("off", "apps")
                .with_values_yaml("db:\n  enabled: false\nreplicas: 7\n")
                .unwrap(),
        ] {
            let naive = chart.render(&release).expect("per-call render");
            let replay = compiled.render(&release).expect("compiled render");
            assert_eq!(bytes(&naive), bytes(&replay), "release {}", release.name);
            // Replays are stable.
            let again = compiled.render(&release).expect("second compiled render");
            assert_eq!(bytes(&replay), bytes(&again));
        }
    }

    #[test]
    fn static_files_are_predecoded_and_namespace_stamped() {
        let chart = chart_with_everything();
        let compiled = chart.compile().expect("compiles");
        let r = compiled
            .render(&Release::new("r", "prod"))
            .expect("renders");
        let svc = r
            .objects
            .iter()
            .find(|o| o.meta().name == "static-svc")
            .expect("static service rendered");
        assert_eq!(svc.meta().namespace, "prod", "release namespace stamped");
    }

    #[test]
    fn clones_share_the_compiled_representation() {
        let compiled = chart_with_everything().compile().expect("compiles");
        let clone = compiled.clone();
        assert_eq!(compiled.instance_key(), clone.instance_key());
        let recompiled = chart_with_everything().compile().expect("compiles");
        assert_ne!(compiled.instance_key(), recompiled.instance_key());
    }

    #[test]
    fn compile_surfaces_template_errors_eagerly() {
        let chart = Chart::builder("bad")
            .template("broken.yaml", "{{ if .Values.x }}no end")
            .build();
        assert!(chart.compile().is_err());
    }

    #[test]
    fn compile_surfaces_disabled_dependency_errors_eagerly() {
        // The parse-per-call path only parses a dependency when its
        // condition enables it; the compiled path parses everything up
        // front — the documented (stricter) difference.
        let bad_dep = Chart::builder("dep")
            .template("broken.yaml", "{{ end }}")
            .build();
        let chart = Chart {
            name: "parent".into(),
            version: "1.0.0".into(),
            description: String::new(),
            values: ij_yaml::parse("dep:\n  enabled: false\n").unwrap(),
            templates: Vec::new(),
            dependencies: vec![Dependency {
                chart: bad_dep,
                condition: Some("dep.enabled".into()),
            }],
        };
        assert!(chart.render(&Release::new("r", "default")).is_ok());
        assert!(chart.compile().is_err());
    }

    #[test]
    fn metadata_accessors() {
        let compiled = chart_with_everything().compile().expect("compiles");
        assert_eq!(compiled.name(), "app");
        assert_eq!(compiled.version(), "2.4.8");
    }

    fn gated_chart() -> Chart {
        Chart::builder("gated")
            .values_yaml("gate:\n  enabled: true\n")
            .unwrap()
            .template(
                "gate.yaml",
                "\
{{- if .Values.gate.enabled }}
apiVersion: v1
kind: Service
metadata:
  name: gated-on
spec:
  selector:
    app: g
  ports:
    - port: 1
{{- else }}
apiVersion: v1
kind: Service
metadata:
  name: gated-off
spec:
  selector:
    app: g
  ports:
    - port: 2
{{- end }}
",
            )
            .build()
    }

    #[test]
    fn single_if_files_compile_to_gated_plans() {
        let compiled = gated_chart().compile().expect("compiles");
        let file = &compiled.root.files[0];
        assert!(
            matches!(file.plan, RenderPlan::Gated { .. }),
            "netpol-shaped template should compile to a gated plan, got {:?}",
            file.plan
        );
    }

    #[test]
    fn gated_plans_pick_the_taken_branch() {
        let chart = gated_chart();
        let compiled = chart.compile().expect("compiles");
        for release in [
            Release::new("on", "apps"),
            Release::new("off", "prod")
                .with_values_yaml("gate:\n  enabled: false\n")
                .unwrap(),
        ] {
            let naive = chart.render(&release).expect("per-call render");
            let replay = compiled.render(&release).expect("compiled render");
            assert_eq!(bytes(&naive), bytes(&replay), "release {}", release.name);
            let expected = if release.name == "on" {
                "gated-on"
            } else {
                "gated-off"
            };
            assert_eq!(replay.objects[0].meta().name, expected);
        }
    }

    #[test]
    fn gated_plans_fall_through_to_surrounding_text() {
        // No `else`: a false condition leaves only the surrounding
        // whitespace, which renders no objects — same as the oracle.
        let chart = Chart::builder("gated")
            .values_yaml("gate:\n  enabled: false\n")
            .unwrap()
            .template(
                "gate.yaml",
                "{{- if .Values.gate.enabled }}\napiVersion: v1\nkind: Service\n\
                 metadata:\n  name: g\nspec:\n  selector:\n    app: g\n  ports:\n\
                 \x20   - port: 1\n{{- end }}\n",
            )
            .build();
        let compiled = chart.compile().expect("compiles");
        let release = Release::new("r", "default");
        let naive = chart.render(&release).expect("per-call render");
        let replay = compiled.render(&release).expect("compiled render");
        assert_eq!(bytes(&naive), bytes(&replay));
        assert!(replay.objects.is_empty());
    }

    #[test]
    fn gated_errors_surface_only_when_the_branch_is_taken() {
        // A branch outcome that fails to decode keeps the file on the
        // dynamic plan, so the error appears at render time iff the branch
        // is taken — exactly the oracle's timing.
        let chart = Chart::builder("gated")
            .template("gate.yaml", "{{ if .Values.bad }}kind: Pod\n{{ end }}")
            .build();
        let compiled = chart.compile().expect("bad branches do not fail compile");
        assert!(compiled.render(&Release::new("ok", "default")).is_ok());
        let broken = Release::new("bad", "default")
            .with_values_yaml("bad: true\n")
            .unwrap();
        assert!(
            chart.render(&broken).is_err(),
            "oracle rejects the taken branch"
        );
        assert!(compiled.render(&broken).is_err(), "compiled path matches");
    }

    #[test]
    fn doc_sourced_templates_render_without_text() {
        let svc = ij_yaml::parse(
            "apiVersion: v1\nkind: Service\nmetadata:\n  name: doc-svc\n\
             spec:\n  selector:\n    app: d\n  ports:\n    - port: 9\n",
        )
        .unwrap();
        let chart = Chart::builder("docsrc")
            .template_doc("00-svc.yaml", svc.clone())
            .build();
        let compiled = chart.compile().expect("compiles");
        let release = Release::new("r", "prod");

        // Text path and compiled path agree, and the object is stamped.
        let naive = chart.render(&release).expect("text path renders");
        let replay = compiled.render(&release).expect("compiled render");
        assert_eq!(bytes(&naive), bytes(&replay));
        assert_eq!(replay.objects[0].meta().namespace, "prod");

        // The value stream hands back the document itself, unstamped.
        let docs = compiled.render_values(&release).expect("value stream");
        assert_eq!(format!("{docs:?}"), format!("{:?}", vec![svc]));
    }

    #[test]
    fn render_values_round_trips_to_render_objects() {
        let chart = chart_with_everything();
        let compiled = chart.compile().expect("compiles");
        for release in [
            Release::new("demo", "apps"),
            Release::new("other", "default"),
        ] {
            let oracle = compiled.render(&release).expect("compiled render");
            let docs = compiled.render_values(&release).expect("value stream");
            let mut decoded = Vec::new();
            for doc in &docs {
                let emitted = ij_yaml::to_string(doc);
                decode_rendered("stream", &emitted, &release.namespace, &mut decoded)
                    .expect("emitted document decodes");
            }
            assert_eq!(format!("{:#?}", oracle.objects), format!("{decoded:#?}"));
        }
    }
}
