//! End-to-end tests of the `ij` CLI binary against charts on disk.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn write(path: &Path, content: &str) {
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, content).expect("write");
}

fn demo_chart_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ij-cli-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    write(
        &dir.join("Chart.yaml"),
        "name: cli-demo\nversion: 0.9.0\ndescription: CLI test chart\n",
    );
    write(&dir.join("values.yaml"), "replicas: 1\n");
    write(
        &dir.join("templates/app.yaml"),
        "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-web
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      hostNetwork: true
      containers:
        - name: web
          image: acme/web
          ports:
            - containerPort: 8080
---
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-web
spec:
  selector:
    app: web
  ports:
    - port: 80
      targetPort: 9999
",
    );
    dir
}

fn ij(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ij"))
        .args(args)
        .output()
        .expect("spawn ij")
}

#[test]
fn analyze_reports_structural_findings() {
    let dir = demo_chart_dir("analyze");
    let out = ij(&["analyze", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 finding(s)"), "{stdout}");
    assert!(stdout.contains("[M5B]"), "{stdout}");
    assert!(stdout.contains("[M6]"), "{stdout}");
    assert!(stdout.contains("[M7]"), "{stdout}");
    assert!(stdout.contains("fix:"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn render_prints_manifests() {
    let dir = demo_chart_dir("render");
    let out = ij(&["render", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kind: Deployment"));
    assert!(stdout.contains("kind: Service"));
    assert!(stdout.contains("name: cli-demo-web"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn disclose_produces_markdown_report() {
    let dir = demo_chart_dir("disclose");
    let out = ij(&["disclose", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# Security disclosure"));
    assert!(stdout.contains("Threat model"));
    assert!(stdout.contains("Questionnaire"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dot_flag_writes_connectivity_graph() {
    let dir = demo_chart_dir("dot");
    let dot_path = dir.join("out.dot");
    let out = ij(&[
        "analyze",
        dir.to_str().unwrap(),
        "--dot",
        dot_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let dot = fs::read_to_string(&dot_path).expect("dot written");
    assert!(dot.starts_with("digraph"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn values_override_changes_rendering() {
    let dir = demo_chart_dir("values");
    let values = dir.join("override.yaml");
    fs::write(&values, "replicas: 4\n").unwrap();
    let out = ij(&[
        "render",
        dir.to_str().unwrap(),
        "--values",
        values.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("replicas: 4"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = ij(&["bogus-command"]);
    assert!(!out.status.success());
    let out = ij(&[]);
    assert!(!out.status.success());
}

#[test]
fn static_only_flag_is_accepted() {
    let dir = demo_chart_dir("static");
    let out = ij(&["analyze", dir.to_str().unwrap(), "--static-only"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("finding(s)"));
    let _ = fs::remove_dir_all(&dir);
}
