//! Turns an [`AppSpec`] into an installable chart plus the container
//! behaviours that make the runtime deltas real.
//!
//! Every injection is realized with the minimal set of resources that
//! produces exactly one finding of its class and nothing else, so the corpus
//! census is fully determined by the plans (verified by tests in
//! `corpus.rs`).

use crate::spec::AppSpec;
use ij_chart::{Chart, CompiledChart};
use ij_cluster::{BehaviorRegistry, ContainerBehavior, ListenerSpec};
use ij_model::{
    Container, ContainerPort, Labels, Object, ObjectMeta, Pod, PodSpec, Service, ServicePort,
    Workload, WorkloadKind,
};
use std::sync::OnceLock;

/// Well-known ports used by the generated components.
pub mod ports {
    /// The main component's declared & open HTTP port.
    pub const MAIN: u16 = 8080;
    /// Base for M1 undeclared-open ports (`+ i`).
    pub const M1_BASE: u16 = 9200;
    /// Base for M3 declared-never-open ports (`+ i`).
    pub const M3_BASE: u16 = 7100;
    /// M5A component: open port / declared-but-closed target (`+ i`).
    pub const M5A_OPEN: u16 = 8060;
    /// Declared-but-closed port targeted by the M5A service.
    pub const M5A_CLOSED: u16 = 7450;
    /// M5B component port (open & declared).
    pub const M5B_OPEN: u16 = 8070;
    /// Undeclared target used by the M5B service (`+ i`).
    pub const M5B_GHOST: u16 = 9550;
    /// M5C component open port.
    pub const M5C_OPEN: u16 = 5432;
    /// M5C declared-but-closed headless target (`+ i`).
    pub const M5C_CLOSED: u16 = 7650;
    /// M4A collision pair port.
    pub const M4A: u16 = 8090;
    /// M4B double-service component port.
    pub const M4B: u16 = 8085;
    /// M4C subset component port.
    pub const M4C: u16 = 8095;
    /// Global (M4\*) component port.
    pub const M4STAR: u16 = 8055;
    /// hostNetwork exporter port (`+ i`).
    pub const EXPORTER_BASE: u16 = 9100;
    /// Base for clean (finding-free) extra components (`+ i`).
    pub const CLEAN_BASE: u16 = 8200;
}

/// A chart ready to install, with the behaviours backing its runtime story.
#[derive(Debug, Clone)]
pub struct BuiltApp {
    /// The source specification.
    pub spec: AppSpec,
    /// `(image, behaviour)` pairs for the cluster's registry.
    pub behaviors: Vec<(String, ContainerBehavior)>,
    // Private so the chart and its cached compilation can never desync:
    // a swapped-in chart with a stale `compiled` would render one chart
    // and analyze another. Read via `chart()`; build a fresh `BuiltApp`
    // to change the chart.
    chart: Chart,
    compiled: OnceLock<Result<CompiledChart, ij_chart::Error>>,
}

impl BuiltApp {
    /// Wraps a chart and its behaviours; the compiled render form is built
    /// lazily on first use.
    pub fn new(spec: AppSpec, chart: Chart, behaviors: Vec<(String, ContainerBehavior)>) -> Self {
        BuiltApp {
            spec,
            chart,
            behaviors,
            compiled: OnceLock::new(),
        }
    }

    /// The generated chart.
    pub fn chart(&self) -> &Chart {
        &self.chart
    }

    /// A registry holding only this app's behaviours.
    pub fn registry(&self) -> BehaviorRegistry {
        let mut reg = BehaviorRegistry::new();
        for (image, b) in &self.behaviors {
            reg.register(image.clone(), b.clone());
        }
        reg
    }

    /// The compiled chart: all template files parsed exactly once per app.
    /// The census pipeline renders through this instead of re-parsing the
    /// chart on every [`Chart::render`] call.
    pub fn compiled(&self) -> Result<&CompiledChart, ij_chart::Error> {
        self.compiled
            .get_or_init(|| self.chart.compile())
            .as_ref()
            .map_err(Clone::clone)
    }
}

/// The label key shared by all of an app's own components (and used by its
/// synthesized/tight policies).
pub const INSTANCE_KEY: &str = "app.kubernetes.io/instance";

fn image(app: &str, component: &str) -> String {
    format!("sim/{app}/{component}")
}

fn component_labels(app: &str, component: &str) -> Labels {
    Labels::from_pairs([
        (INSTANCE_KEY, app),
        ("app.kubernetes.io/component", component),
    ])
}

fn deployment(app: &str, component: &str, labels: Labels, containers: Vec<Container>) -> Object {
    Object::Workload(Workload {
        kind: WorkloadKind::Deployment,
        meta: ObjectMeta::named(format!("{app}-{component}")),
        replicas: 1,
        selector: ij_model::LabelSelector::from_labels(labels.clone()),
        template: ij_model::PodTemplate {
            labels,
            spec: PodSpec {
                containers,
                host_network: false,
                node_name: None,
            },
        },
    })
}

/// Builds the chart and behaviour set for one specification.
pub fn build_app(spec: &AppSpec) -> BuiltApp {
    let app = spec.name.as_str();
    let plan = &spec.plan;
    let mut objects: Vec<Object> = Vec::new();
    let mut behaviors: Vec<(String, ContainerBehavior)> = Vec::new();

    // --- main component -----------------------------------------------
    let main_labels = component_labels(app, "server");
    let mut main_declared = vec![ContainerPort::named("http", ports::MAIN)];
    let mut main_opens = vec![ListenerSpec::tcp(ports::MAIN)];
    for i in 0..plan.m1 {
        // Open but undeclared.
        main_opens.push(ListenerSpec::tcp(ports::M1_BASE + i as u16));
    }
    for i in 0..plan.m3 {
        // Declared but never opened.
        main_declared.push(ContainerPort::tcp(ports::M3_BASE + i as u16));
    }
    let main_image = image(app, "server");
    if plan.m1 > 0 || plan.m3 > 0 {
        behaviors.push((main_image.clone(), ContainerBehavior::Listeners(main_opens)));
    }
    let mut server = deployment(
        app,
        "server",
        main_labels.clone(),
        vec![Container::new("server", &main_image).with_ports(main_declared)],
    );
    if let Object::Workload(w) = &mut server {
        w.replicas = plan.server_replicas.max(1);
    }
    objects.push(server);
    objects.push(Object::Service(Service::cluster_ip(
        ObjectMeta::named(format!("{app}-server")),
        main_labels.clone(),
        vec![ServicePort::tcp_to_name(ports::MAIN, "http").with_name("http")],
    )));

    // --- clean components: structure without findings -------------------
    // One well-formed deployment + service pair per unit: the declared port
    // is the only open port (unknown images behave exactly as declared) and
    // the service targets it by name, so no rule fires. The corpus
    // archetypes use these to vary application *shape* independently of the
    // injected ground truth.
    for i in 0..plan.clean_components {
        let component = format!("svc{i}");
        let labels = component_labels(app, &component);
        let port = ports::CLEAN_BASE + i as u16;
        objects.push(deployment(
            app,
            &component,
            labels.clone(),
            vec![Container::new("svc", image(app, &component))
                .with_ports(vec![ContainerPort::named("http", port)])],
        ));
        objects.push(Object::Service(Service::cluster_ip(
            ObjectMeta::named(format!("{app}-{component}")),
            labels,
            vec![ServicePort::tcp_to_name(port, "http").with_name("http")],
        )));
    }

    // --- M2: worker components with ephemeral listeners ----------------
    for i in 0..plan.m2 {
        let component = format!("worker{i}");
        let img = image(app, &component);
        behaviors.push((
            img.clone(),
            ContainerBehavior::Listeners(vec![ListenerSpec::ephemeral()]),
        ));
        objects.push(deployment(
            app,
            &component,
            component_labels(app, &component),
            vec![Container::new("worker", &img)],
        ));
    }

    // --- M4A: identical-label pairs ------------------------------------
    for i in 0..plan.m4a {
        let shared = Labels::from_pairs([
            (INSTANCE_KEY, app.to_string()),
            ("app.kubernetes.io/part-of", format!("{app}-shared{i}")),
        ]);
        for side in ["a", "b"] {
            let component = format!("peer{i}{side}");
            objects.push(deployment(
                app,
                &component,
                shared.clone(),
                vec![Container::new("peer", image(app, &component))
                    .with_ports(vec![ContainerPort::tcp(ports::M4A)])],
            ));
        }
    }

    // --- M4B: one component, two services -------------------------------
    for i in 0..plan.m4b {
        let component = format!("dup{i}");
        let labels = component_labels(app, &component);
        objects.push(deployment(
            app,
            &component,
            labels.clone(),
            vec![Container::new("dup", image(app, &component))
                .with_ports(vec![ContainerPort::tcp(ports::M4B)])],
        ));
        for side in ["lb", "direct"] {
            objects.push(Object::Service(Service::cluster_ip(
                ObjectMeta::named(format!("{app}-{component}-{side}")),
                labels.clone(),
                vec![ServicePort::tcp(ports::M4B)],
            )));
        }
    }

    // --- M4C: shared-subset components under one service ---------------
    for i in 0..plan.m4c {
        let share_key = format!("{app}-grp{i}");
        for variant in ["a", "b"] {
            let component = format!("mode{i}{variant}");
            let labels = Labels::from_pairs([
                (INSTANCE_KEY, app.to_string()),
                ("app.kubernetes.io/group", share_key.clone()),
                ("app.kubernetes.io/variant", variant.to_string()),
            ]);
            objects.push(deployment(
                app,
                &component,
                labels,
                vec![Container::new("mode", image(app, &component))
                    .with_ports(vec![ContainerPort::tcp(ports::M4C)])],
            ));
        }
        objects.push(Object::Service(Service::cluster_ip(
            ObjectMeta::named(format!("{app}-grp{i}")),
            Labels::from_pairs([("app.kubernetes.io/group", share_key)]),
            vec![ServicePort::tcp(ports::M4C)],
        )));
    }

    // --- M5A: service to a declared-but-closed port --------------------
    for i in 0..plan.m5a {
        let component = format!("store{i}");
        let labels = component_labels(app, &component);
        let img = image(app, &component);
        behaviors.push((
            img.clone(),
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(ports::M5A_OPEN)]),
        ));
        objects.push(deployment(
            app,
            &component,
            labels.clone(),
            vec![Container::new("store", &img).with_ports(vec![
                ContainerPort::tcp(ports::M5A_OPEN),
                ContainerPort::tcp(ports::M5A_CLOSED + i as u16),
            ])],
        ));
        objects.push(Object::Service(Service::cluster_ip(
            ObjectMeta::named(format!("{app}-{component}")),
            labels,
            vec![ServicePort::tcp_to(
                ports::M5A_OPEN,
                ports::M5A_CLOSED + i as u16,
            )],
        )));
    }

    // --- M5B: service to an undeclared port ----------------------------
    for i in 0..plan.m5b {
        let component = format!("api{i}");
        let labels = component_labels(app, &component);
        objects.push(deployment(
            app,
            &component,
            labels.clone(),
            vec![Container::new("api", image(app, &component))
                .with_ports(vec![ContainerPort::tcp(ports::M5B_OPEN)])],
        ));
        objects.push(Object::Service(Service::cluster_ip(
            ObjectMeta::named(format!("{app}-{component}")),
            labels,
            vec![ServicePort::tcp_to(
                ports::M5B_OPEN,
                ports::M5B_GHOST + i as u16,
            )],
        )));
    }

    // --- M5C: headless service to an unavailable port ------------------
    for i in 0..plan.m5c {
        let component = format!("db{i}");
        let labels = component_labels(app, &component);
        let img = image(app, &component);
        behaviors.push((
            img.clone(),
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(ports::M5C_OPEN)]),
        ));
        objects.push(deployment(
            app,
            &component,
            labels.clone(),
            vec![Container::new("db", &img).with_ports(vec![
                ContainerPort::tcp(ports::M5C_OPEN),
                ContainerPort::tcp(ports::M5C_CLOSED + i as u16),
            ])],
        ));
        objects.push(Object::Service(Service::headless(
            ObjectMeta::named(format!("{app}-{component}-headless")),
            labels,
            vec![ServicePort::tcp_to(
                ports::M5C_OPEN,
                ports::M5C_CLOSED + i as u16,
            )],
        )));
    }

    // --- M5D: services selecting nothing --------------------------------
    for i in 0..plan.m5d {
        objects.push(Object::Service(Service::cluster_ip(
            ObjectMeta::named(format!("{app}-ghost{i}")),
            Labels::from_pairs([("app.kubernetes.io/component", format!("ghost{i}"))]),
            vec![ServicePort::tcp(80)],
        )));
    }

    // --- M7: hostNetwork exporters --------------------------------------
    // Every exporter DaemonSet declares the ports of *all* exporters in the
    // app: they share each node's host namespace, so a pod of one exporter
    // observes the sibling's socket too — declaring the union keeps the M7
    // injection from leaking spurious M1 findings.
    let exporter_ports: Vec<ContainerPort> = (0..plan.m7)
        .map(|i| ContainerPort::tcp(ports::EXPORTER_BASE + i as u16))
        .collect();
    for i in 0..plan.m7 {
        let component = format!("exporter{i}");
        let labels = component_labels(app, &component);
        objects.push(Object::Workload(Workload {
            kind: WorkloadKind::DaemonSet,
            meta: ObjectMeta::named(format!("{app}-{component}")),
            replicas: 1,
            selector: ij_model::LabelSelector::from_labels(labels.clone()),
            template: ij_model::PodTemplate {
                labels,
                spec: PodSpec {
                    containers: vec![Container::new("exporter", image(app, &component))
                        .with_ports(exporter_ports.clone())],
                    host_network: true,
                    node_name: None,
                },
            },
        }));
        // The container actually opens only its own port; the siblings'
        // ports appear in the pod's host-namespace observation anyway.
        behaviors.push((
            image(app, &component),
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(ports::EXPORTER_BASE + i as u16)]),
        ));
    }

    // --- M4*: globally colliding components -----------------------------
    // Deliberately *without* the instance label: the label set must be
    // byte-identical across the applications sharing the token.
    for token in &plan.m4star_tokens {
        objects.push(Object::Pod(Pod::new(
            ObjectMeta::named(format!("{app}-global-{token}"))
                .with_labels(Labels::from_pairs([("app.kubernetes.io/part-of", *token)])),
            PodSpec {
                containers: vec![Container::new("shared", image(app, "global"))
                    .with_ports(vec![ContainerPort::tcp(ports::M4STAR)])],
                ..Default::default()
            },
        )));
    }

    // --- chart assembly --------------------------------------------------
    let mut builder = Chart::builder(app)
        .version(&spec.version)
        .description(format!("synthetic {} chart for {}", spec.org.as_str(), app))
        .values(ij_yaml::ymap! {
            "networkPolicy" => ij_yaml::ymap! {
                "enabled" => spec.plan.netpol.enabled_by_default(),
            },
        });
    for (i, obj) in objects.iter().enumerate() {
        // Attach the already-encoded document instead of emitted text: the
        // compiled render layer decodes it directly, skipping the
        // emit → reparse round trip per (app, file). `template_doc` renders
        // byte-identically to `template(name, obj.to_manifest())`.
        builder = builder.template_doc(
            format!("{:02}-{}.yaml", i, obj.kind().to_lowercase()),
            obj.encode(),
        );
    }
    if plan.netpol.defines_policy() {
        builder = builder.template(
            "zz-networkpolicy.yaml",
            netpol_template(app, plan, &objects),
        );
    }
    BuiltApp::new(spec.clone(), builder.build(), behaviors)
}

/// The NetworkPolicy template: gated on `networkPolicy.enabled`, selecting
/// all of the app's components via the instance label. Tight policies list
/// the union of declared ports; loose policies allow everything.
fn netpol_template(app: &str, plan: &crate::spec::Plan, objects: &[Object]) -> String {
    let loose = plan.netpol.is_loose();
    let mut out = String::new();
    out.push_str("{{- if .Values.networkPolicy.enabled }}\n");
    out.push_str("apiVersion: networking.k8s.io/v1\nkind: NetworkPolicy\n");
    out.push_str(&format!("metadata:\n  name: {app}-default\n"));
    out.push_str("spec:\n  podSelector:\n    matchLabels:\n");
    out.push_str(&format!("      {INSTANCE_KEY}: {app}\n"));
    out.push_str("  policyTypes:\n    - Ingress\n  ingress:\n");
    if loose {
        // One rule with no peers and no ports: allow everything — the
        // "false sense of security" pattern of §4.3.2.
        out.push_str("    - {}\n");
    } else {
        // Union of declared `(port, protocol)` pairs in object order — the
        // same order `StaticModel::from_objects(objects)` would walk its
        // units, without materializing the model.
        let mut ports: Vec<(u16, ij_model::Protocol)> = Vec::new();
        for obj in objects {
            let containers = match obj {
                Object::Pod(p) => &p.spec.containers,
                Object::Workload(w) => &w.template.spec.containers,
                _ => continue,
            };
            for container in containers {
                for p in &container.ports {
                    let pair = (p.container_port, p.protocol);
                    if !ports.contains(&pair) {
                        ports.push(pair);
                    }
                }
            }
        }
        ports.sort();
        out.push_str("    - ports:\n");
        for (port, protocol) in ports {
            out.push_str(&format!("        - port: {port}\n"));
            if protocol != ij_model::Protocol::Tcp {
                out.push_str(&format!("          protocol: {}\n", protocol.as_str()));
            }
        }
    }
    out.push_str("{{- end }}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Org, Plan};
    use ij_chart::Release;

    fn build(plan: Plan) -> BuiltApp {
        build_app(&AppSpec::new("testapp", Org::Bitnami, "1.0.0", plan))
    }

    #[test]
    fn clean_app_renders_policy_and_two_objects() {
        let built = build(Plan::clean());
        let rendered = built
            .chart()
            .render(&Release::new("testapp", "default"))
            .unwrap();
        assert_eq!(rendered.of_kind("Deployment").count(), 1);
        assert_eq!(rendered.of_kind("Service").count(), 1);
        assert_eq!(rendered.of_kind("NetworkPolicy").count(), 1);
        assert!(built.behaviors.is_empty());
    }

    #[test]
    fn disabled_policy_not_rendered_but_defined() {
        let built = build(Plan {
            netpol: crate::spec::NetpolSpec::DefinedDisabled { loose: false },
            ..Default::default()
        });
        let rendered = built
            .chart()
            .render(&Release::new("testapp", "default"))
            .unwrap();
        assert_eq!(rendered.of_kind("NetworkPolicy").count(), 0);
        assert!(ij_core::chart_defines_network_policies(built.chart()));
        // Force-enable (the §4.3.2 methodology).
        let enabled = Release::new("testapp", "default")
            .with_values_yaml("networkPolicy:\n  enabled: true\n")
            .unwrap();
        let rendered = built.chart().render(&enabled).unwrap();
        assert_eq!(rendered.of_kind("NetworkPolicy").count(), 1);
    }

    #[test]
    fn injections_create_expected_resources() {
        let built = build(Plan {
            m1: 2,
            m2: 1,
            m3: 1,
            m4a: 1,
            m4b: 1,
            m4c: 1,
            m5a: 1,
            m5b: 1,
            m5c: 1,
            m5d: 1,
            m7: 1,
            ..Default::default()
        });
        let rendered = built
            .chart()
            .render(&Release::new("testapp", "default"))
            .unwrap();
        // server + worker + 2×peer + dup + 2×mode + store + api + db = 10
        assert_eq!(rendered.of_kind("Deployment").count(), 10);
        assert_eq!(rendered.of_kind("DaemonSet").count(), 1);
        // server + 2×dup + grp + store + api + headless-db + ghost = 8
        assert_eq!(rendered.of_kind("Service").count(), 8);
        // server (M1/M3 deltas), worker (ephemeral), store, db, exporter
        assert_eq!(built.behaviors.len(), 5);
    }

    #[test]
    fn m4star_component_has_token_only_labels() {
        let built = build(Plan {
            m4star_tokens: vec!["shared-stack"],
            ..Default::default()
        });
        let rendered = built
            .chart()
            .render(&Release::new("testapp", "default"))
            .unwrap();
        let pod = rendered.of_kind("Pod").next().unwrap();
        assert_eq!(pod.meta().labels.len(), 1);
        assert_eq!(
            pod.meta().labels.get("app.kubernetes.io/part-of"),
            Some("shared-stack")
        );
    }
}
