//! Chart and template errors.

use std::fmt;
use std::path::PathBuf;

/// Result alias for chart operations.
pub type Result<T> = std::result::Result<T, Error>;

/// A typed failure raised while loading a chart directory from disk.
///
/// Every variant carries the offending path, so callers (and the
/// conformance loss report) can point at the exact file instead of a
/// stringly "invalid values" blob. Nothing in the ingestion path panics:
/// unsupported layouts become one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The chart path does not exist or is not a directory.
    NotADirectory {
        /// The path that was passed to [`crate::Chart::from_dir`].
        path: PathBuf,
    },
    /// The directory has no `Chart.yaml`.
    MissingChartYaml {
        /// The `Chart.yaml` path that was probed.
        path: PathBuf,
    },
    /// `Chart.yaml` exists but is not parseable YAML.
    InvalidChartYaml {
        /// The `Chart.yaml` path.
        path: PathBuf,
        /// The underlying YAML error.
        source: ij_yaml::Error,
    },
    /// `values.yaml` exists but is not parseable YAML.
    InvalidValuesYaml {
        /// The `values.yaml` path.
        path: PathBuf,
        /// The underlying YAML error.
        source: ij_yaml::Error,
    },
    /// A `templates/` directory exists but holds no template files at all
    /// (`*.yaml`, `*.yml`, `*.tpl`); a chart without the directory still
    /// loads empty, but an empty directory is almost always a packaging
    /// mistake.
    EmptyTemplates {
        /// The `templates/` directory.
        path: PathBuf,
    },
    /// A chart file is not valid UTF-8.
    NonUtf8File {
        /// The offending file.
        path: PathBuf,
    },
    /// A packed dependency archive (`charts/*.tgz`) was found; this loader
    /// only ingests unpacked subchart directories.
    PackedSubchart {
        /// The archive path.
        path: PathBuf,
    },
    /// Any other filesystem error (permissions, transient I/O, …).
    Io {
        /// The path being read.
        path: PathBuf,
        /// The `std::io::Error` rendering.
        message: String,
    },
}

impl IngestError {
    /// The offending path, whichever variant this is.
    pub fn path(&self) -> &PathBuf {
        match self {
            IngestError::NotADirectory { path }
            | IngestError::MissingChartYaml { path }
            | IngestError::InvalidChartYaml { path, .. }
            | IngestError::InvalidValuesYaml { path, .. }
            | IngestError::EmptyTemplates { path }
            | IngestError::NonUtf8File { path }
            | IngestError::PackedSubchart { path }
            | IngestError::Io { path, .. } => path,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::NotADirectory { path } => {
                write!(f, "{}: not a chart directory", path.display())
            }
            IngestError::MissingChartYaml { path } => {
                write!(f, "{}: missing Chart.yaml", path.display())
            }
            IngestError::InvalidChartYaml { path, source } => {
                write!(f, "{}: invalid Chart.yaml: {source}", path.display())
            }
            IngestError::InvalidValuesYaml { path, source } => {
                write!(f, "{}: invalid values.yaml: {source}", path.display())
            }
            IngestError::EmptyTemplates { path } => {
                write!(
                    f,
                    "{}: templates/ directory holds no template files",
                    path.display()
                )
            }
            IngestError::NonUtf8File { path } => {
                write!(f, "{}: not valid UTF-8", path.display())
            }
            IngestError::PackedSubchart { path } => {
                write!(
                    f,
                    "{}: packed subchart archives are not supported (unpack into charts/<name>/)",
                    path.display()
                )
            }
            IngestError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
        }
    }
}

impl From<IngestError> for Error {
    fn from(e: IngestError) -> Self {
        Error::Ingest(e)
    }
}

/// An error raised while building or rendering a chart.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Template syntax error.
    Template {
        /// Template file name.
        template: String,
        /// Description with position information.
        message: String,
    },
    /// A rendered template failed to parse as YAML.
    RenderedYaml {
        /// Template file name.
        template: String,
        /// Underlying YAML error.
        source: ij_yaml::Error,
        /// The rendered text, kept for diagnostics.
        rendered: String,
    },
    /// A rendered document failed to decode as a Kubernetes object.
    Decode {
        /// Template file name.
        template: String,
        /// Underlying model error message.
        message: String,
    },
    /// Values file problems.
    Values(String),
    /// A `required` template function fired.
    Required(String),
    /// A chart directory failed to load from disk.
    Ingest(IngestError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Template { template, message } => {
                write!(f, "template `{template}`: {message}")
            }
            Error::RenderedYaml {
                template, source, ..
            } => {
                write!(f, "template `{template}` rendered invalid YAML: {source}")
            }
            Error::Decode { template, message } => {
                write!(
                    f,
                    "template `{template}` produced an invalid object: {message}"
                )
            }
            Error::Values(m) => write!(f, "invalid values: {m}"),
            Error::Required(m) => write!(f, "required value missing: {m}"),
            Error::Ingest(e) => write!(f, "chart ingest failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}
