//! The builtins registry: namespaced pure functions callable from rule
//! expressions.
//!
//! Every builtin is deterministic — same arguments, same value — which is
//! what keeps whole-rule evaluation reproducible. Three families exist:
//!
//! * `core.*` — generic value helpers (`len`, `contains`, `str`, `concat`,
//!   `ternary`, `upper`, `lower`);
//! * `ports.*` / `labels.*` — domain probes answered by the
//!   [`RuleResolver`](super::RuleResolver). The `labels.*` calls never reach
//!   [`BuiltinKind::run`]: the compiler requires literal arguments and
//!   lowers them to interned [`KeyId`](ij_model::KeyId)/
//!   [`LabelId`](ij_model::LabelId) probes;
//! * custom builtins registered by embedders via
//!   [`BuiltinsRegistry::register_custom`] (monomorphic signature, plain
//!   `fn` so registries stay `Send + Sync + Clone`).

use super::compile::Type;
use super::eval::Value;
use std::sync::Arc;

/// The semantics of one builtin. The compiler matches on this to type-check
/// calls (several `core.*` builtins are polymorphic); the evaluator matches
/// on it to execute.
#[derive(Debug, Clone)]
pub enum BuiltinKind {
    /// `core.len(list | string) -> number`
    Len,
    /// `core.contains(list, elem) -> bool`, `core.contains(string, string) -> bool`
    Contains,
    /// `core.str(bool | number | string) -> string`
    Str,
    /// `core.concat(string, string, ...) -> string`
    Concat,
    /// `core.ternary(bool, a, a) -> a` — lazy: only the taken branch runs.
    Ternary,
    /// `core.upper(string) -> string`
    Upper,
    /// `core.lower(string) -> string`
    Lower,
    /// `ports.declared(number, string) -> bool` — current unit's declared
    /// ports (resolver probe; only valid in unit-scoped selections).
    PortsDeclared,
    /// `labels.has("key") -> bool` — compiled to a `KeyId` probe.
    LabelsHas,
    /// `labels.is("key", "value") -> bool` — compiled to a `LabelId` probe.
    LabelsIs,
    /// `labels.get("key") -> string` (empty string when absent) — compiled
    /// to a `KeyId` probe.
    LabelsGet,
    /// An embedder-registered pure function with a fixed signature.
    Custom {
        /// Parameter types, checked exactly.
        params: Vec<Type>,
        /// Return type.
        ret: Type,
        /// The implementation; must be pure and deterministic.
        run: fn(&[Value]) -> Value,
    },
}

impl BuiltinKind {
    /// `Some(arity)` when the builtin evaluates its arguments lazily
    /// (only `core.ternary` today: condition first, then one branch).
    pub(crate) fn lazy_arity(&self) -> Option<usize> {
        match self {
            BuiltinKind::Ternary => Some(3),
            _ => None,
        }
    }

    /// True when the builtin probes the current compute unit and therefore
    /// only type-checks in unit-scoped selections.
    pub(crate) fn needs_unit(&self) -> bool {
        matches!(
            self,
            BuiltinKind::PortsDeclared
                | BuiltinKind::LabelsHas
                | BuiltinKind::LabelsIs
                | BuiltinKind::LabelsGet
        )
    }

    /// Executes an eager builtin on type-checked arguments. The resolver
    /// probes (`ports.*`, `labels.*`) and the lazy `core.ternary` are
    /// handled by the evaluator before reaching here.
    pub(crate) fn run(&self, args: &[Value]) -> Value {
        match self {
            BuiltinKind::Len => match &args[0] {
                Value::List(items) => Value::Number(items.len() as f64),
                Value::Str(s) => Value::Number(s.chars().count() as f64),
                other => unreachable!("type checker admitted core.len({other:?})"),
            },
            BuiltinKind::Contains => match (&args[0], &args[1]) {
                (Value::List(items), needle) => Value::Bool(items.iter().any(|v| v == needle)),
                (Value::Str(hay), Value::Str(needle)) => Value::Bool(hay.contains(needle.as_ref())),
                other => unreachable!("type checker admitted core.contains{other:?}"),
            },
            BuiltinKind::Str => Value::str(args[0].render()),
            BuiltinKind::Concat => {
                let mut out = String::new();
                for arg in args {
                    match arg {
                        Value::Str(s) => out.push_str(s),
                        other => unreachable!("type checker admitted core.concat({other:?})"),
                    }
                }
                Value::Str(Arc::from(out))
            }
            BuiltinKind::Upper => match &args[0] {
                Value::Str(s) => Value::str(s.to_uppercase()),
                other => unreachable!("type checker admitted core.upper({other:?})"),
            },
            BuiltinKind::Lower => match &args[0] {
                Value::Str(s) => Value::str(s.to_lowercase()),
                other => unreachable!("type checker admitted core.lower({other:?})"),
            },
            BuiltinKind::Custom { run, .. } => run(args),
            BuiltinKind::Ternary
            | BuiltinKind::PortsDeclared
            | BuiltinKind::LabelsHas
            | BuiltinKind::LabelsIs
            | BuiltinKind::LabelsGet => {
                unreachable!("handled before dispatch: {self:?}")
            }
        }
    }
}

/// One registered builtin: a dotted name bound to its semantics.
#[derive(Debug, Clone)]
pub struct BuiltinDef {
    name: String,
    kind: BuiltinKind,
}

impl BuiltinDef {
    /// The dotted name, e.g. `core.len`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The builtin's semantics tag.
    pub fn kind(&self) -> &BuiltinKind {
        &self.kind
    }
}

/// The table of builtins an expression may call, keyed by dotted name.
#[derive(Debug, Clone)]
pub struct BuiltinsRegistry {
    defs: Vec<BuiltinDef>,
}

impl Default for BuiltinsRegistry {
    fn default() -> Self {
        BuiltinsRegistry::standard()
    }
}

impl BuiltinsRegistry {
    /// The standard table: every `core.*`, `ports.*`, and `labels.*`
    /// builtin documented in `docs/RULES.md`.
    pub fn standard() -> Self {
        let mut reg = BuiltinsRegistry { defs: Vec::new() };
        for (name, kind) in [
            ("core.len", BuiltinKind::Len),
            ("core.contains", BuiltinKind::Contains),
            ("core.str", BuiltinKind::Str),
            ("core.concat", BuiltinKind::Concat),
            ("core.ternary", BuiltinKind::Ternary),
            ("core.upper", BuiltinKind::Upper),
            ("core.lower", BuiltinKind::Lower),
            ("ports.declared", BuiltinKind::PortsDeclared),
            ("labels.has", BuiltinKind::LabelsHas),
            ("labels.is", BuiltinKind::LabelsIs),
            ("labels.get", BuiltinKind::LabelsGet),
        ] {
            reg.defs.push(BuiltinDef {
                name: name.to_string(),
                kind,
            });
        }
        reg
    }

    /// Registers (or replaces) a custom builtin under a dotted name. The
    /// function must be pure: rule evaluation assumes same-input
    /// same-output.
    pub fn register_custom(
        &mut self,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        run: fn(&[Value]) -> Value,
    ) {
        let kind = BuiltinKind::Custom { params, ret, run };
        match self.defs.iter_mut().find(|d| d.name == name) {
            Some(existing) => existing.kind = kind,
            None => self.defs.push(BuiltinDef {
                name: name.to_string(),
                kind,
            }),
        }
    }

    /// Resolves a dotted name.
    pub fn lookup(&self, name: &str) -> Option<&BuiltinDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Every registered builtin, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &BuiltinDef> + '_ {
        self.defs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_is_complete_and_custom_registration_replaces() {
        let mut reg = BuiltinsRegistry::standard();
        for name in [
            "core.len",
            "core.contains",
            "core.str",
            "core.concat",
            "core.ternary",
            "core.upper",
            "core.lower",
            "ports.declared",
            "labels.has",
            "labels.is",
            "labels.get",
        ] {
            assert!(reg.lookup(name).is_some(), "missing builtin {name}");
        }
        assert!(reg.lookup("core.nope").is_none());

        fn double(args: &[Value]) -> Value {
            match &args[0] {
                Value::Number(n) => Value::Number(n * 2.0),
                _ => unreachable!(),
            }
        }
        let before = reg.iter().count();
        reg.register_custom("math.double", vec![Type::Number], Type::Number, double);
        assert_eq!(reg.iter().count(), before + 1);
        reg.register_custom("math.double", vec![Type::Number], Type::Number, double);
        assert_eq!(reg.iter().count(), before + 1, "replacement, not append");
        let def = reg.lookup("math.double").unwrap();
        match def.kind() {
            BuiltinKind::Custom { run, .. } => {
                assert_eq!(run(&[Value::Number(21.0)]), Value::Number(42.0));
            }
            other => panic!("expected custom builtin, got {other:?}"),
        }
    }

    #[test]
    fn eager_builtins_compute() {
        assert_eq!(
            BuiltinKind::Len.run(&[Value::str("héllo")]),
            Value::Number(5.0)
        );
        assert_eq!(
            BuiltinKind::Concat.run(&[Value::str("a/"), Value::str("b")]),
            Value::str("a/b")
        );
        assert_eq!(
            BuiltinKind::Str.run(&[Value::Number(8080.0)]),
            Value::str("8080")
        );
        assert_eq!(
            BuiltinKind::Upper.run(&[Value::str("tcp")]),
            Value::str("TCP")
        );
        let list = Value::List(Arc::new(vec![Value::Number(80.0), Value::Number(443.0)]));
        assert_eq!(
            BuiltinKind::Contains.run(&[list, Value::Number(443.0)]),
            Value::Bool(true)
        );
    }
}
