//! Rule packs: the text format that turns the expression language into
//! registry entries.
//!
//! A pack is a plain-text file of `rule <name> … end` blocks plus top-level
//! `disable <name>` directives:
//!
//! ```text
//! # Comments run to end of line; blank lines separate blocks.
//! disable m5
//!
//! rule m7
//!   class    = M7
//!   select   = unit
//!   evidence = static
//!   when     = unit.host_network
//!   message  = pod template sets hostNetwork: true, bypassing NetworkPolicies
//! end
//! ```
//!
//! Fields are `key = value` lines (split on the first `=`, both sides
//! trimmed). `class`, `select`, `when`, and `message` are required;
//! `evidence` defaults to `static`; `port`/`protocol` are optional
//! expressions that attach port information to the finding (they must be
//! given together). The `message` value is a template: `{expr}` interpolates
//! a scalar expression, `{{`/`}}` escape literal braces.
//!
//! Every expression is compiled at load time against the scope's attribute
//! schema (see [`super::resolve`]); label probes intern into one pack-wide
//! table. Loading therefore front-loads *all* failure: a pack that parses
//! and type-checks evaluates without error, deterministically.

use super::ast::parse;
use super::builtins::BuiltinsRegistry;
use super::compile::{compile, CompileEnv, CompiledExpr, Type};
use super::eval::{evaluate, evaluate_with_trace, TraceAtom, Value};
use super::lex::{LangError, Span};
use super::resolve::{
    parse_protocol, schema_for, AttrKey, Entity, EntityResolver, PortFacts, Select, SvcView,
    UnitView,
};
use crate::finding::{Finding, MisconfigId};
use crate::registry::{RuleRegistry, RuleScope, UnknownRule};
use crate::rules::RuleContext;
use ij_model::LabelInterner;
use std::str::FromStr;
use std::sync::Arc;

/// One piece of a compiled message template.
#[derive(Debug, Clone)]
enum Segment {
    /// Literal text.
    Lit(String),
    /// An interpolated scalar expression.
    Expr(CompiledExpr),
}

/// One rule compiled from a pack: a selection scope, a boolean `when`
/// expression, a message template, and optional port/protocol expressions —
/// everything resolved to ids, ready to evaluate.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    name: String,
    class: MisconfigId,
    evidence: RuleScope,
    select: Select,
    when: CompiledExpr,
    when_src: String,
    message: Vec<Segment>,
    message_src: String,
    port: Option<(CompiledExpr, String)>,
    protocol: Option<(CompiledExpr, String)>,
    keys: Vec<AttrKey>,
    interner: Arc<LabelInterner>,
}

impl CompiledRule {
    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The misconfiguration class every finding of this rule carries.
    pub fn class(&self) -> MisconfigId {
        self.class
    }

    /// Static or runtime evidence (the engine's gating axis).
    pub fn evidence(&self) -> RuleScope {
        self.evidence
    }

    /// The selection scope the `when` expression runs once per.
    pub fn select(&self) -> Select {
        self.select
    }

    /// The `when` expression's source text.
    pub fn expression(&self) -> &str {
        &self.when_src
    }

    /// The message template's source text.
    pub fn message_template(&self) -> &str {
        &self.message_src
    }

    /// Evaluates the rule over one application.
    pub fn run(&self, ctx: &RuleContext<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        self.run_impl(ctx, false, &mut |finding, _| out.push(finding));
        out
    }

    /// Like [`run`](CompiledRule::run), but each finding comes with the
    /// atom-level trace of its `when` evaluation — the explanation of *why*
    /// it fired. Entities whose `when` is false contribute nothing.
    pub fn run_traced(&self, ctx: &RuleContext<'_>) -> Vec<(Finding, Vec<TraceAtom>)> {
        let mut out = Vec::new();
        self.run_impl(ctx, true, &mut |finding, trace| out.push((finding, trace)));
        out
    }

    fn run_impl(
        &self,
        ctx: &RuleContext<'_>,
        traced: bool,
        sink: &mut dyn FnMut(Finding, Vec<TraceAtom>),
    ) {
        match self.select {
            Select::App => {
                self.consider(ctx, Entity::App, traced, sink);
            }
            Select::Unit => {
                for unit in &ctx.statics.units {
                    let view = UnitView::new(ctx, unit, &self.interner);
                    self.consider(ctx, Entity::Unit(&view), traced, sink);
                }
            }
            Select::Socket => {
                for unit in &ctx.statics.units {
                    let view = UnitView::new(ctx, unit, &self.interner);
                    for socket in &view.stable {
                        self.consider(
                            ctx,
                            Entity::Socket {
                                unit: &view,
                                socket: *socket,
                            },
                            traced,
                            sink,
                        );
                    }
                }
            }
            Select::Service => {
                for svc in &ctx.statics.services {
                    let view = SvcView::new(ctx, svc);
                    self.consider(ctx, Entity::Service(&view), traced, sink);
                }
            }
            Select::ServicePort => {
                for svc in &ctx.statics.services {
                    let view = SvcView::new(ctx, svc);
                    for sp in &svc.spec.ports {
                        let facts = PortFacts::compute(ctx, &view, sp);
                        self.consider(
                            ctx,
                            Entity::ServicePort {
                                svc: &view,
                                sp,
                                facts: &facts,
                            },
                            traced,
                            sink,
                        );
                    }
                }
            }
        }
    }

    fn consider(
        &self,
        ctx: &RuleContext<'_>,
        entity: Entity<'_>,
        traced: bool,
        sink: &mut dyn FnMut(Finding, Vec<TraceAtom>),
    ) {
        let object: String = match &entity {
            Entity::App => ctx.app.to_string(),
            Entity::Unit(view) | Entity::Socket { unit: view, .. } => view.unit.name.clone(),
            Entity::Service(view) | Entity::ServicePort { svc: view, .. } => {
                view.svc.meta.qualified_name()
            }
        };
        let resolver = EntityResolver {
            ctx,
            keys: &self.keys,
            entity,
        };
        let (verdict, trace) = if traced {
            let (v, t) = evaluate_with_trace(&self.when, &resolver, &self.when_src);
            (v, t)
        } else {
            (evaluate(&self.when, &resolver), Vec::new())
        };
        let Value::Bool(fired) = verdict else {
            unreachable!("pack loader admitted a non-bool `when`")
        };
        if !fired {
            return;
        }
        let mut detail = String::new();
        for segment in &self.message {
            match segment {
                Segment::Lit(text) => detail.push_str(text),
                Segment::Expr(expr) => detail.push_str(&evaluate(expr, &resolver).render()),
            }
        }
        let mut finding = Finding::new(self.class, ctx.app, object, detail);
        if let (Some((port_expr, _)), Some((proto_expr, _))) = (&self.port, &self.protocol) {
            let Value::Number(port) = evaluate(port_expr, &resolver) else {
                unreachable!("pack loader admitted a non-number `port`")
            };
            let proto = evaluate(proto_expr, &resolver).render();
            if let Some(protocol) = parse_protocol(&proto) {
                finding = finding.with_port(port as u16, protocol);
            }
        }
        sink(finding, trace);
    }
}

/// A loaded rule pack: compiled rules in file order, plus the names it
/// disables.
#[derive(Debug, Clone)]
pub struct RulePack {
    rules: Vec<Arc<CompiledRule>>,
    disables: Vec<String>,
}

/// The source text of the built-in pack (committed at `packs/builtin.rules`,
/// embedded here so the binary needs no file at run time).
pub const BUILTIN_PACK_SOURCE: &str = include_str!("../../../../packs/builtin.rules");

/// Loads a pack from its text form with the standard builtins (so
/// `RulePack::from_str(src)` and `src.parse()` both work). All parse/type
/// errors surface here, positioned by line and column in the pack file.
impl std::str::FromStr for RulePack {
    type Err = LangError;

    fn from_str(src: &str) -> Result<RulePack, LangError> {
        RulePack::load(src, &BuiltinsRegistry::standard())
    }
}

impl RulePack {
    /// Loads a pack against a caller-extended builtins registry.
    pub fn load(src: &str, builtins: &BuiltinsRegistry) -> Result<RulePack, LangError> {
        Loader::new(builtins).load(src)
    }

    /// The built-in pack: M1, M2, the M5 family, M6, and M7 expressed in
    /// the rule language. Compiled from [`BUILTIN_PACK_SOURCE`]; loading it
    /// cannot fail (guarded by tests).
    pub fn builtin() -> RulePack {
        RulePack::from_str(BUILTIN_PACK_SOURCE).expect("built-in pack must compile")
    }

    /// The compiled rules, in file order.
    pub fn rules(&self) -> impl Iterator<Item = &Arc<CompiledRule>> + '_ {
        self.rules.iter()
    }

    /// The names this pack disables, in file order.
    pub fn disables(&self) -> &[String] {
        &self.disables
    }

    /// Installs the pack into a registry: every rule is registered (pack
    /// rules replace same-named entries in place), then every `disable`
    /// directive is applied. A `disable` naming an unknown rule is an error
    /// and leaves the disable half unapplied.
    pub fn register_into(&self, registry: &mut RuleRegistry) -> Result<(), UnknownRule> {
        for rule in &self.rules {
            registry.register_pack_rule(Arc::clone(rule));
        }
        for name in &self.disables {
            registry.try_disable(name)?;
        }
        Ok(())
    }
}

/// A zero-length span pointing at a pack-file position (pack-level errors
/// have no expression source to slice).
fn pack_span(line: u32, column: u32) -> Span {
    Span {
        offset: 0,
        len: 0,
        line,
        column,
    }
}

fn pack_err(message: impl Into<String>, line: u32, column: u32) -> LangError {
    LangError::new(message, pack_span(line, column))
}

fn parse_class(s: &str) -> Option<MisconfigId> {
    MisconfigId::ALL.into_iter().find(|id| id.as_str() == s)
}

/// One field occurrence: value text plus where it starts in the pack file.
struct Field {
    value: String,
    line: u32,
    column: u32,
}

#[derive(Default)]
struct Block {
    name: String,
    line: u32,
    class: Option<Field>,
    select: Option<Field>,
    evidence: Option<Field>,
    when: Option<Field>,
    message: Option<Field>,
    port: Option<Field>,
    protocol: Option<Field>,
}

struct Loader<'a> {
    builtins: &'a BuiltinsRegistry,
    interner: LabelInterner,
}

impl<'a> Loader<'a> {
    fn new(builtins: &'a BuiltinsRegistry) -> Self {
        Loader {
            builtins,
            interner: LabelInterner::new(),
        }
    }

    fn load(mut self, src: &str) -> Result<RulePack, LangError> {
        let mut blocks: Vec<Block> = Vec::new();
        let mut disables: Vec<String> = Vec::new();
        let mut current: Option<Block> = None;
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match &mut current {
                None => {
                    if let Some(name) = line.strip_prefix("disable ") {
                        let name = name.trim();
                        if name.is_empty() || name.contains(char::is_whitespace) {
                            return Err(pack_err("`disable` takes one rule name", line_no, 1));
                        }
                        disables.push(name.to_string());
                    } else if let Some(name) = line.strip_prefix("rule ") {
                        let name = name.trim();
                        if name.is_empty() || name.contains(char::is_whitespace) {
                            return Err(pack_err("`rule` takes one rule name", line_no, 1));
                        }
                        if blocks.iter().any(|b| b.name == name) {
                            return Err(pack_err(
                                format!("rule `{name}` is defined twice in this pack"),
                                line_no,
                                1,
                            ));
                        }
                        current = Some(Block {
                            name: name.to_string(),
                            line: line_no,
                            ..Block::default()
                        });
                    } else {
                        return Err(pack_err(
                            format!(
                                "expected `rule <name>`, `disable <name>`, or a comment, \
                                 found `{line}`"
                            ),
                            line_no,
                            1,
                        ));
                    }
                }
                Some(block) => {
                    if line == "end" {
                        blocks.push(current.take().expect("inside a block"));
                        continue;
                    }
                    let Some((key_part, value_part)) = raw.split_once('=') else {
                        return Err(pack_err(
                            format!(
                                "expected `key = value` or `end` inside rule `{}`",
                                block.name
                            ),
                            line_no,
                            1,
                        ));
                    };
                    let key = key_part.trim();
                    let value = value_part.trim();
                    // Column (1-based, in characters) where the trimmed
                    // value starts, so expression errors relocate exactly.
                    let value_start =
                        key_part.len() + 1 + (value_part.len() - value_part.trim_start().len());
                    let column = raw[..value_start].chars().count() as u32 + 1;
                    let field = Field {
                        value: value.to_string(),
                        line: line_no,
                        column,
                    };
                    let slot = match key {
                        "class" => &mut block.class,
                        "select" => &mut block.select,
                        "evidence" => &mut block.evidence,
                        "when" => &mut block.when,
                        "message" => &mut block.message,
                        "port" => &mut block.port,
                        "protocol" => &mut block.protocol,
                        other => {
                            return Err(pack_err(
                                format!("unknown field `{other}` in rule `{}`", block.name),
                                line_no,
                                1,
                            ))
                        }
                    };
                    if slot.is_some() {
                        return Err(pack_err(
                            format!("field `{key}` given twice in rule `{}`", block.name),
                            line_no,
                            1,
                        ));
                    }
                    *slot = Some(field);
                }
            }
        }
        if let Some(block) = current {
            return Err(pack_err(
                format!("rule `{}` is missing its `end`", block.name),
                block.line,
                1,
            ));
        }
        let mut rules = Vec::with_capacity(blocks.len());
        for block in &blocks {
            rules.push(self.compile_block(block)?);
        }
        let interner = Arc::new(self.interner);
        let rules = rules
            .into_iter()
            .map(|pending: PendingRule| {
                Arc::new(CompiledRule {
                    name: pending.name,
                    class: pending.class,
                    evidence: pending.evidence,
                    select: pending.select,
                    when: pending.when,
                    when_src: pending.when_src,
                    message: pending.message,
                    message_src: pending.message_src,
                    port: pending.port,
                    protocol: pending.protocol,
                    keys: pending.keys,
                    interner: Arc::clone(&interner),
                })
            })
            .collect();
        Ok(RulePack { rules, disables })
    }

    fn compile_block(&mut self, block: &Block) -> Result<PendingRule, LangError> {
        let require = |field: &Option<Field>, name: &str| -> Result<(), LangError> {
            if field.is_none() {
                return Err(pack_err(
                    format!("rule `{}` is missing the `{name}` field", block.name),
                    block.line,
                    1,
                ));
            }
            Ok(())
        };
        require(&block.class, "class")?;
        require(&block.select, "select")?;
        require(&block.when, "when")?;
        require(&block.message, "message")?;
        let class_field = block.class.as_ref().expect("checked");
        let class = parse_class(&class_field.value).ok_or_else(|| {
            pack_err(
                format!(
                    "unknown class `{}` (expected one of {})",
                    class_field.value,
                    MisconfigId::ALL.map(|id| id.as_str()).join(", ")
                ),
                class_field.line,
                class_field.column,
            )
        })?;
        let select_field = block.select.as_ref().expect("checked");
        let select = Select::parse(&select_field.value).ok_or_else(|| {
            pack_err(
                format!(
                    "unknown selection scope `{}` (expected app, unit, socket, service, \
                     or service_port)",
                    select_field.value
                ),
                select_field.line,
                select_field.column,
            )
        })?;
        let evidence = match block.evidence.as_ref() {
            None => RuleScope::Static,
            Some(f) => match f.value.as_str() {
                "static" => RuleScope::Static,
                "runtime" => RuleScope::Runtime,
                other => {
                    return Err(pack_err(
                        format!("unknown evidence `{other}` (expected static or runtime)"),
                        f.line,
                        f.column,
                    ))
                }
            },
        };
        let (schema, keys) = schema_for(select);
        let mut env = CompileEnv {
            schema: &schema,
            scope_name: select.as_str(),
            unit_scoped: select.unit_scoped(),
            builtins: self.builtins,
            interner: &mut self.interner,
        };

        let when_field = block.when.as_ref().expect("checked");
        let when = compile_field(&mut env, when_field)?;
        if when.ty() != &Type::Bool {
            return Err(pack_err(
                format!("`when` must be a bool expression, found {}", when.ty()),
                when_field.line,
                when_field.column,
            ));
        }

        let message_field = block.message.as_ref().expect("checked");
        let message = compile_template(&mut env, message_field)?;

        let port = match block.port.as_ref() {
            None => None,
            Some(f) => {
                let expr = compile_field(&mut env, f)?;
                if expr.ty() != &Type::Number {
                    return Err(pack_err(
                        format!("`port` must be a number expression, found {}", expr.ty()),
                        f.line,
                        f.column,
                    ));
                }
                Some((expr, f.value.clone()))
            }
        };
        let protocol = match block.protocol.as_ref() {
            None => None,
            Some(f) => {
                let expr = compile_field(&mut env, f)?;
                if expr.ty() != &Type::String {
                    return Err(pack_err(
                        format!(
                            "`protocol` must be a string expression, found {}",
                            expr.ty()
                        ),
                        f.line,
                        f.column,
                    ));
                }
                Some((expr, f.value.clone()))
            }
        };
        if port.is_some() != protocol.is_some() {
            return Err(pack_err(
                format!(
                    "rule `{}` must give `port` and `protocol` together",
                    block.name
                ),
                block.line,
                1,
            ));
        }

        Ok(PendingRule {
            name: block.name.clone(),
            class,
            evidence,
            select,
            when,
            when_src: when_field.value.clone(),
            message,
            message_src: message_field.value.clone(),
            port,
            protocol,
            keys,
        })
    }
}

struct PendingRule {
    name: String,
    class: MisconfigId,
    evidence: RuleScope,
    select: Select,
    when: CompiledExpr,
    when_src: String,
    message: Vec<Segment>,
    message_src: String,
    port: Option<(CompiledExpr, String)>,
    protocol: Option<(CompiledExpr, String)>,
    keys: Vec<AttrKey>,
}

/// Parses and compiles one expression field, relocating errors into the
/// pack file.
fn compile_field(env: &mut CompileEnv<'_>, field: &Field) -> Result<CompiledExpr, LangError> {
    let ast =
        parse(&field.value).map_err(|e| e.relocate(field.line, field.column.saturating_sub(1)))?;
    compile(&ast, env).map_err(|e| e.relocate(field.line, field.column.saturating_sub(1)))
}

/// Compiles a message template: literal text with `{expr}` interpolations
/// (scalar expressions only) and `{{`/`}}` escapes.
fn compile_template(env: &mut CompileEnv<'_>, field: &Field) -> Result<Vec<Segment>, LangError> {
    let src = &field.value;
    let mut segments = Vec::new();
    let mut lit = String::new();
    let mut chars = src.char_indices().peekable();
    // Running character count, to relocate expression errors precisely.
    let mut col = 0u32;
    while let Some((idx, c)) = chars.next() {
        match c {
            '{' if chars.peek().map(|&(_, c2)| c2) == Some('{') => {
                chars.next();
                lit.push('{');
                col += 2;
            }
            '}' if chars.peek().map(|&(_, c2)| c2) == Some('}') => {
                chars.next();
                lit.push('}');
                col += 2;
            }
            '}' => {
                return Err(pack_err(
                    "unmatched `}` in message template (use `}}` for a literal brace)",
                    field.line,
                    field.column + col,
                ));
            }
            '{' => {
                // Find the matching close brace, skipping string literals
                // (their text may contain braces).
                let expr_start = idx + c.len_utf8();
                let expr_col = col + 1;
                let mut end = None;
                let mut in_string = false;
                let mut escaped = false;
                for (j, cj) in chars.by_ref() {
                    col += 1;
                    if in_string {
                        if escaped {
                            escaped = false;
                        } else if cj == '\\' {
                            escaped = true;
                        } else if cj == '"' {
                            in_string = false;
                        }
                        continue;
                    }
                    match cj {
                        '"' => in_string = true,
                        '}' => {
                            end = Some(j);
                            break;
                        }
                        _ => {}
                    }
                }
                let Some(end) = end else {
                    return Err(pack_err(
                        "unterminated `{expr}` interpolation in message template",
                        field.line,
                        field.column + expr_col - 1,
                    ));
                };
                let expr_src = &src[expr_start..end];
                if !lit.is_empty() {
                    segments.push(Segment::Lit(std::mem::take(&mut lit)));
                }
                let ast = parse(expr_src)
                    .map_err(|e| e.relocate(field.line, field.column + expr_col - 1))?;
                let compiled = compile(&ast, env)
                    .map_err(|e| e.relocate(field.line, field.column + expr_col - 1))?;
                match compiled.ty() {
                    Type::Bool | Type::Number | Type::String => {}
                    other => {
                        return Err(pack_err(
                            format!("message interpolation must be scalar, found {other}"),
                            field.line,
                            field.column + expr_col,
                        ));
                    }
                }
                segments.push(Segment::Expr(compiled));
                col += 1; // the closing `}`
            }
            other => {
                lit.push(other);
                col += 1;
            }
        }
    }
    if !lit.is_empty() {
        segments.push(Segment::Lit(lit));
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StaticModel;
    use ij_model::decode_manifests;

    fn ctx<'a>(statics: &'a StaticModel) -> RuleContext<'a> {
        RuleContext {
            app: "test",
            statics,
            runtime: None,
            ownership: &[],
            chart_defines_policies: false,
        }
    }

    const HOSTNET_POD: &str = "\
apiVersion: v1
kind: Pod
metadata:
  name: p
  labels:
    app: p
    tier: edge
spec:
  hostNetwork: true
  containers:
    - name: c
      image: img
      ports:
        - containerPort: 80
";

    #[test]
    fn builtin_pack_loads() {
        let pack = RulePack::builtin();
        let names: Vec<&str> = pack.rules().map(|r| r.name()).collect();
        assert_eq!(names, ["m1", "m2", "m5a", "m5b", "m5c", "m5d", "m6", "m7"]);
        assert_eq!(pack.disables(), ["m5".to_string()]);
        let mut reg = RuleRegistry::standard();
        let count_before = reg.entries().len();
        pack.register_into(&mut reg).unwrap();
        // m1/m2/m6/m7 replaced in place, m5a–m5d appended.
        assert_eq!(reg.entries().len(), count_before + 4);
        assert!(!reg.is_enabled("m5"), "the native m5 aggregate is disabled");
        assert_eq!(
            reg.get("m1").unwrap().origin(),
            crate::registry::RuleOrigin::Pack
        );
        assert_eq!(
            reg.get("m3").unwrap().origin(),
            crate::registry::RuleOrigin::Native
        );
        assert!(reg.get("m1").unwrap().expression().is_some());
    }

    #[test]
    fn pack_parses_compiles_and_runs() {
        let pack = RulePack::from_str(
            "\
# host-network units, with label probes exercised
rule hostnet
  class = M7
  select = unit
  when = unit.host_network && labels.has(\"app\") && !labels.is(\"tier\", \"backend\")
  message = unit {unit.name} (app={labels.get(\"app\")}) binds the host network
end
",
        )
        .unwrap();
        assert_eq!(pack.rules().count(), 1);
        let rule = pack.rules().next().unwrap();
        assert_eq!(rule.name(), "hostnet");
        assert_eq!(rule.class(), MisconfigId::M7);
        assert_eq!(rule.select(), Select::Unit);
        assert_eq!(rule.evidence(), RuleScope::Static);

        let statics = StaticModel::from_objects(&decode_manifests(HOSTNET_POD).unwrap());
        let findings = rule.run(&ctx(&statics));
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].detail,
            "unit default/p (app=p) binds the host network"
        );
    }

    #[test]
    fn traced_run_explains_the_verdict() {
        let pack = RulePack::from_str(
            "\
rule hostnet
  class = M7
  select = unit
  when = unit.host_network && labels.has(\"app\")
  message = hostNetwork
end
",
        )
        .unwrap();
        let statics = StaticModel::from_objects(&decode_manifests(HOSTNET_POD).unwrap());
        let rule = pack.rules().next().unwrap();
        let traced = rule.run_traced(&ctx(&statics));
        assert_eq!(traced.len(), 1);
        let atoms = &traced[0].1;
        let rendered: Vec<String> = atoms.iter().map(|a| format!("{a}")).collect();
        assert_eq!(
            rendered,
            vec![
                "unit.host_network = true".to_string(),
                "labels.has(\"app\") = true".to_string(),
            ],
            "trace must list exactly the atoms evaluated, in order"
        );
    }

    #[test]
    fn pack_errors_carry_pack_file_positions() {
        // Type error in an embedded expression: line 4 of the pack.
        let err = RulePack::from_str(
            "\
rule broken
  class = M7
  select = unit
  when = unit.host_network && 3
  message = x
end
",
        )
        .unwrap_err();
        assert_eq!(err.span.line, 4);
        assert!(err.span.column > 9, "column must point into the expression");
        assert!(err.message.contains("`&&` expects bool"), "{err}");

        // Unknown attribute for the scope.
        let err = RulePack::from_str(
            "\
rule wrong-scope
  class = M5D
  select = service
  when = unit.host_network
  message = x
end
",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown attribute"), "{err}");
        assert!(err.message.contains("`service` scope"), "{err}");

        // Pack-structure errors.
        for (src, needle) in [
            ("bogus line\n", "expected `rule <name>`"),
            ("rule a\n  class = M7\n", "missing its `end`"),
            (
                "rule a\n  class = M9\n  select = unit\n  when = true\n  message = x\nend\n",
                "unknown class",
            ),
            (
                "rule a\n  class = M7\n  select = unit\n  when = true\nend\n",
                "missing the `message`",
            ),
            (
                "rule a\n  class = M7\n  select = unit\n  when = true\n  message = x\n  port = 1\nend\n",
                "`port` and `protocol` together",
            ),
            (
                "rule a\n  class = M7\n  select = unit\n  when = true\n  message = oops }\nend\n",
                "unmatched `}`",
            ),
            (
                "rule a\n  class = M7\n  select = unit\n  when = true\n  message = {unit.name\nend\n",
                "unterminated `{expr}`",
            ),
            (
                "rule a\n  class = M7\n  select = service\n  when = labels.has(\"x\")\n  message = x\nend\n",
                "not available in the `service` scope",
            ),
        ] {
            let err = RulePack::from_str(src).unwrap_err();
            assert!(err.message.contains(needle), "{src:?} → {err}");
        }
    }

    #[test]
    fn template_escapes_and_literals() {
        let pack = RulePack::from_str(
            "\
rule braces
  class = M7
  select = unit
  when = unit.host_network
  message = literal {{braces}} and {core.str(socket_count_is_not_read)}
end
",
        );
        // The interpolation references an unknown attribute: error, proving
        // `{...}` is parsed as an expression while `{{...}}` is literal.
        assert!(pack.is_err());
        let pack = RulePack::from_str(
            "\
rule braces
  class = M7
  select = unit
  when = unit.host_network
  message = literal {{braces}} and {unit.kind}
end
",
        )
        .unwrap();
        let statics = StaticModel::from_objects(&decode_manifests(HOSTNET_POD).unwrap());
        let findings = pack.rules().next().unwrap().run(&ctx(&statics));
        assert_eq!(findings[0].detail, "literal {braces} and Pod");
    }
}
