//! Declared attribute schemas over dense ids.
//!
//! The rule expression language (ij-core's `lang` module) type-checks every
//! expression against a schema declared ahead of time: each attribute a rule
//! may read (`unit.host_network`, `socket.port`, …) is registered once with
//! its type and assigned a dense [`AttrId`]. Compilation resolves attribute
//! *names* to ids; evaluation then probes the resolver by id — an indexed
//! dispatch, never a string lookup — which is the same compile-time-resolve /
//! eval-time-probe contract the [`crate::LabelInterner`] gives label matching.

use std::collections::HashMap;
use std::fmt;

/// Dense id of a declared attribute. Ids index the declaring
/// [`AttrSchema`]'s declaration order, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(u32);

impl AttrId {
    /// The id as a dense index into declaration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The primitive type of an attribute's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// A boolean flag.
    Bool,
    /// A number (ports, counts — integral in practice, carried as `f64`).
    Number,
    /// A string.
    String,
}

impl AttrType {
    /// Lower-case type name as used in diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            AttrType::Bool => "bool",
            AttrType::Number => "number",
            AttrType::String => "string",
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A declared set of typed attributes, keyed by dotted name.
///
/// Declaration order is id order, so a resolver can back the schema with a
/// plain array indexed by [`AttrId::index`].
#[derive(Debug, Clone, Default)]
pub struct AttrSchema {
    by_name: HashMap<String, (AttrId, AttrType)>,
    order: Vec<(String, AttrType)>,
}

impl AttrSchema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares one attribute, assigning the next dense id. Panics on a
    /// duplicate name: schemas are built from static tables, so a collision
    /// is a programming error, not an input error.
    pub fn declare(&mut self, name: &str, ty: AttrType) -> AttrId {
        assert!(
            !self.by_name.contains_key(name),
            "attribute `{name}` declared twice"
        );
        let id = AttrId(u32::try_from(self.order.len()).expect("fewer than 2^32 attributes"));
        self.by_name.insert(name.to_string(), (id, ty));
        self.order.push((name.to_string(), ty));
        id
    }

    /// Resolves a dotted attribute name to its id and type.
    pub fn lookup(&self, name: &str) -> Option<(AttrId, AttrType)> {
        self.by_name.get(name).copied()
    }

    /// Number of declared attributes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing has been declared.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `(name, id, type)` triples in declaration (= id) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, AttrId, AttrType)> + '_ {
        self.order
            .iter()
            .enumerate()
            .map(|(i, (name, ty))| (name.as_str(), AttrId(i as u32), *ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_in_declaration_order() {
        let mut schema = AttrSchema::new();
        let a = schema.declare("app.name", AttrType::String);
        let b = schema.declare("unit.host_network", AttrType::Bool);
        let c = schema.declare("socket.port", AttrType::Number);
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.lookup("socket.port"), Some((c, AttrType::Number)));
        assert_eq!(schema.lookup("nope"), None);
        let names: Vec<&str> = schema.iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, ["app.name", "unit.host_network", "socket.port"]);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_declaration_panics() {
        let mut schema = AttrSchema::new();
        schema.declare("app.name", AttrType::String);
        schema.declare("app.name", AttrType::String);
    }
}
