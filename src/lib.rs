//! # inside-job — reproduction of "Inside Job: Defending Kubernetes
//! Clusters Against Network Misconfigurations" (CoNEXT 2025)
//!
//! This meta-crate re-exports the workspace's public API. See the README
//! for the architecture overview and `DESIGN.md` / `EXPERIMENTS.md` for the
//! reproduction details.

pub mod serve;

pub use ij_baselines as baselines;
pub use ij_chart as chart;
pub use ij_cluster as cluster;
pub use ij_core as core;
pub use ij_datasets as datasets;
pub use ij_guard as guard;
pub use ij_model as model;
pub use ij_probe as probe;
pub use ij_yaml as yaml;
