//! Corpus-scale benchmark: the census pipeline over procedurally generated
//! populations from 100 up to 1,000,000 applications (the built-in corpus
//! stops at 290). Two arms per size:
//!
//! * `generate` — pure spec synthesis (what the streaming source costs the
//!   workers);
//! * `census` — the full flat-memory pipeline (`run_generated_compact`):
//!   build → compile → render → install → double-pass probe → rule
//!   evaluation → cluster-wide pass, streamed from the generator into
//!   interned `CompactFinding`s (never a materialized spec or report Vec of
//!   owned strings).
//!
//! Before any timing, the 100-app population's census is asserted against
//! the generator's ground truth class by class — a corpus-scale rerun of
//! the precision/recall guarantee, so the timed path is also a correct
//! path. After the timed arms the bench prints the process `VmHWM` peak
//! RSS, the memory number committed next to the curve. Committed numbers
//! live in `BENCH_corpus.json` (schema in `docs/BENCHMARKS.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use ij_core::MisconfigId;
use ij_datasets::{CensusPipeline, CorpusGenerator, CorpusProfile};
use std::hint::black_box;

const SIZES: [usize; 6] = [100, 1_000, 5_000, 25_000, 100_000, 1_000_000];
/// Arms run under `cargo test` (single iteration each): the historical
/// 100/1k pair everywhere, plus the 25k arm as the streaming-path smoke in
/// optimized builds only (CI runs the bench smoke with `--release`; an
/// unoptimized 25k census is minutes, not seconds). The 100k and 1M arms
/// are `cargo bench` material.
const TEST_SIZES: [usize; 3] = [100, 1_000, 25_000];
const SEED: u64 = 7;

fn generator(apps: usize) -> CorpusGenerator {
    CorpusGenerator::new(
        CorpusProfile::named("baseline")
            .expect("baseline profile")
            .with_apps(apps)
            .with_seed(SEED),
    )
}

fn pipeline() -> CensusPipeline {
    CensusPipeline::builder().seed(SEED).build()
}

/// The census must find exactly what the generator injected — per class,
/// not just in total — before its wall-clock means anything.
fn assert_ground_truth(apps: usize) {
    let generator = generator(apps);
    let expected = generator.describe();
    let census = pipeline()
        .run_generated(&generator)
        .expect("generated corpus renders and installs");
    for id in MisconfigId::ALL {
        let found: usize = census.apps.iter().map(|a| a.count_of(id)).sum();
        assert_eq!(
            found, expected.expected[&id],
            "{id}: census diverged from generated ground truth at {apps} apps"
        );
    }
}

fn bench_corpus_scale(c: &mut Criterion) {
    assert_ground_truth(100);
    // Under `cargo test` the criterion shim runs each closure once as a
    // smoke test; cap the population there so the CI bench-smoke step stays
    // in the tens of seconds (the 100k and 1M arms run under `cargo bench`,
    // which is where the committed numbers come from).
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let sizes: &[usize] = if bench_mode {
        &SIZES
    } else if cfg!(debug_assertions) {
        &TEST_SIZES[..2]
    } else {
        &TEST_SIZES
    };
    let mut group = c.benchmark_group("corpus_scale");
    group.sample_size(10);
    for &apps in sizes {
        let generator = generator(apps);
        group.bench_function(&format!("generate/{apps}"), |b| {
            b.iter(|| {
                let mut findings = 0usize;
                for spec in generator.iter() {
                    findings += black_box(spec.plan.expected_local_findings());
                }
                findings
            })
        });
        group.bench_function(&format!("census/{apps}"), |b| {
            b.iter(|| {
                let census = pipeline()
                    .run_generated_compact(&generator)
                    .expect("generated corpus renders and installs");
                black_box(census.apps.len())
            })
        });
    }
    group.finish();
    if let Some(kb) = ij_bench::peak_rss_kb() {
        println!("peak RSS (VmHWM): {kb} kB across all arms");
    }
}

criterion_group!(benches, bench_corpus_scale);
criterion_main!(benches);
