//! CI memory-regression gate for the streaming flat-memory census.
//!
//! Runs the 25,000-app generated census in-process and asserts the process
//! peak RSS (`VmHWM`) stays under a calibrated ceiling. The measured peak
//! on the reference machine is ~65 MB; the materializing owned-string path
//! peaks at ~365 MB on the same population (see `BENCH_corpus.json`), so a
//! 200 MB ceiling gives ~3× headroom against measurement noise while still
//! failing loudly if the census ever goes back to materializing specs or
//! owned reports.
//!
//! Debug builds are skipped (unoptimized structures and the slow census
//! would make the bound meaningless and the test minutes-long); CI runs
//! this with `cargo test --release -p ij-bench --test rss_guard`.

use ij_datasets::{CensusPipeline, CorpusGenerator, CorpusProfile};

const APPS: usize = 25_000;
const CEILING_KB: u64 = 200_000;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "RSS bound is calibrated for release builds"
)]
fn streaming_census_peak_rss_stays_flat() {
    let generator = CorpusGenerator::new(
        CorpusProfile::named("baseline")
            .expect("baseline profile")
            .with_apps(APPS)
            .with_seed(7),
    );
    let census = CensusPipeline::builder()
        .seed(7)
        .build()
        .run_generated_compact(&generator)
        .expect("generated corpus renders and installs");
    assert_eq!(census.apps.len(), APPS);
    assert!(
        census.total_misconfigurations() > 0,
        "census produced nothing; the RSS bound would be vacuous"
    );
    let Some(peak_kb) = ij_bench::peak_rss_kb() else {
        eprintln!("VmHWM unavailable on this platform; skipping the bound");
        return;
    };
    assert!(
        peak_kb < CEILING_KB,
        "peak RSS {peak_kb} kB breached the {CEILING_KB} kB streaming ceiling \
         (~65 MB expected; the materializing path measures ~365 MB)"
    );
}
