//! The strongest property in the workspace: for *any* (bounded) injection
//! plan, the full pipeline — chart build, render, install, double-pass
//! probe, hybrid analysis — detects exactly the planned findings, class by
//! class. This is the precision/recall guarantee the real study could not
//! state for lack of ground truth (§6.3).

use ij_core::MisconfigId;
use ij_datasets::{analyze_one, build_app, AppSpec, CorpusOptions, NetpolSpec, Org, Plan};
use proptest::prelude::*;

fn arb_netpol() -> impl Strategy<Value = NetpolSpec> {
    prop_oneof![
        Just(NetpolSpec::Missing),
        Just(NetpolSpec::DefinedDisabled { loose: false }),
        Just(NetpolSpec::DefinedDisabled { loose: true }),
        Just(NetpolSpec::Enabled { loose: false }),
        Just(NetpolSpec::Enabled { loose: true }),
    ]
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        (0usize..=2, 0usize..=2, 0usize..=2),
        (0usize..=2, 0usize..=2, 0usize..=2),
        (0usize..=2, 0usize..=2, 0usize..=2, 0usize..=2),
        arb_netpol(),
        0usize..=2,
        (1u32..=3, 0usize..=2),
    )
        .prop_map(
            |(
                (m1, m2, m3),
                (m4a, m4b, m4c),
                (m5a, m5b, m5c, m5d),
                netpol,
                m7,
                (replicas, clean),
            )| Plan {
                m1,
                m2,
                m3,
                m4a,
                m4b,
                m4c,
                m5a,
                m5b,
                m5c,
                m5d,
                netpol,
                m7,
                server_replicas: replicas,
                clean_components: clean,
                m4star_tokens: vec![],
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_detects_exactly_the_plan(plan in arb_plan(), seed in 0u64..1000) {
        let spec = AppSpec::new("prop-app", Org::Bitnami, "0.0.1", plan.clone());
        let built = build_app(&spec);
        let opts = CorpusOptions { seed, ..Default::default() };
        let analysis = analyze_one(&built, &opts).expect("corpus app analyzes");
        for id in MisconfigId::ALL {
            let measured = analysis.findings.iter().filter(|f| f.id == id).count();
            prop_assert_eq!(
                measured,
                plan.expected_of(id),
                "{}: plan {:?}\nfindings {:#?}",
                id,
                plan,
                analysis.findings
            );
        }
    }
}
