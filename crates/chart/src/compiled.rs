//! Compile-once chart rendering.
//!
//! [`Chart::render`] is a parse-per-call API: every call re-lexes and
//! re-parses each template file of the chart and its dependencies. That is
//! the right trade-off for a one-shot `ij render`, but the census pipeline
//! renders hundreds of charts (and renders some of them several times:
//! census, policy-impact, repeated studies). [`CompiledChart`] front-loads
//! all of that work:
//!
//! * every template file — including dependency charts — is lexed and
//!   parsed exactly **once**, at compile time;
//! * files without template actions (the common case for generated corpus
//!   charts) are rendered and decoded to typed objects at compile time;
//!   rendering them again is a clone plus a namespace stamp;
//! * per render, the root dot (`.Values`/`.Release`/`.Chart`) is built once
//!   per chart level and the shared partial set is borrowed — no partial
//!   body or values subtree is ever deep-cloned.
//!
//! Output is byte-identical to [`Chart::render`] (property-tested against
//! random corpus charts in `ij-datasets`). The one behavioural difference
//! is error timing: [`Chart::compile`] surfaces template syntax errors and
//! static-file decode errors eagerly — even for files of a dependency whose
//! enable condition is off — where the parse-per-call path only reports
//! them when the file is actually rendered.
//!
//! The handle is `Arc`-backed: clones share the compiled representation and
//! are cheap enough to cache per app (see `BuiltApp::compiled` in
//! `ij-datasets`).

use crate::chart::{
    decode_rendered, merge_values, stamp_namespace, Chart, Release, RenderedRelease,
};
use crate::error::Result;
use crate::template::{
    build_root, parse_template, render_file, shared_defines, Node, ParsedTemplate,
};
use ij_model::Object;
use ij_yaml::{Map, Value};
use std::sync::Arc;

/// A chart compiled for render-many workloads: cached template ASTs, a
/// pre-decoded object set for action-free files, and per-release contexts
/// built exactly once per chart level. Build via [`Chart::compile`]; clone
/// freely (clones share the compiled representation).
#[derive(Debug, Clone)]
pub struct CompiledChart {
    root: Arc<CompiledLevel>,
}

/// One chart level (the root chart or a dependency): its identity, default
/// values, compiled template files, and compiled dependencies.
#[derive(Debug)]
struct CompiledLevel {
    name: String,
    version: String,
    values: Value,
    files: Vec<CompiledFile>,
    deps: Vec<CompiledDep>,
}

#[derive(Debug)]
struct CompiledDep {
    /// The dependency chart's name (also its values scope in the parent).
    chart_name: String,
    /// Dotted enable condition into the parent's merged values.
    condition: Option<String>,
    level: CompiledLevel,
}

#[derive(Debug)]
struct CompiledFile {
    name: String,
    parsed: ParsedTemplate,
    plan: RenderPlan,
}

/// What rendering a compiled file amounts to.
#[derive(Debug)]
enum RenderPlan {
    /// Underscore file: contributes partials, renders nothing.
    Partial,
    /// Action-free file whose output is all whitespace: renders nothing.
    Blank,
    /// Action-free file: output never depends on the release, so the typed
    /// objects are decoded once at compile time and cloned per render.
    Static(Vec<Object>),
    /// File with template actions: evaluated per render (the cached AST is
    /// replayed; only evaluation happens).
    Dynamic,
}

impl CompiledChart {
    /// Compiles a chart: parses every template file (including
    /// dependencies) once and pre-decodes action-free files.
    ///
    /// ```
    /// use ij_chart::{Chart, CompiledChart, Release};
    ///
    /// let chart = Chart::builder("web")
    ///     .values_yaml("replicas: 2\n").unwrap()
    ///     .template("deploy.yaml", "\
    /// apiVersion: apps/v1
    /// kind: Deployment
    /// metadata:
    ///   name: {{ .Release.Name }}-web
    /// spec:
    ///   replicas: {{ .Values.replicas }}
    ///   selector:
    ///     matchLabels:
    ///       app: web
    ///   template:
    ///     metadata:
    ///       labels:
    ///         app: web
    ///     spec:
    ///       containers:
    ///         - name: web
    ///           image: acme/web
    ///           ports:
    ///             - containerPort: 8080
    /// ")
    ///     .build();
    ///
    /// // Parse once, render many: every render replays the cached ASTs.
    /// let compiled = CompiledChart::compile(&chart).unwrap();
    /// let fast = compiled.render(&Release::new("r1", "default")).unwrap();
    ///
    /// // Byte-identical to the parse-per-call oracle.
    /// let oracle = chart.render(&Release::new("r1", "default")).unwrap();
    /// assert_eq!(format!("{fast:?}"), format!("{oracle:?}"));
    /// ```
    pub fn compile(chart: &Chart) -> Result<CompiledChart> {
        Ok(CompiledChart {
            root: Arc::new(compile_level(chart)?),
        })
    }

    /// Root chart name.
    pub fn name(&self) -> &str {
        &self.root.name
    }

    /// Root chart version.
    pub fn version(&self) -> &str {
        &self.root.version
    }

    /// An identity token for the compiled representation: equal for two
    /// handles iff they share the same compilation (clones do; compiling
    /// the same chart twice does not). Useful as a render-memoization key —
    /// keep a handle alive alongside the key, since the token is only
    /// meaningful while the compilation it names exists.
    pub fn instance_key(&self) -> usize {
        Arc::as_ptr(&self.root) as usize
    }

    /// Renders the chart (and enabled dependencies) into typed objects.
    /// Byte-identical to [`Chart::render`] for the same chart and release.
    pub fn render(&self, release: &Release) -> Result<RenderedRelease> {
        let merged = merge_values(&self.root.values, &release.overrides)?;
        let mut objects = Vec::new();
        self.root.render_into(release, merged, &mut objects)?;
        Ok(RenderedRelease {
            release_name: release.name.clone(),
            namespace: release.namespace.clone(),
            chart_name: self.root.name.clone(),
            objects,
        })
    }
}

fn compile_level(chart: &Chart) -> Result<CompiledLevel> {
    let mut files = Vec::with_capacity(chart.templates.len());
    for (tpl_name, source) in &chart.templates {
        let parsed = parse_template(tpl_name, source)?;
        let plan = if tpl_name.starts_with('_') {
            RenderPlan::Partial
        } else if parsed.nodes.iter().all(|n| matches!(n, Node::Text(_))) {
            // No actions anywhere: the output is the concatenated text,
            // independent of values and release — decode it now. Stamping
            // with the "default" namespace is the identity, so the cached
            // objects carry their manifest namespaces and the release
            // namespace is stamped per render.
            let rendered: String = parsed
                .nodes
                .iter()
                .map(|n| match n {
                    Node::Text(t) => t.as_str(),
                    _ => unreachable!("checked all-text above"),
                })
                .collect();
            if rendered.trim().is_empty() {
                RenderPlan::Blank
            } else {
                let mut objects = Vec::new();
                decode_rendered(tpl_name, &rendered, "default", &mut objects)?;
                RenderPlan::Static(objects)
            }
        } else {
            RenderPlan::Dynamic
        };
        files.push(CompiledFile {
            name: tpl_name.clone(),
            parsed,
            plan,
        });
    }
    let mut deps = Vec::with_capacity(chart.dependencies.len());
    for dep in &chart.dependencies {
        deps.push(CompiledDep {
            chart_name: dep.chart.name.clone(),
            condition: dep.condition.clone(),
            level: compile_level(&dep.chart)?,
        });
    }
    Ok(CompiledLevel {
        name: chart.name.clone(),
        version: chart.version.clone(),
        values: chart.values.clone(),
        files,
        deps,
    })
}

impl CompiledLevel {
    /// Replays this level's cached templates for one release, appending
    /// objects, then recurses into enabled dependencies — the compiled
    /// mirror of `Chart::render_into`. `values` is owned: it moves into the
    /// root dot instead of being cloned per file.
    fn render_into(
        &self,
        release: &Release,
        values: Value,
        objects: &mut Vec<Object>,
    ) -> Result<()> {
        let shared = shared_defines(self.files.iter().map(|f| &f.parsed));
        let root = build_root(
            values,
            &release.name,
            &release.namespace,
            &self.name,
            &self.version,
        );
        for file in &self.files {
            match &file.plan {
                RenderPlan::Partial | RenderPlan::Blank => {}
                RenderPlan::Static(objs) => {
                    for obj in objs {
                        let mut obj = obj.clone();
                        stamp_namespace(&mut obj, &release.namespace);
                        objects.push(obj);
                    }
                }
                RenderPlan::Dynamic => {
                    let rendered = render_file(&file.name, &file.parsed, &shared, &root)?;
                    decode_rendered(&file.name, &rendered, &release.namespace, objects)?;
                }
            }
        }
        let values = root.get("Values").expect("root always carries Values");
        for dep in &self.deps {
            if let Some(cond) = &dep.condition {
                let path: Vec<&str> = cond.split('.').collect();
                let enabled = values.path(&path).map(Value::truthy).unwrap_or(false);
                if !enabled {
                    continue;
                }
            }
            // The subchart sees its own defaults overlaid with the parent's
            // values scoped under the subchart's name.
            let scoped = values
                .get(&dep.chart_name)
                .cloned()
                .unwrap_or(Value::Map(Map::new()));
            let sub_values = merge_values(&dep.level.values, &scoped)?;
            dep.level.render_into(release, sub_values, objects)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Dependency;

    fn chart_with_everything() -> Chart {
        let db = Chart::builder("db")
            .values_yaml("port: 5432\nenabled: true\n")
            .unwrap()
            .template(
                "svc.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-db
spec:
  selector:
    app: db
  ports:
    - port: {{ .Values.port }}
",
            )
            .build();
        Chart::builder("app")
            .version("2.4.8")
            .values_yaml("db:\n  enabled: true\n  port: 6543\nreplicas: 3\n")
            .unwrap()
            .template(
                "_helpers.tpl",
                "{{ define \"app.labels\" }}app: {{ .Chart.Name }}{{ end }}",
            )
            .template(
                "static.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: static-svc
spec:
  selector:
    app: app
  ports:
    - port: 80
",
            )
            .template(
                "dynamic.yaml",
                "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-app
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:{{ include \"app.labels\" . | nindent 6 }}
  template:
    metadata:
      labels:{{ include \"app.labels\" . | nindent 8 }}
    spec:
      containers:
        - name: app
          image: img/app
",
            )
            .template("blank.yaml", "{{ if .Values.never }}kind: Pod\n{{ end }}")
            .dependency_if(db, "db.enabled")
            .build()
    }

    fn bytes(r: &RenderedRelease) -> String {
        format!("{r:#?}")
    }

    #[test]
    fn compiled_render_matches_per_call_render() {
        let chart = chart_with_everything();
        let compiled = chart.compile().expect("compiles");
        for release in [
            Release::new("demo", "apps"),
            Release::new("other", "default"),
            Release::new("off", "apps")
                .with_values_yaml("db:\n  enabled: false\nreplicas: 7\n")
                .unwrap(),
        ] {
            let naive = chart.render(&release).expect("per-call render");
            let replay = compiled.render(&release).expect("compiled render");
            assert_eq!(bytes(&naive), bytes(&replay), "release {}", release.name);
            // Replays are stable.
            let again = compiled.render(&release).expect("second compiled render");
            assert_eq!(bytes(&replay), bytes(&again));
        }
    }

    #[test]
    fn static_files_are_predecoded_and_namespace_stamped() {
        let chart = chart_with_everything();
        let compiled = chart.compile().expect("compiles");
        let r = compiled
            .render(&Release::new("r", "prod"))
            .expect("renders");
        let svc = r
            .objects
            .iter()
            .find(|o| o.meta().name == "static-svc")
            .expect("static service rendered");
        assert_eq!(svc.meta().namespace, "prod", "release namespace stamped");
    }

    #[test]
    fn clones_share_the_compiled_representation() {
        let compiled = chart_with_everything().compile().expect("compiles");
        let clone = compiled.clone();
        assert_eq!(compiled.instance_key(), clone.instance_key());
        let recompiled = chart_with_everything().compile().expect("compiles");
        assert_ne!(compiled.instance_key(), recompiled.instance_key());
    }

    #[test]
    fn compile_surfaces_template_errors_eagerly() {
        let chart = Chart::builder("bad")
            .template("broken.yaml", "{{ if .Values.x }}no end")
            .build();
        assert!(chart.compile().is_err());
    }

    #[test]
    fn compile_surfaces_disabled_dependency_errors_eagerly() {
        // The parse-per-call path only parses a dependency when its
        // condition enables it; the compiled path parses everything up
        // front — the documented (stricter) difference.
        let bad_dep = Chart::builder("dep")
            .template("broken.yaml", "{{ end }}")
            .build();
        let chart = Chart {
            name: "parent".into(),
            version: "1.0.0".into(),
            description: String::new(),
            values: ij_yaml::parse("dep:\n  enabled: false\n").unwrap(),
            templates: Vec::new(),
            dependencies: vec![Dependency {
                chart: bad_dep,
                condition: Some("dep.enabled".into()),
            }],
        };
        assert!(chart.render(&Release::new("r", "default")).is_ok());
        assert!(chart.compile().is_err());
    }

    #[test]
    fn metadata_accessors() {
        let compiled = chart_with_everything().compile().expect("compiles");
        assert_eq!(compiled.name(), "app");
        assert_eq!(compiled.version(), "2.4.8");
    }
}
