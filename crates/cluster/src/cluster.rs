//! The cluster facade: API server, controllers, scheduler, data plane.

use crate::admission::{AdmissionController, AdmissionOutcome, AdmissionReview};
use crate::behavior::{BehaviorRegistry, ContainerBehavior, PortSpec};
use crate::dirty::{DirtyEntry, DirtyLog, DirtyScope, DirtySummary, DIRTY_LOG_CAP};
use crate::index::PolicyIndex;
use crate::netpol::ConnectionVerdict;
use crate::node::Node;
use crossbeam::channel::{unbounded, Receiver, Sender};
use ij_chart::RenderedRelease;
use ij_model::{
    EndpointAddress, Endpoints, Labels, NetworkPolicy, Object, Pod, Protocol, Service, TargetPort,
    Workload, WorkloadKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Seed for all randomness (ephemeral port draws).
    pub seed: u64,
    /// Container behaviour registry.
    pub behaviors: BehaviorRegistry,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 3,
            seed: 42,
            behaviors: BehaviorRegistry::new(),
        }
    }
}

/// A socket held open by a container, as the ground truth the probe observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenSocket {
    /// Port number.
    pub port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Bound to the loopback adapter only (unreachable from the cluster).
    pub loopback_only: bool,
    /// Drawn from the ephemeral range at container start.
    pub ephemeral: bool,
    /// Name of the container holding the socket.
    pub container: String,
}

/// A scheduled, started pod.
#[derive(Debug, Clone)]
pub struct RunningPod {
    /// The pod object (labels, spec, …).
    pub pod: Pod,
    /// Node the pod runs on.
    pub node: String,
    /// Pod IP — a flat-network address, or the node IP for hostNetwork pods.
    pub ip: String,
    /// Sockets currently open inside the pod's network namespace.
    pub sockets: Vec<OpenSocket>,
    /// Qualified name of the owning workload, if any.
    pub owner: Option<String>,
}

impl RunningPod {
    /// Qualified `namespace/name`.
    pub fn qualified_name(&self) -> String {
        self.pod.meta.qualified_name()
    }

    /// True when a cluster-reachable socket is open on `(port, protocol)`.
    pub fn listens_on(&self, port: u16, protocol: Protocol) -> bool {
        self.sockets
            .iter()
            .any(|s| s.port == port && s.protocol == protocol && !s.loopback_only)
    }
}

/// Why an install failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// An admission controller rejected an object.
    Denied {
        /// Controller that rejected.
        controller: String,
        /// Rejection reason.
        reason: String,
        /// Qualified name of the rejected object.
        object: String,
    },
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Denied {
                controller,
                reason,
                object,
            } => {
                write!(
                    f,
                    "admission controller `{controller}` denied `{object}`: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// A change notification delivered to [`Cluster::watch`] subscribers —
/// the equivalent of an API-server watch stream, which continuous-audit
/// tooling uses to react to cluster changes instead of polling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchEvent {
    /// An object passed admission and was persisted.
    Applied {
        /// Object kind.
        kind: String,
        /// Qualified `namespace/name`.
        name: String,
    },
    /// An admission controller rejected an object.
    Denied {
        /// Qualified name of the rejected object.
        name: String,
        /// Rejection reason.
        reason: String,
    },
    /// A pod was scheduled and started.
    PodStarted {
        /// Qualified pod name.
        name: String,
        /// Node it landed on.
        node: String,
    },
    /// A pod could not be scheduled (no worker nodes) and stays Pending.
    PodPending {
        /// Qualified pod name.
        name: String,
    },
    /// A running pod was reaped (scale-down or its defining object removed).
    PodReaped {
        /// Qualified pod name.
        name: String,
    },
    /// All pods were restarted (ephemeral ports re-drawn).
    PodsRestarted,
    /// The cluster was wiped.
    Reset,
}

/// Result of a simulated connection attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectOutcome {
    /// TCP handshake (or UDP delivery) succeeded.
    Connected,
    /// Policy allowed the packet but nothing listens there.
    Refused,
    /// Dropped by the destination's ingress policy.
    DeniedIngress,
    /// Dropped by the source's egress policy.
    DeniedEgress,
}

/// Annotation key the installer stamps onto release objects.
pub const RELEASE_ANNOTATION: &str = "inside-job/release";

/// The cluster simulator.
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Node>,
    objects: Vec<Object>,
    pods: Vec<RunningPod>,
    admission: Vec<Box<dyn AdmissionController>>,
    rng: StdRng,
    next_pod_ip: u32,
    cluster_ips: HashMap<String, String>,
    next_cluster_ip: u32,
    events: Vec<String>,
    watchers: Vec<Sender<WatchEvent>>,
    /// Bumped on every mutation of objects or pods; the policy-index cache
    /// key.
    generation: u64,
    /// Bounded ring of per-generation dirty entries backing
    /// [`Cluster::dirty_since`].
    dirty: DirtyLog,
    /// Cached compiled [`PolicyIndex`] for [`Cluster::policy_index`],
    /// tagged with the generation it was built at.
    index_cache: Mutex<Option<(u64, Arc<PolicyIndex>)>>,
}

impl Cluster {
    /// Boots a cluster. A zero-node config is honoured: pods stay Pending
    /// until nodes exist, they never crash the control loop.
    pub fn new(config: ClusterConfig) -> Self {
        let nodes = (0..config.nodes).map(Node::new).collect();
        let rng = StdRng::seed_from_u64(config.seed);
        Cluster {
            config,
            nodes,
            objects: Vec::new(),
            pods: Vec::new(),
            admission: Vec::new(),
            rng,
            next_pod_ip: 1,
            cluster_ips: HashMap::new(),
            next_cluster_ip: 1,
            events: Vec::new(),
            watchers: Vec::new(),
            generation: 0,
            dirty: DirtyLog::new(0, DIRTY_LOG_CAP),
            index_cache: Mutex::new(None),
        }
    }

    /// Boots a default three-node cluster with the given behaviour registry.
    pub fn with_behaviors(behaviors: BehaviorRegistry) -> Self {
        Cluster::new(ClusterConfig {
            behaviors,
            ..Default::default()
        })
    }

    /// Installs an admission controller at the end of the chain.
    pub fn push_admission(&mut self, controller: Box<dyn AdmissionController>) {
        self.admission.push(controller);
    }

    /// Worker nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Event log (admission denials, pod starts, …).
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Subscribes to change notifications (API-server watch semantics).
    /// Dropped receivers are pruned automatically on the next event.
    pub fn watch(&mut self) -> Receiver<WatchEvent> {
        let (tx, rx) = unbounded();
        self.watchers.push(tx);
        rx
    }

    fn notify(&mut self, event: WatchEvent) {
        self.watchers.retain(|w| w.send(event.clone()).is_ok());
    }

    /// Marks the cluster mutated: bumps the generation (so the next
    /// [`Cluster::policy_index`] call recompiles) and records what the
    /// mutation touched for [`Cluster::dirty_since`].
    fn touch(&mut self, entry: DirtyEntry) {
        self.generation = self.generation.wrapping_add(1);
        self.dirty.record(entry);
    }

    /// The current mutation generation. Any change to objects or pods bumps
    /// it; equal generations guarantee an identical policy index.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Summarizes everything that changed since `cursor` — a generation
    /// previously returned by [`Cluster::generation`]. The backing log is a
    /// bounded ring ([`DIRTY_LOG_CAP`] entries): cursors that fell off its
    /// horizon (or predate a [`Cluster::reset`]) yield a conservative
    /// everything-dirty summary, so incremental consumers degrade to a full
    /// recompute instead of ever missing a change.
    pub fn dirty_since(&self, cursor: u64) -> DirtySummary {
        self.dirty.summary_since(cursor, self.generation)
    }

    /// Registers (or replaces) a container behaviour at runtime. Serve-mode
    /// tenants register application behaviours as releases come and go;
    /// already-running pods keep their sockets until restarted.
    pub fn register_behavior(&mut self, image: impl Into<String>, behavior: ContainerBehavior) {
        self.config.behaviors.register(image, behavior);
    }

    /// The compiled policy index for the cluster's current state.
    ///
    /// The index is built on first use and cached until the next mutation
    /// (generation bump); repeated probes — the census hot path — share one
    /// compilation. The returned [`Arc`] stays valid (as a snapshot) even
    /// if the cluster mutates afterwards.
    pub fn policy_index(&self) -> Arc<PolicyIndex> {
        let mut cache = self.index_cache.lock().expect("index cache poisoned");
        if let Some((generation, index)) = &*cache {
            if *generation == self.generation {
                return Arc::clone(index);
            }
        }
        let index = Arc::new(PolicyIndex::build(self));
        *cache = Some((self.generation, Arc::clone(&index)));
        index
    }

    /// All persisted objects.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// Running pods.
    pub fn pods(&self) -> &[RunningPod] {
        &self.pods
    }

    /// Looks up a running pod by qualified name.
    pub fn pod(&self, qualified: &str) -> Option<&RunningPod> {
        self.pods.iter().find(|p| p.qualified_name() == qualified)
    }

    /// Persisted services.
    pub fn services(&self) -> impl Iterator<Item = &Service> {
        self.objects.iter().filter_map(|o| match o {
            Object::Service(s) => Some(s),
            _ => None,
        })
    }

    /// Persisted network policies.
    pub fn network_policies(&self) -> Vec<&NetworkPolicy> {
        self.objects
            .iter()
            .filter_map(|o| match o {
                Object::NetworkPolicy(n) => Some(n),
                _ => None,
            })
            .collect()
    }

    /// Persisted workloads.
    pub fn workloads(&self) -> impl Iterator<Item = &Workload> {
        self.objects.iter().filter_map(|o| match o {
            Object::Workload(w) => Some(w),
            _ => None,
        })
    }

    /// Namespace labels declared via Namespace objects.
    pub fn namespace_labels(&self) -> Vec<(String, Labels)> {
        self.objects
            .iter()
            .filter_map(|o| match o {
                Object::Namespace(m) => Some((m.name.clone(), m.labels.clone())),
                _ => None,
            })
            .collect()
    }

    /// Applies one object through the admission chain.
    pub fn apply(&mut self, object: Object) -> Result<Vec<String>, InstallError> {
        let mut warnings = Vec::new();
        for controller in &self.admission {
            let review = AdmissionReview {
                object: &object,
                existing: &self.objects,
            };
            match controller.review(&review) {
                AdmissionOutcome::Allow => {}
                AdmissionOutcome::Warn(mut w) => warnings.append(&mut w),
                AdmissionOutcome::Deny(reason) => {
                    let err = InstallError::Denied {
                        controller: controller.name().to_string(),
                        reason: reason.clone(),
                        object: object.qualified_name(),
                    };
                    self.events
                        .push(format!("deny {}: {reason}", object.qualified_name()));
                    self.notify(WatchEvent::Denied {
                        name: object.qualified_name(),
                        reason,
                    });
                    return Err(err);
                }
            }
        }
        self.events.push(format!(
            "apply {} {}",
            object.kind(),
            object.qualified_name()
        ));
        self.notify(WatchEvent::Applied {
            kind: object.kind().to_string(),
            name: object.qualified_name(),
        });
        // Services get a virtual IP at creation.
        if let Object::Service(s) = &object {
            if !s.is_headless() {
                let ip = format!(
                    "10.96.{}.{}",
                    self.next_cluster_ip / 254,
                    self.next_cluster_ip % 254 + 1
                );
                self.next_cluster_ip += 1;
                self.cluster_ips.insert(s.meta.qualified_name(), ip);
            }
        }
        let scope = match object.meta().annotations.get(RELEASE_ANNOTATION) {
            Some(release) => DirtyScope::App(release.clone()),
            None => DirtyScope::Unattributed,
        };
        // Policies change verdicts and per-app policy rules, but not the
        // labelled object sets cluster-wide label analysis consumes.
        let labels = !matches!(object, Object::NetworkPolicy(_));
        self.objects.push(object);
        self.touch(DirtyEntry {
            scope,
            labels,
            pods: false,
        });
        Ok(warnings)
    }

    /// Installs a rendered release: applies every object (stamped with a
    /// release annotation so [`Cluster::uninstall`] can find them later),
    /// then reconciles. On an admission denial the release's
    /// already-applied objects are rolled back (Helm-style atomic install).
    pub fn install(&mut self, release: &RenderedRelease) -> Result<Vec<String>, InstallError> {
        self.install_objects(&release.release_name, &release.objects)
    }

    /// [`install`](Self::install) from a borrowed object slice — the census
    /// workers render into a reusable scratch vec and install it directly,
    /// without wrapping the slice in a `RenderedRelease`.
    pub fn install_objects(
        &mut self,
        release_name: &str,
        objects: &[Object],
    ) -> Result<Vec<String>, InstallError> {
        let checkpoint = self.objects.len();
        let mut warnings = Vec::new();
        for obj in objects {
            let mut obj = obj.clone();
            obj.meta_mut()
                .annotations
                .insert(RELEASE_ANNOTATION.to_string(), release_name.to_string());
            match self.apply(obj) {
                Ok(mut w) => warnings.append(&mut w),
                Err(e) => {
                    // Roll back the ClusterIPs of services applied before
                    // the denial along with the objects themselves.
                    for rolled_back in &self.objects[checkpoint..] {
                        if let Object::Service(s) = rolled_back {
                            self.cluster_ips.remove(&s.meta.qualified_name());
                        }
                    }
                    self.objects.truncate(checkpoint);
                    self.touch(DirtyEntry::app(release_name, true, false));
                    return Err(e);
                }
            }
        }
        self.reconcile();
        Ok(warnings)
    }

    /// Uninstalls a release: removes every object stamped with its name,
    /// reaps the pods those objects owned and releases the ClusterIPs of
    /// its services. Other releases are untouched.
    pub fn uninstall(&mut self, release_name: &str) {
        let mut removed_services: Vec<String> = Vec::new();
        self.objects.retain(|o| {
            let keep = o
                .meta()
                .annotations
                .get(RELEASE_ANNOTATION)
                .map(String::as_str)
                != Some(release_name);
            if !keep {
                if let Object::Service(s) = o {
                    removed_services.push(s.meta.qualified_name());
                }
            }
            keep
        });
        for service in &removed_services {
            self.cluster_ips.remove(service);
        }
        // Reap pods whose defining object (owner workload or the bare pod
        // itself) is gone.
        let existing: HashSet<String> = self.objects.iter().map(|o| o.qualified_name()).collect();
        self.pods.retain(|rp| {
            let definer = rp.owner.clone().unwrap_or_else(|| rp.qualified_name());
            existing.contains(&definer)
        });
        self.events.push(format!("uninstall {release_name}"));
        self.touch(DirtyEntry::app(release_name, true, true));
    }

    /// Removes everything — the paper's per-application fresh cluster.
    pub fn reset(&mut self) {
        self.objects.clear();
        self.pods.clear();
        self.cluster_ips.clear();
        self.events.push("reset".to_string());
        self.notify(WatchEvent::Reset);
        self.touch(DirtyEntry {
            scope: DirtyScope::AllApps,
            labels: true,
            pods: true,
        });
        // Pre-reset cursors must not see an incremental path at all.
        self.dirty.forget(self.generation);
    }

    /// Runs the controller loop: expands workloads into pods, schedules and
    /// starts anything pending, then reaps running pods no longer desired
    /// (scale-downs, replaced templates). Idempotent.
    pub fn reconcile(&mut self) {
        let mut desired: Vec<(Option<String>, Pod)> = Vec::new();
        let workloads: Vec<Workload> = self.workloads().cloned().collect();
        for w in &workloads {
            desired.extend(self.expand_workload(w));
        }
        let bare: Vec<Pod> = self
            .objects
            .iter()
            .filter_map(|o| match o {
                Object::Pod(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        desired.extend(bare.into_iter().map(|p| (None, p)));

        let desired_names: HashSet<String> = desired
            .iter()
            .map(|(_, p)| p.meta.qualified_name())
            .collect();
        let running: HashSet<String> = self.pods.iter().map(|p| p.qualified_name()).collect();
        for (owner, pod) in desired {
            if running.contains(&pod.meta.qualified_name()) {
                continue;
            }
            self.start_pod(pod, owner);
        }

        // Scale-down: a workload now desires fewer pods than are running.
        let stale: Vec<(String, Option<String>)> = self
            .pods
            .iter()
            .filter(|rp| !desired_names.contains(&rp.qualified_name()))
            .map(|rp| (rp.qualified_name(), self.release_of(rp)))
            .collect();
        if !stale.is_empty() {
            self.pods
                .retain(|rp| desired_names.contains(&rp.qualified_name()));
            for (name, release) in stale {
                self.events.push(format!("reap {name}"));
                self.notify(WatchEvent::PodReaped { name });
                self.touch(DirtyEntry {
                    scope: release.map_or(DirtyScope::Unattributed, DirtyScope::App),
                    labels: false,
                    pods: true,
                });
            }
        }
    }

    /// The release a running pod belongs to, resolved through its defining
    /// object (owner workload, or the bare pod object itself).
    fn release_of(&self, rp: &RunningPod) -> Option<String> {
        let definer = rp.owner.clone().unwrap_or_else(|| rp.qualified_name());
        self.objects
            .iter()
            .find(|o| o.qualified_name() == definer)
            .and_then(|o| o.meta().annotations.get(RELEASE_ANNOTATION))
            .or_else(|| rp.pod.meta.annotations.get(RELEASE_ANNOTATION))
            .cloned()
    }

    /// Updates a workload's replica count in place (`kubectl scale`),
    /// returning false when no workload with that qualified name exists.
    /// Call [`Cluster::reconcile`] to realize the change — spawn new pods
    /// or reap excess ones.
    pub fn scale_workload(&mut self, qualified: &str, replicas: u32) -> bool {
        let mut release = None;
        let mut found = false;
        for o in &mut self.objects {
            if let Object::Workload(w) = o {
                if w.meta.qualified_name() == qualified {
                    w.replicas = replicas;
                    release = w.meta.annotations.get(RELEASE_ANNOTATION).cloned();
                    found = true;
                    break;
                }
            }
        }
        if found {
            self.events.push(format!("scale {qualified} to {replicas}"));
            self.touch(DirtyEntry {
                scope: release.map_or(DirtyScope::Unattributed, DirtyScope::App),
                labels: false,
                pods: true,
            });
        }
        found
    }

    /// Restarts every pod: containers re-draw their ephemeral ports. This is
    /// how the probe's second pass observes M2 (§4.2.2).
    pub fn restart_pods(&mut self) {
        let mut pods = std::mem::take(&mut self.pods);
        for rp in &mut pods {
            rp.sockets = self.open_sockets_for(&rp.pod);
            self.events.push(format!("restart {}", rp.qualified_name()));
        }
        self.pods = pods;
        self.notify(WatchEvent::PodsRestarted);
        self.touch(DirtyEntry {
            scope: DirtyScope::AllApps,
            labels: false,
            pods: true,
        });
    }

    fn expand_workload(&self, w: &Workload) -> Vec<(Option<String>, Pod)> {
        let owner = w.meta.qualified_name();
        let mut out = Vec::new();
        let make_pod = |name: String| {
            let meta = ij_model::ObjectMeta {
                name,
                namespace: w.meta.namespace.clone(),
                labels: w.template.labels.clone(),
                annotations: Default::default(),
            };
            Pod::new(meta, w.template.spec.clone())
        };
        match w.kind {
            WorkloadKind::DaemonSet => {
                for node in &self.nodes {
                    out.push((
                        Some(owner.clone()),
                        make_pod(format!("{}-{}", w.meta.name, node.name)),
                    ));
                }
            }
            _ => {
                // `replicas: 0` is a deliberate scale-to-zero, not a typo:
                // desire no pods so reconcile reaps any still running.
                for i in 0..w.replicas {
                    out.push((
                        Some(owner.clone()),
                        make_pod(format!("{}-{}", w.meta.name, i)),
                    ));
                }
            }
        }
        out
    }

    fn start_pod(&mut self, mut pod: Pod, owner: Option<String>) {
        // No schedulable node: the pod stays Pending (Kubernetes semantics)
        // instead of crashing the control loop; the next reconcile retries.
        if self.nodes.is_empty() {
            let name = pod.meta.qualified_name();
            self.events
                .push(format!("pending {name}: no schedulable nodes"));
            self.notify(WatchEvent::PodPending { name });
            return;
        }
        // Scheduler: round-robin by current pod count, honouring nodeName.
        let node_idx = self.pods.len() % self.nodes.len();
        let node = match &pod.spec.node_name {
            Some(n) => self
                .nodes
                .iter()
                .find(|node| &node.name == n)
                .unwrap_or(&self.nodes[node_idx]),
            None => &self.nodes[node_idx],
        };
        let node_name = node.name.clone();
        let node_ip = node.ip.clone();
        // IPAM: flat pod network, or the node IP under hostNetwork.
        let ip = if pod.spec.host_network {
            node_ip
        } else {
            let n = self.next_pod_ip;
            self.next_pod_ip += 1;
            format!("10.244.{}.{}", n / 254, n % 254 + 1)
        };
        pod.spec.node_name = Some(node_name.clone());
        pod.status.pod_ip = Some(ip.clone());
        pod.status.phase = "Running".to_string();
        let sockets = self.open_sockets_for(&pod);
        self.events.push(format!(
            "start {} on {node_name} ip={ip} sockets={}",
            pod.meta.qualified_name(),
            sockets.len()
        ));
        self.notify(WatchEvent::PodStarted {
            name: pod.meta.qualified_name(),
            node: node_name.clone(),
        });
        let release = owner
            .as_deref()
            .and_then(|o| {
                self.objects
                    .iter()
                    .find(|obj| obj.qualified_name() == o)
                    .and_then(|obj| obj.meta().annotations.get(RELEASE_ANNOTATION))
            })
            .or_else(|| pod.meta.annotations.get(RELEASE_ANNOTATION))
            .cloned();
        self.pods.push(RunningPod {
            pod,
            node: node_name,
            ip,
            sockets,
            owner,
        });
        self.touch(DirtyEntry {
            scope: release.map_or(DirtyScope::Unattributed, DirtyScope::App),
            labels: false,
            pods: true,
        });
    }

    /// Instantiates the behaviour model of every container in a pod.
    fn open_sockets_for(&mut self, pod: &Pod) -> Vec<OpenSocket> {
        let mut sockets = Vec::new();
        let mut used: HashSet<(u16, Protocol)> = HashSet::new();
        for container in &pod.spec.containers {
            let behavior = self.config.behaviors.resolve(&container.image).clone();
            for spec in behavior.listeners_for(container) {
                let port = match &spec.port {
                    PortSpec::Static(p) => Some(*p),
                    PortSpec::Ephemeral => {
                        // Draw until free within this pod (ranges are huge, so
                        // this terminates immediately in practice).
                        let mut p = self.rng.gen_range(32768..=60999u16);
                        while used.contains(&(p, spec.protocol)) {
                            p = self.rng.gen_range(32768..=60999u16);
                        }
                        Some(p)
                    }
                    PortSpec::FromEnv { var, default } => container
                        .env_value(var)
                        .and_then(|v| v.parse::<u16>().ok())
                        .or(*default),
                };
                let Some(port) = port else { continue };
                if !used.insert((port, spec.protocol)) {
                    continue; // two containers racing for one port: first wins
                }
                sockets.push(OpenSocket {
                    port,
                    protocol: spec.protocol,
                    loopback_only: spec.loopback_only,
                    ephemeral: matches!(spec.port, PortSpec::Ephemeral),
                    container: container.name.clone(),
                });
            }
        }
        sockets.sort_by_key(|s| (s.port, s.protocol));
        sockets
    }

    /// Simulates a connection from one pod to another. Verdicts come from
    /// the cached [`PolicyIndex`]; the naive
    /// [`PolicyEngine`](crate::PolicyEngine) remains available as the
    /// reference oracle for tests.
    pub fn connect(
        &self,
        src: &str,
        dst: &str,
        port: u16,
        protocol: Protocol,
    ) -> Option<ConnectOutcome> {
        let index = self.policy_index();
        let src_idx = index.pod_index(src)?;
        let dst_idx = index.pod_index(dst)?;
        let dst = &self.pods[dst_idx];
        Some(match index.verdict(src_idx, dst_idx, port, protocol) {
            ConnectionVerdict::DeniedIngress => ConnectOutcome::DeniedIngress,
            ConnectionVerdict::DeniedEgress => ConnectOutcome::DeniedEgress,
            ConnectionVerdict::Allowed(_) => {
                if dst.listens_on(port, protocol) {
                    ConnectOutcome::Connected
                } else {
                    ConnectOutcome::Refused
                }
            }
        })
    }

    /// Computes the endpoints object for every service, mirroring the
    /// endpoints controller: label selection plus target-port resolution.
    /// Numeric targets produce endpoints whether or not the port is open
    /// (which is why M5A requests black-hole); named targets that no
    /// container declares produce none.
    pub fn endpoints(&self) -> Vec<Endpoints> {
        self.services()
            .map(|svc| {
                let mut addresses = Vec::new();
                if !svc.spec.selector.is_empty() {
                    for rp in &self.pods {
                        if rp.pod.meta.namespace != svc.meta.namespace {
                            continue;
                        }
                        if !rp.pod.meta.labels.contains_all(&svc.spec.selector) {
                            continue;
                        }
                        for sp in &svc.spec.ports {
                            let target = match &sp.target_port {
                                TargetPort::Number(n) => Some(*n),
                                TargetPort::Name(name) => rp.pod.resolve_port_name(name),
                            };
                            let Some(target) = target else { continue };
                            addresses.push(EndpointAddress {
                                ip: rp.ip.clone(),
                                pod: rp.qualified_name(),
                                port: target,
                                protocol: sp.protocol,
                                port_name: sp.name.clone(),
                            });
                        }
                    }
                }
                Endpoints {
                    meta: svc.meta.clone(),
                    addresses,
                }
            })
            .collect()
    }

    /// Endpoints for one service.
    pub fn endpoints_for(&self, namespace: &str, name: &str) -> Option<Endpoints> {
        self.endpoints()
            .into_iter()
            .find(|e| e.meta.namespace == namespace && e.meta.name == name)
    }

    /// The virtual IP assigned to a (non-headless) service.
    pub fn cluster_ip(&self, namespace: &str, name: &str) -> Option<&str> {
        self.cluster_ips
            .get(&format!("{namespace}/{name}"))
            .map(String::as_str)
    }

    /// Cluster-DNS resolution: ClusterIP for normal services, the backing
    /// pod IPs for headless ones.
    pub fn resolve_dns(&self, namespace: &str, name: &str) -> Vec<String> {
        let Some(svc) = self
            .services()
            .find(|s| s.meta.namespace == namespace && s.meta.name == name)
        else {
            return Vec::new();
        };
        if svc.is_headless() {
            let mut ips: Vec<String> = self
                .endpoints_for(namespace, name)
                .map(|e| e.addresses.iter().map(|a| a.ip.clone()).collect())
                .unwrap_or_default();
            ips.sort();
            ips.dedup();
            ips
        } else {
            self.cluster_ip(namespace, name)
                .map(|ip| vec![ip.to_string()])
                .unwrap_or_default()
        }
    }

    /// Simulates a request from `src` to service `namespace/name:port`,
    /// returning the qualified names of the pods that would successfully
    /// receive it (after policy evaluation and listener checks). kube-proxy
    /// load-balances across these — which is precisely what makes the
    /// Thanos-style impersonation (§2.1.2) work: a malicious pod matching
    /// the selector joins this list.
    pub fn send_to_service(
        &self,
        src: &str,
        namespace: &str,
        name: &str,
        port: u16,
    ) -> Vec<String> {
        let index = self.policy_index();
        let Some(src_idx) = index.pod_index(src) else {
            return Vec::new();
        };
        let Some(svc) = self
            .services()
            .find(|s| s.meta.namespace == namespace && s.meta.name == name)
        else {
            return Vec::new();
        };
        let Some(sp) = svc.spec.ports.iter().find(|p| p.port == port) else {
            return Vec::new();
        };
        let endpoints = match self.endpoints_for(namespace, name) {
            Some(e) => e,
            None => return Vec::new(),
        };
        let mut receivers = Vec::new();
        for addr in &endpoints.addresses {
            if addr.port_name != sp.name {
                continue;
            }
            let Some(dst_idx) = index.pod_index(&addr.pod) else {
                continue;
            };
            if !index
                .verdict(src_idx, dst_idx, addr.port, sp.protocol)
                .is_allowed()
            {
                continue;
            }
            if self.pods[dst_idx].listens_on(addr.port, sp.protocol) {
                receivers.push(addr.pod.clone());
            }
        }
        receivers.sort();
        receivers.dedup();
        receivers
    }

    /// Sockets visible in a node's host network namespace: the node's own
    /// daemons plus every hostNetwork pod scheduled there. This is the M7
    /// observation problem the probe must subtract a baseline from.
    pub fn host_sockets(&self, node: &str) -> Vec<(u16, Protocol, Option<String>)> {
        let mut out: Vec<(u16, Protocol, Option<String>)> = Vec::new();
        if let Some(n) = self.nodes.iter().find(|n| n.name == node) {
            for &(p, proto) in &n.baseline_ports {
                out.push((p, proto, None));
            }
        }
        for rp in &self.pods {
            if rp.pod.spec.host_network && rp.node == node {
                for s in &rp.sockets {
                    if !s.loopback_only {
                        out.push((s.port, s.protocol, Some(rp.qualified_name())));
                    }
                }
            }
        }
        out.sort_by_key(|a| (a.0, a.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{ContainerBehavior, ListenerSpec};
    use ij_chart::{Chart, Release};

    fn demo_chart() -> Chart {
        Chart::builder("demo")
            .values_yaml("replicas: 2\n")
            .unwrap()
            .template(
                "deploy.yaml",
                "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-web
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
        - name: web
          image: demo/web
          ports:
            - name: http
              containerPort: 8080
",
            )
            .template(
                "svc.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-web
spec:
  selector:
    app: web
  ports:
    - name: http
      port: 80
      targetPort: http
",
            )
            .build()
    }

    fn install_demo(behaviors: BehaviorRegistry) -> Cluster {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            seed: 7,
            behaviors,
        });
        let rendered = demo_chart().render(&Release::new("d", "default")).unwrap();
        cluster.install(&rendered).unwrap();
        cluster
    }

    #[test]
    fn install_creates_pods_with_ips() {
        let cluster = install_demo(BehaviorRegistry::new());
        assert_eq!(cluster.pods().len(), 2);
        let ips: HashSet<&str> = cluster.pods().iter().map(|p| p.ip.as_str()).collect();
        assert_eq!(ips.len(), 2, "distinct pod IPs");
        for p in cluster.pods() {
            assert!(p.ip.starts_with("10.244."));
            assert_eq!(p.pod.status.phase, "Running");
            assert!(
                p.listens_on(8080, Protocol::Tcp),
                "default behaviour opens declared port"
            );
        }
    }

    #[test]
    fn reconcile_is_idempotent() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        cluster.reconcile();
        cluster.reconcile();
        assert_eq!(cluster.pods().len(), 2);
    }

    #[test]
    fn endpoints_resolve_named_target_port() {
        let cluster = install_demo(BehaviorRegistry::new());
        let ep = cluster.endpoints_for("default", "d-web").unwrap();
        assert_eq!(ep.addresses.len(), 2);
        assert!(ep.addresses.iter().all(|a| a.port == 8080));
    }

    #[test]
    fn service_routing_hits_listening_backends() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        // An attacker pod, no special privileges, somewhere in the cluster.
        let attacker = Pod::new(
            ij_model::ObjectMeta::named("attacker"),
            ij_model::PodSpec {
                containers: vec![ij_model::Container::new("sh", "alpine")],
                ..Default::default()
            },
        );
        cluster.apply(Object::Pod(attacker)).unwrap();
        cluster.reconcile();
        let receivers = cluster.send_to_service("default/attacker", "default", "d-web", 80);
        assert_eq!(receivers.len(), 2);
    }

    #[test]
    fn impersonation_via_label_collision() {
        // Thanos-style (§2.1.2): a malicious pod matching the service's
        // selector starts receiving service traffic.
        let mut cluster = install_demo(BehaviorRegistry::new());
        let imposter = Pod::new(
            ij_model::ObjectMeta::named("imposter")
                .with_labels(Labels::from_pairs([("app", "web")])),
            ij_model::PodSpec {
                containers: vec![ij_model::Container::new("sh", "attacker/listener")
                    .with_ports(vec![ij_model::ContainerPort::named("http", 8080)])],
                ..Default::default()
            },
        );
        cluster.apply(Object::Pod(imposter)).unwrap();
        cluster.reconcile();
        let receivers = cluster.send_to_service("default/d-web-0", "default", "d-web", 80);
        assert!(receivers.contains(&"default/imposter".to_string()));
    }

    #[test]
    fn ephemeral_ports_differ_across_restart() {
        let mut behaviors = BehaviorRegistry::new();
        behaviors.register(
            "demo/web",
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(8080), ListenerSpec::ephemeral()]),
        );
        let mut cluster = install_demo(behaviors);
        let before: Vec<u16> = cluster.pods()[0]
            .sockets
            .iter()
            .filter(|s| s.ephemeral)
            .map(|s| s.port)
            .collect();
        assert_eq!(before.len(), 1);
        assert!((32768..=60999).contains(&before[0]));
        cluster.restart_pods();
        let after: Vec<u16> = cluster.pods()[0]
            .sockets
            .iter()
            .filter(|s| s.ephemeral)
            .map(|s| s.port)
            .collect();
        assert_ne!(before, after, "ephemeral port re-drawn on restart");
        assert!(
            cluster.pods()[0].listens_on(8080, Protocol::Tcp),
            "static port stable"
        );
    }

    #[test]
    fn connect_honours_listeners_and_policies() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        let attacker = Pod::new(
            ij_model::ObjectMeta::named("attacker"),
            ij_model::PodSpec {
                containers: vec![ij_model::Container::new("sh", "alpine")],
                ..Default::default()
            },
        );
        cluster.apply(Object::Pod(attacker)).unwrap();
        cluster.reconcile();
        // Default allow: open port connects, closed port refuses.
        assert_eq!(
            cluster.connect("default/attacker", "default/d-web-0", 8080, Protocol::Tcp),
            Some(ConnectOutcome::Connected)
        );
        assert_eq!(
            cluster.connect("default/attacker", "default/d-web-0", 9999, Protocol::Tcp),
            Some(ConnectOutcome::Refused)
        );
        // A deny-all policy flips the verdict.
        let deny = NetworkPolicy::deny_all_ingress(
            ij_model::ObjectMeta::named("deny"),
            ij_model::LabelSelector::from_labels(Labels::from_pairs([("app", "web")])),
        );
        cluster.apply(Object::NetworkPolicy(deny)).unwrap();
        assert_eq!(
            cluster.connect("default/attacker", "default/d-web-0", 8080, Protocol::Tcp),
            Some(ConnectOutcome::DeniedIngress)
        );
    }

    #[test]
    fn loopback_sockets_unreachable() {
        let mut behaviors = BehaviorRegistry::new();
        behaviors.register(
            "demo/web",
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(2222).loopback()]),
        );
        let cluster = install_demo(behaviors);
        assert!(!cluster.pods()[0].listens_on(2222, Protocol::Tcp));
        assert!(cluster.pods()[0]
            .sockets
            .iter()
            .any(|s| s.port == 2222 && s.loopback_only));
    }

    #[test]
    fn daemonset_runs_on_every_node() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let w = Workload::deployment(
            ij_model::ObjectMeta::named("exporter"),
            Labels::from_pairs([("app", "exporter")]),
            ij_model::PodSpec {
                containers: vec![ij_model::Container::new("e", "exporter")
                    .with_ports(vec![ij_model::ContainerPort::tcp(9100)])],
                host_network: true,
                node_name: None,
            },
        )
        .with_kind(WorkloadKind::DaemonSet);
        cluster.apply(Object::Workload(w)).unwrap();
        cluster.reconcile();
        assert_eq!(cluster.pods().len(), 3);
        // hostNetwork pods take their node's IP and appear in host sockets.
        for p in cluster.pods() {
            assert!(p.ip.starts_with("192.168.49."));
        }
        let host = cluster.host_sockets("node-0");
        assert!(host
            .iter()
            .any(|(p, _, owner)| *p == 9100 && owner.is_some()));
        assert!(host
            .iter()
            .any(|(p, _, owner)| *p == 10250 && owner.is_none()));
    }

    #[test]
    fn headless_dns_returns_pod_ips() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        let headless = Service::headless(
            ij_model::ObjectMeta::named("web-headless"),
            Labels::from_pairs([("app", "web")]),
            vec![ij_model::ServicePort::tcp(8080)],
        );
        cluster.apply(Object::Service(headless)).unwrap();
        let ips = cluster.resolve_dns("default", "web-headless");
        assert_eq!(ips.len(), 2);
        assert!(ips.iter().all(|ip| ip.starts_with("10.244.")));
        // Normal service resolves to one virtual IP.
        let vip = cluster.resolve_dns("default", "d-web");
        assert_eq!(vip.len(), 1);
        assert!(vip[0].starts_with("10.96."));
    }

    #[test]
    fn admission_denial_rolls_back_release() {
        struct DenyServices;
        impl AdmissionController for DenyServices {
            fn name(&self) -> &str {
                "deny-services"
            }
            fn review(&self, review: &AdmissionReview<'_>) -> AdmissionOutcome {
                if review.object.kind() == "Service" {
                    AdmissionOutcome::Deny("services are forbidden".into())
                } else {
                    AdmissionOutcome::Allow
                }
            }
        }
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.push_admission(Box::new(DenyServices));
        let rendered = demo_chart().render(&Release::new("d", "default")).unwrap();
        let err = cluster.install(&rendered).unwrap_err();
        assert!(matches!(err, InstallError::Denied { .. }));
        assert!(cluster.objects().is_empty(), "rolled back");
        assert!(cluster.pods().is_empty());
    }

    #[test]
    fn watch_stream_delivers_lifecycle_events() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        let rx = cluster.watch();
        let pod = Pod::new(
            ij_model::ObjectMeta::named("late"),
            ij_model::PodSpec {
                containers: vec![ij_model::Container::new("c", "img")],
                ..Default::default()
            },
        );
        cluster.apply(Object::Pod(pod)).unwrap();
        cluster.reconcile();
        cluster.restart_pods();
        cluster.reset();
        let events: Vec<WatchEvent> = rx.try_iter().collect();
        assert!(events.contains(&WatchEvent::Applied {
            kind: "Pod".into(),
            name: "default/late".into()
        }));
        assert!(events
            .iter()
            .any(|e| matches!(e, WatchEvent::PodStarted { name, .. } if name == "default/late")));
        assert!(events.contains(&WatchEvent::PodsRestarted));
        assert!(events.contains(&WatchEvent::Reset));
    }

    #[test]
    fn dropped_watchers_are_pruned() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        {
            let _rx = cluster.watch();
        } // receiver dropped immediately
        let rx2 = cluster.watch();
        cluster.reset();
        assert!(rx2.try_iter().any(|e| e == WatchEvent::Reset));
    }

    #[test]
    fn watch_sees_admission_denials() {
        struct DenyPods;
        impl AdmissionController for DenyPods {
            fn name(&self) -> &str {
                "deny-pods"
            }
            fn review(&self, review: &AdmissionReview<'_>) -> AdmissionOutcome {
                if review.object.kind() == "Pod" {
                    AdmissionOutcome::Deny("no pods".into())
                } else {
                    AdmissionOutcome::Allow
                }
            }
        }
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.push_admission(Box::new(DenyPods));
        let rx = cluster.watch();
        let pod = Pod::new(
            ij_model::ObjectMeta::named("p"),
            ij_model::PodSpec::default(),
        );
        let _ = cluster.apply(Object::Pod(pod));
        assert!(rx
            .try_iter()
            .any(|e| matches!(e, WatchEvent::Denied { reason, .. } if reason == "no pods")));
    }

    #[test]
    fn uninstall_removes_only_the_release() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        let second = demo_chart().render(&Release::new("e", "default")).unwrap();
        cluster.install(&second).unwrap();
        assert_eq!(cluster.pods().len(), 4);
        cluster.uninstall("d");
        assert_eq!(cluster.pods().len(), 2, "only release e's pods remain");
        assert!(cluster
            .pods()
            .iter()
            .all(|p| p.qualified_name().contains("e-web")));
        assert!(cluster.services().all(|s| s.meta.name == "e-web"));
        // Endpoints follow: the removed release's service is gone.
        assert!(cluster.endpoints_for("default", "d-web").is_none());
        assert!(cluster.endpoints_for("default", "e-web").is_some());
    }

    #[test]
    fn policy_index_cached_until_mutation() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        let first = cluster.policy_index();
        let second = cluster.policy_index();
        assert!(
            Arc::ptr_eq(&first, &second),
            "same generation must share one compilation"
        );
        let generation = cluster.generation();
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                ij_model::ObjectMeta::named("deny"),
                ij_model::LabelSelector::everything(),
            )))
            .unwrap();
        assert_ne!(cluster.generation(), generation, "apply bumps generation");
        let third = cluster.policy_index();
        assert!(
            !Arc::ptr_eq(&first, &third),
            "mutation must invalidate the cached index"
        );
        assert_eq!(third.policy_count(), 1);
        // The old Arc remains a consistent pre-mutation snapshot.
        assert_eq!(first.policy_count(), 0);
    }

    #[test]
    fn restart_and_reset_invalidate_the_index() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        let g0 = cluster.generation();
        cluster.restart_pods();
        let g1 = cluster.generation();
        assert_ne!(g0, g1);
        cluster.reset();
        assert_ne!(cluster.generation(), g1);
        assert_eq!(cluster.policy_index().pod_count(), 0);
    }

    #[test]
    fn uninstall_releases_cluster_ips() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        assert!(cluster.cluster_ip("default", "d-web").is_some());
        cluster.uninstall("d");
        assert!(
            cluster.cluster_ip("default", "d-web").is_none(),
            "uninstalled service must not resolve a stale ClusterIP"
        );
        assert!(cluster.resolve_dns("default", "d-web").is_empty());
        // Install/uninstall churn must not leak map entries for the name.
        for _ in 0..5 {
            let rendered = demo_chart().render(&Release::new("d", "default")).unwrap();
            cluster.install(&rendered).unwrap();
            cluster.uninstall("d");
        }
        assert!(cluster.cluster_ip("default", "d-web").is_none());
    }

    #[test]
    fn rollback_releases_cluster_ips_of_applied_services() {
        // Deny pods so the install fails *after* the service got its IP.
        struct DenyWorkloads;
        impl AdmissionController for DenyWorkloads {
            fn name(&self) -> &str {
                "deny-workloads"
            }
            fn review(&self, review: &AdmissionReview<'_>) -> AdmissionOutcome {
                if review.object.kind() == "Deployment" {
                    AdmissionOutcome::Deny("no workloads".into())
                } else {
                    AdmissionOutcome::Allow
                }
            }
        }
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.push_admission(Box::new(DenyWorkloads));
        // Render with the service template first so it lands before the
        // denied deployment.
        let chart = Chart::builder("demo")
            .template(
                "a-svc.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-web
spec:
  selector:
    app: web
  ports:
    - name: http
      port: 80
      targetPort: 8080
",
            )
            .template(
                "b-deploy.yaml",
                "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-web
spec:
  replicas: 1
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
        - name: web
          image: demo/web
",
            )
            .build();
        let rendered = chart.render(&Release::new("d", "default")).unwrap();
        cluster.install(&rendered).unwrap_err();
        assert!(cluster.objects().is_empty(), "rolled back");
        assert!(
            cluster.cluster_ip("default", "d-web").is_none(),
            "rollback must release the ClusterIP of already-applied services"
        );
    }

    #[test]
    fn zero_replicas_spawn_no_pods_and_scale_down_reaps() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        assert_eq!(cluster.pods().len(), 2);
        let rx = cluster.watch();
        assert!(cluster.scale_workload("default/d-web", 0));
        cluster.reconcile();
        assert!(
            cluster.pods().is_empty(),
            "replicas: 0 means zero pods, not one"
        );
        assert_eq!(
            rx.try_iter()
                .filter(|e| matches!(e, WatchEvent::PodReaped { .. }))
                .count(),
            2
        );
        // Scaling back up respawns pods; partial scale-down reaps only the
        // excess replica.
        assert!(cluster.scale_workload("default/d-web", 3));
        cluster.reconcile();
        assert_eq!(cluster.pods().len(), 3);
        assert!(cluster.scale_workload("default/d-web", 1));
        cluster.reconcile();
        assert_eq!(cluster.pods().len(), 1);
        assert!(!cluster.scale_workload("default/missing", 2));
    }

    #[test]
    fn workload_applied_with_zero_replicas_stays_at_zero() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let mut w = Workload::deployment(
            ij_model::ObjectMeta::named("idle"),
            Labels::from_pairs([("app", "idle")]),
            ij_model::PodSpec {
                containers: vec![ij_model::Container::new("c", "img")],
                ..Default::default()
            },
        );
        w.replicas = 0;
        cluster.apply(Object::Workload(w)).unwrap();
        cluster.reconcile();
        assert!(cluster.pods().is_empty());
    }

    #[test]
    fn zero_node_cluster_leaves_pods_pending_instead_of_panicking() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 0,
            seed: 1,
            behaviors: BehaviorRegistry::new(),
        });
        let rx = cluster.watch();
        let pod = Pod::new(
            ij_model::ObjectMeta::named("p"),
            ij_model::PodSpec {
                containers: vec![ij_model::Container::new("c", "img")],
                ..Default::default()
            },
        );
        cluster.apply(Object::Pod(pod)).unwrap();
        cluster.reconcile(); // previously: divide-by-zero panic
        assert!(cluster.pods().is_empty());
        assert!(rx
            .try_iter()
            .any(|e| matches!(e, WatchEvent::PodPending { name } if name == "default/p")));
        assert!(cluster
            .events()
            .iter()
            .any(|e| e.contains("pending default/p")));
    }

    #[test]
    fn dirty_since_attributes_mutations_to_releases() {
        let mut cluster = install_demo(BehaviorRegistry::new());
        let cursor = cluster.generation();
        assert!(cluster.dirty_since(cursor).is_clean());

        let second = demo_chart().render(&Release::new("e", "default")).unwrap();
        cluster.install(&second).unwrap();
        let s = cluster.dirty_since(cursor);
        assert!(!s.everything && !s.all_apps);
        assert_eq!(s.apps.iter().cloned().collect::<Vec<_>>(), vec!["e"]);
        assert!(s.labels && s.pods);

        let cursor = cluster.generation();
        cluster.uninstall("d");
        let s = cluster.dirty_since(cursor);
        assert_eq!(s.apps.iter().cloned().collect::<Vec<_>>(), vec!["d"]);

        // A policy-only change leaves the label flag untouched.
        let cursor = cluster.generation();
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                ij_model::ObjectMeta::named("deny"),
                ij_model::LabelSelector::everything(),
            )))
            .unwrap();
        let s = cluster.dirty_since(cursor);
        assert!(!s.labels && s.unattributed);

        // Restarts dirty every app's runtime state.
        let cursor = cluster.generation();
        cluster.restart_pods();
        let s = cluster.dirty_since(cursor);
        assert!(s.all_apps && s.pods && !s.labels);

        // Reset invalidates every earlier cursor.
        cluster.reset();
        assert!(cluster.dirty_since(cursor).everything);
        // A stale cursor far older than the ring is conservative too.
        let s = cluster.dirty_since(u64::MAX);
        assert!(s.everything);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut behaviors = BehaviorRegistry::new();
            behaviors.register(
                "demo/web",
                ContainerBehavior::Listeners(vec![ListenerSpec::ephemeral()]),
            );
            let cluster = install_demo(behaviors);
            cluster.pods()[0].sockets[0].port
        };
        assert_eq!(mk(), mk());
    }
}
