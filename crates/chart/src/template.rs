//! The Helm-compatible template language: lexer, parser, and evaluator.
//!
//! Supported actions:
//!
//! * `{{ PIPELINE }}` — interpolate a value
//! * `{{ if P }} … {{ else if P }} … {{ else }} … {{ end }}`
//! * `{{ range P }} … {{ end }}` — iterate a sequence (dot becomes the item)
//! * `{{ with P }} … {{ end }}` — re-scope dot, skipping the body when falsy
//!
//! Pipelines chain commands with `|`; the piped value is appended as the
//! *last* argument of the next command, exactly like Helm. Paths are rooted
//! at the current dot (`.Values.x.y`) or the template root (`$.Values.x`).
//! `{{-` / `-}}` trim adjacent whitespace.
//!
//! Named templates are supported: `{{ define "name" }}…{{ end }}` registers
//! a partial (typically in a `_helpers.tpl`), `{{ include "name" CTX }}` is
//! a function returning the rendered partial as a string (pipe it into
//! `nindent`), and `{{ template "name" CTX }}` splices it directly. A chart
//! shares the partials defined in *any* of its template files.

use crate::error::{Error, Result};
use ij_yaml::{Map, Value};
use std::borrow::Cow;
use std::collections::HashMap;

/// The evaluation context of a render: `.Values`, `.Release`, `.Chart`.
#[derive(Debug, Clone)]
pub struct Context {
    /// Merged values tree (chart defaults overlaid with user values).
    pub values: Value,
    /// Release name (`.Release.Name`).
    pub release_name: String,
    /// Release namespace (`.Release.Namespace`).
    pub release_namespace: String,
    /// Chart name (`.Chart.Name`).
    pub chart_name: String,
    /// Chart version (`.Chart.Version`).
    pub chart_version: String,
}

impl Context {
    /// Builds the root dot value visible to templates.
    fn root_dot(&self) -> Value {
        build_root(
            self.values.clone(),
            &self.release_name,
            &self.release_namespace,
            &self.chart_name,
            &self.chart_version,
        )
    }
}

/// Builds the root dot value (`.Values` / `.Release` / `.Chart`) for a
/// render, taking ownership of the merged values tree so the chart render
/// path pays exactly one values clone per chart level per render (the seed
/// cloned the full tree once per template file).
pub(crate) fn build_root(
    values: Value,
    release_name: &str,
    release_namespace: &str,
    chart_name: &str,
    chart_version: &str,
) -> Value {
    // Fixed distinct keys: append without `insert`'s duplicate scan.
    let mut release = Map::with_capacity(2);
    release.push_unchecked("Name", Value::str(release_name));
    release.push_unchecked("Namespace", Value::str(release_namespace));
    let mut chart = Map::with_capacity(2);
    chart.push_unchecked("Name", Value::str(chart_name));
    chart.push_unchecked("Version", Value::str(chart_version));
    let mut root = Map::with_capacity(3);
    root.push_unchecked("Values", values);
    root.push_unchecked("Release", Value::Map(release));
    root.push_unchecked("Chart", Value::Map(chart));
    Value::Map(root)
}

/// A parsed template file: its body plus any named partials it defines.
#[derive(Debug, Clone)]
pub struct ParsedTemplate {
    pub(crate) nodes: Vec<Node>,
    pub(crate) defines: HashMap<String, Vec<Node>>,
}

impl ParsedTemplate {
    /// Names of the partials this file defines.
    pub fn defined_names(&self) -> impl Iterator<Item = &str> {
        self.defines.keys().map(String::as_str)
    }
}

/// Parses a template file without rendering it.
pub fn parse_template(name: &str, source: &str) -> Result<ParsedTemplate> {
    let segments = lex(name, source)?;
    let mut parser = NodeParser {
        name,
        segments: &segments,
        pos: 0,
        defines: HashMap::new(),
    };
    let nodes = parser.parse_block(&[])?;
    if parser.pos != segments.len() {
        return Err(template_err(
            name,
            0,
            "unexpected `end` without an open block",
        ));
    }
    Ok(ParsedTemplate {
        nodes,
        defines: parser.defines,
    })
}

/// Renders a parsed template with access to a shared partial set (the
/// union of every file's defines; the file's own defines take precedence).
pub fn render_parsed(
    name: &str,
    template: &ParsedTemplate,
    shared_defines: &HashMap<String, Vec<Node>>,
    ctx: &Context,
) -> Result<String> {
    let root = ctx.root_dot();
    let shared: SharedDefines<'_> = shared_defines
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_slice()))
        .collect();
    render_file(name, template, &shared, &root)
}

/// A borrowed view of the partials shared across a chart's template files.
/// Built once per render from the parsed templates — no `Vec<Node>` is ever
/// cloned to assemble it (the seed's `merge_defines` deep-cloned every
/// partial body on every render).
pub(crate) type SharedDefines<'a> = HashMap<&'a str, &'a [Node]>;

/// Collects every file's defines into one borrowed shared set; a later
/// file's define wins, like `merge_defines`.
pub(crate) fn shared_defines<'a, I>(templates: I) -> SharedDefines<'a>
where
    I: IntoIterator<Item = &'a ParsedTemplate>,
{
    let mut out = SharedDefines::new();
    for t in templates {
        for (k, v) in &t.defines {
            out.insert(k.as_str(), v.as_slice());
        }
    }
    out
}

/// Renders a parsed file against a pre-built root dot and a borrowed shared
/// partial set. This is the chart render path: the root is built once per
/// chart level and the defines are borrowed, so per-file work is evaluation
/// only.
pub(crate) fn render_file(
    name: &str,
    template: &ParsedTemplate,
    shared: &SharedDefines<'_>,
    root: &Value,
) -> Result<String> {
    let mut out = String::new();
    render_file_into(name, template, shared, root, &mut out)?;
    Ok(out)
}

/// [`render_file`] into a caller-provided buffer, clearing it first —
/// exactly the same bytes, but render-many loops amortize the output
/// allocation across files and releases.
pub(crate) fn render_file_into(
    name: &str,
    template: &ParsedTemplate,
    shared: &SharedDefines<'_>,
    root: &Value,
    out: &mut String,
) -> Result<()> {
    let env = EvalEnv {
        name,
        shared,
        own: &template.defines,
        root,
    };
    out.clear();
    eval_block(&env, &template.nodes, root, out, 0)
}

/// Evaluates one `if`/`else if` condition pipeline of a parsed file against
/// a pre-built root dot, applying exactly the truthiness `eval_block` uses
/// when it picks a branch. The compiled layer calls this to choose a
/// pre-decoded branch outcome without rendering any text.
pub(crate) fn eval_condition(
    name: &str,
    template: &ParsedTemplate,
    shared: &SharedDefines<'_>,
    root: &Value,
    pipeline: &Pipeline,
    line: usize,
) -> Result<bool> {
    let env = EvalEnv {
        name,
        shared,
        own: &template.defines,
        root,
    };
    Ok(eval_pipeline(&env, pipeline, root, line, 0)?.truthy())
}

/// Collects the partials of several parsed templates into one shared set.
///
/// Kept for callers that pair it with [`render_parsed`]; the chart render
/// paths use a borrowed equivalent internally and never clone partial
/// bodies.
pub fn merge_defines(templates: &[ParsedTemplate]) -> HashMap<String, Vec<Node>> {
    let mut out = HashMap::new();
    for t in templates {
        for (k, v) in &t.defines {
            out.insert(k.clone(), v.clone());
        }
    }
    out
}

/// Renders a standalone template source against a context.
pub fn render_template(name: &str, source: &str, ctx: &Context) -> Result<String> {
    let parsed = parse_template(name, source)?;
    render_parsed(name, &parsed, &HashMap::new(), ctx)
}

fn template_err(name: &str, line: usize, msg: impl Into<String>) -> Error {
    Error::Template {
        template: name.to_string(),
        message: if line > 0 {
            format!("line {line}: {}", msg.into())
        } else {
            msg.into()
        },
    }
}

// ---------------------------------------------------------------------------
// Lexing: split source into text and action segments, applying trim markers.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Segment {
    Text(String),
    Action { content: String, line: usize },
}

fn lex(name: &str, source: &str) -> Result<Vec<Segment>> {
    let mut segments = Vec::new();
    let mut rest = source;
    let mut line = 1usize;
    while let Some(start) = rest.find("{{") {
        let (text, after) = rest.split_at(start);
        line += text.matches('\n').count();
        let action_line = line;
        let after = &after[2..];
        let (trim_before, after) = match after.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, after),
        };
        let Some(end) = after.find("}}") else {
            return Err(template_err(name, action_line, "unterminated `{{` action"));
        };
        let mut content = &after[..end];
        line += content.matches('\n').count();
        let mut remainder = &after[end + 2..];
        let trim_after = content.ends_with('-')
            && content.len() >= 2
            && content[..content.len() - 1].ends_with(char::is_whitespace);
        if trim_after {
            content = content[..content.len() - 1].trim_end();
        }
        let mut text = text.to_string();
        if trim_before {
            truncate_trailing_whitespace(&mut text);
        }
        if !text.is_empty() {
            segments.push(Segment::Text(text));
        }
        segments.push(Segment::Action {
            content: content.trim().to_string(),
            line: action_line,
        });
        if trim_after {
            let trimmed = remainder.trim_start_matches([' ', '\t', '\r', '\n']);
            line += remainder[..remainder.len() - trimmed.len()]
                .matches('\n')
                .count();
            remainder = trimmed;
        }
        rest = remainder;
    }
    if !rest.is_empty() {
        segments.push(Segment::Text(rest.to_string()));
    }
    Ok(segments)
}

fn truncate_trailing_whitespace(s: &mut String) {
    let trimmed_len = s.trim_end_matches([' ', '\t', '\r', '\n']).len();
    s.truncate(trimmed_len);
}

// ---------------------------------------------------------------------------
// Parsing: actions become a node tree.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub enum Node {
    Text(String),
    Output {
        pipeline: Pipeline,
        line: usize,
    },
    If {
        branches: Vec<(Option<Pipeline>, Vec<Node>)>,
        line: usize,
    },
    Range {
        pipeline: Pipeline,
        body: Vec<Node>,
        line: usize,
    },
    With {
        pipeline: Pipeline,
        body: Vec<Node>,
        line: usize,
    },
}

struct NodeParser<'a> {
    name: &'a str,
    segments: &'a [Segment],
    pos: usize,
    defines: HashMap<String, Vec<Node>>,
}

impl<'a> NodeParser<'a> {
    /// Parses until one of `stops` (`end`, `else`, `else if …`) or EOF.
    /// Leaves the stopping action un-consumed.
    fn parse_block(&mut self, stops: &[&str]) -> Result<Vec<Node>> {
        let mut nodes = Vec::new();
        while let Some(seg) = self.segments.get(self.pos) {
            match seg {
                Segment::Text(t) => {
                    nodes.push(Node::Text(t.clone()));
                    self.pos += 1;
                }
                Segment::Action { content, line } => {
                    let keyword = content.split_whitespace().next().unwrap_or("");
                    if stops.contains(&keyword) {
                        return Ok(nodes);
                    }
                    match keyword {
                        "if" => nodes.push(self.parse_if(content, *line)?),
                        "range" => {
                            self.pos += 1;
                            let pipeline = parse_pipeline(self.name, &content[5..], *line)?;
                            let body = self.parse_block(&["end"])?;
                            self.expect_end(*line, "range")?;
                            nodes.push(Node::Range {
                                pipeline,
                                body,
                                line: *line,
                            });
                        }
                        "with" => {
                            self.pos += 1;
                            let pipeline = parse_pipeline(self.name, &content[4..], *line)?;
                            let body = self.parse_block(&["end"])?;
                            self.expect_end(*line, "with")?;
                            nodes.push(Node::With {
                                pipeline,
                                body,
                                line: *line,
                            });
                        }
                        "define" => {
                            let def_name = quoted_name(self.name, &content[6..], *line)?;
                            self.pos += 1;
                            let body = self.parse_block(&["end"])?;
                            self.expect_end(*line, "define")?;
                            // A later define wins, like Go templates.
                            self.defines.insert(def_name, body);
                        }
                        "template" => {
                            // `{{ template "name" CTX }}` splices the partial
                            // directly — desugars to the `include` function.
                            self.pos += 1;
                            let rewritten = format!("include {}", &content[8..]);
                            let pipeline = parse_pipeline(self.name, &rewritten, *line)?;
                            nodes.push(Node::Output {
                                pipeline,
                                line: *line,
                            });
                        }
                        "end" | "else" => {
                            return Err(template_err(
                                self.name,
                                *line,
                                format!("`{keyword}` without an open block"),
                            ));
                        }
                        _ => {
                            self.pos += 1;
                            let pipeline = parse_pipeline(self.name, content, *line)?;
                            nodes.push(Node::Output {
                                pipeline,
                                line: *line,
                            });
                        }
                    }
                }
            }
        }
        if stops.is_empty() {
            Ok(nodes)
        } else {
            Err(template_err(
                self.name,
                0,
                format!("unterminated block; expected one of {stops:?}"),
            ))
        }
    }

    fn parse_if(&mut self, content: &str, line: usize) -> Result<Node> {
        self.pos += 1; // consume the `if`
        let mut branches = Vec::new();
        let mut cond = Some(parse_pipeline(self.name, &content[2..], line)?);
        loop {
            let body = self.parse_block(&["end", "else"])?;
            branches.push((cond.take(), body));
            match self.segments.get(self.pos) {
                Some(Segment::Action { content, line }) if content == "end" => {
                    self.pos += 1;
                    let _ = line;
                    break;
                }
                Some(Segment::Action { content, line }) if content == "else" => {
                    self.pos += 1;
                    let body = self.parse_block(&["end"])?;
                    branches.push((None, body));
                    self.expect_end(*line, "else")?;
                    break;
                }
                Some(Segment::Action { content, line }) if content.starts_with("else if") => {
                    self.pos += 1;
                    cond = Some(parse_pipeline(self.name, &content[7..], *line)?);
                    continue;
                }
                _ => {
                    return Err(template_err(self.name, line, "unterminated `if` block"));
                }
            }
        }
        Ok(Node::If { branches, line })
    }

    fn expect_end(&mut self, line: usize, what: &str) -> Result<()> {
        match self.segments.get(self.pos) {
            Some(Segment::Action { content, .. }) if content == "end" => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(template_err(
                self.name,
                line,
                format!("`{what}` block missing `end`"),
            )),
        }
    }
}

/// Parses the quoted partial name of a `define`/`template` action.
fn quoted_name(template: &str, rest: &str, line: usize) -> Result<String> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('"')
        .and_then(|r| r.split_once('"'))
        .map(|(name, _)| name)
        .ok_or_else(|| template_err(template, line, "expected a quoted template name"))?;
    if inner.is_empty() {
        return Err(template_err(template, line, "empty template name"));
    }
    Ok(inner.to_string())
}

// ---------------------------------------------------------------------------
// Pipelines and terms.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Pipeline {
    pub(crate) commands: Vec<Command>,
}

#[derive(Debug, Clone)]
pub(crate) struct Command {
    terms: Vec<Term>,
}

#[derive(Debug, Clone)]
pub(crate) enum Term {
    /// `.a.b.c` — path rooted at dot; empty segments vector is plain `.`.
    Path(Vec<String>),
    /// `$.a.b` — path rooted at the template root.
    RootPath(Vec<String>),
    /// Literal scalar.
    Literal(Value),
    /// Function name.
    Ident(String),
    /// Parenthesized sub-pipeline.
    Sub(Box<Pipeline>),
}

fn parse_pipeline(name: &str, src: &str, line: usize) -> Result<Pipeline> {
    let mut lexer = ExprLexer {
        name,
        src: src.as_bytes(),
        pos: 0,
        line,
    };
    let pipeline = lexer.pipeline()?;
    lexer.skip_ws();
    if lexer.pos != lexer.src.len() {
        return Err(template_err(
            name,
            line,
            format!("trailing tokens in `{src}`"),
        ));
    }
    Ok(pipeline)
}

struct ExprLexer<'a> {
    name: &'a str,
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> ExprLexer<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        template_err(self.name, self.line, msg)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && (self.src[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn pipeline(&mut self) -> Result<Pipeline> {
        let mut commands = vec![self.command()?];
        loop {
            self.skip_ws();
            if self.src.get(self.pos) == Some(&b'|') {
                self.pos += 1;
                commands.push(self.command()?);
            } else {
                break;
            }
        }
        Ok(Pipeline { commands })
    }

    fn command(&mut self) -> Result<Command> {
        let mut terms = Vec::new();
        loop {
            self.skip_ws();
            match self.src.get(self.pos) {
                None | Some(b'|') | Some(b')') => break,
                _ => terms.push(self.term()?),
            }
        }
        if terms.is_empty() {
            return Err(self.err("empty command in pipeline"));
        }
        Ok(Command { terms })
    }

    fn term(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.src.get(self.pos) {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.pipeline()?;
                self.skip_ws();
                if self.src.get(self.pos) != Some(&b')') {
                    return Err(self.err("missing `)`"));
                }
                self.pos += 1;
                Ok(Term::Sub(Box::new(inner)))
            }
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                let mut out = String::new();
                loop {
                    match self.src.get(self.pos) {
                        Some(b'"') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match self.src.get(self.pos + 1) {
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                _ => return Err(self.err("bad escape in string literal")),
                            }
                            self.pos += 2;
                        }
                        Some(&c) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        None => return Err(self.err("unterminated string literal")),
                    }
                }
                let _ = start;
                Ok(Term::Literal(Value::Str(out)))
            }
            Some(b'.') => {
                let path = self.path()?;
                Ok(Term::Path(path))
            }
            Some(b'$') => {
                self.pos += 1;
                if self.src.get(self.pos) == Some(&b'.') {
                    let path = self.path()?;
                    Ok(Term::RootPath(path))
                } else {
                    Ok(Term::RootPath(Vec::new()))
                }
            }
            Some(&c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                self.pos += 1;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|&c| c.is_ascii_digit() || c == b'.')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                if let Ok(i) = text.parse::<i64>() {
                    Ok(Term::Literal(Value::Int(i)))
                } else if let Ok(f) = text.parse::<f64>() {
                    Ok(Term::Literal(Value::Float(f)))
                } else {
                    Err(self.err(format!("bad number `{text}`")))
                }
            }
            Some(&c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                Ok(match word {
                    "true" => Term::Literal(Value::Bool(true)),
                    "false" => Term::Literal(Value::Bool(false)),
                    "nil" => Term::Literal(Value::Null),
                    _ => Term::Ident(word.to_string()),
                })
            }
            Some(&c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of expression")),
        }
    }

    /// Parses `.seg.seg…`; a lone `.` yields an empty path (dot itself).
    fn path(&mut self) -> Result<Vec<String>> {
        let mut segs = Vec::new();
        while self.src.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            let start = self.pos;
            while self
                .src
                .get(self.pos)
                .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
            {
                self.pos += 1;
            }
            if self.pos == start {
                // A bare `.`: only valid as the whole path.
                if segs.is_empty() {
                    return Ok(segs);
                }
                return Err(self.err("empty path segment"));
            }
            segs.push(
                std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii")
                    .to_string(),
            );
        }
        Ok(segs)
    }
}

// ---------------------------------------------------------------------------
// Evaluation.
// ---------------------------------------------------------------------------

/// Shared evaluation state: the template's name, the partial sets visible
/// to `include` (the file's own defines shadow the chart-wide shared set),
/// and the root dot.
struct EvalEnv<'a> {
    name: &'a str,
    shared: &'a SharedDefines<'a>,
    own: &'a HashMap<String, Vec<Node>>,
    root: &'a Value,
}

impl<'a> EvalEnv<'a> {
    /// Looks up a partial: the file's own defines take precedence over the
    /// shared chart-wide set (the precedence `render_parsed` always had).
    fn partial(&self, name: &str) -> Option<&'a [Node]> {
        match self.own.get(name) {
            Some(v) => Some(v.as_slice()),
            None => self.shared.get(name).copied(),
        }
    }
}

/// Guard against mutually-recursive partials.
const MAX_INCLUDE_DEPTH: usize = 64;

fn eval_block<'a>(
    env: &EvalEnv<'a>,
    nodes: &'a [Node],
    dot: &'a Value,
    out: &mut String,
    depth: usize,
) -> Result<()> {
    for node in nodes {
        match node {
            Node::Text(t) => out.push_str(t),
            Node::Output { pipeline, line } => {
                let v = eval_pipeline(env, pipeline, dot, *line, depth)?;
                v.write_scalar(out);
            }
            Node::If { branches, line } => {
                for (cond, body) in branches {
                    let take = match cond {
                        Some(p) => eval_pipeline(env, p, dot, *line, depth)?.truthy(),
                        None => true,
                    };
                    if take {
                        eval_block(env, body, dot, out, depth)?;
                        break;
                    }
                }
            }
            Node::Range {
                pipeline,
                body,
                line,
            } => {
                let coll = eval_pipeline(env, pipeline, dot, *line, depth)?;
                match coll.as_ref() {
                    Value::Seq(items) => {
                        for item in items {
                            eval_block(env, body, item, out, depth)?;
                        }
                    }
                    Value::Map(m) => {
                        for v in m.values() {
                            eval_block(env, body, v, out, depth)?;
                        }
                    }
                    Value::Null => {}
                    other => {
                        return Err(template_err(
                            env.name,
                            *line,
                            format!("cannot range over scalar `{}`", other.render_scalar()),
                        ))
                    }
                }
            }
            Node::With {
                pipeline,
                body,
                line,
            } => {
                let v = eval_pipeline(env, pipeline, dot, *line, depth)?;
                if v.truthy() {
                    eval_block(env, body, v.as_ref(), out, depth)?;
                }
            }
        }
    }
    Ok(())
}

/// Evaluated values are copy-on-write: path lookups borrow straight out of
/// the values tree (the seed cloned the addressed subtree on every lookup)
/// and only function results own their data.
type Evaluated<'a> = Cow<'a, Value>;

fn eval_pipeline<'a>(
    env: &EvalEnv<'a>,
    pipeline: &'a Pipeline,
    dot: &'a Value,
    line: usize,
    depth: usize,
) -> Result<Evaluated<'a>> {
    let mut piped: Option<Evaluated<'a>> = None;
    for cmd in &pipeline.commands {
        piped = Some(eval_command(env, cmd, piped, dot, line, depth)?);
    }
    Ok(piped.expect("pipeline has at least one command"))
}

fn eval_command<'a>(
    env: &EvalEnv<'a>,
    cmd: &'a Command,
    piped: Option<Evaluated<'a>>,
    dot: &'a Value,
    line: usize,
    depth: usize,
) -> Result<Evaluated<'a>> {
    match &cmd.terms[0] {
        Term::Ident(func) => {
            let mut args = Vec::with_capacity(cmd.terms.len());
            for term in &cmd.terms[1..] {
                args.push(eval_term(env, term, dot, line, depth)?);
            }
            if let Some(p) = piped {
                args.push(p);
            }
            if func == "include" {
                return include_partial(env, args, line, depth);
            }
            call_function(env.name, func, args, line)
        }
        single if cmd.terms.len() == 1 => {
            if piped.is_some() {
                return Err(template_err(
                    env.name,
                    line,
                    "cannot pipe into a non-function value",
                ));
            }
            eval_term(env, single, dot, line, depth)
        }
        _ => Err(template_err(
            env.name,
            line,
            "expected a function name at command start",
        )),
    }
}

/// `include "name" CTX` — renders the named partial with CTX as its dot and
/// returns the text as a string value.
fn include_partial<'a>(
    env: &EvalEnv<'a>,
    args: Vec<Evaluated<'_>>,
    line: usize,
    depth: usize,
) -> Result<Evaluated<'a>> {
    if args.len() != 2 {
        return Err(template_err(
            env.name,
            line,
            format!(
                "`include` expects a name and a context, got {} argument(s)",
                args.len()
            ),
        ));
    }
    if depth >= MAX_INCLUDE_DEPTH {
        return Err(template_err(
            env.name,
            line,
            "include recursion limit exceeded",
        ));
    }
    let partial_name = args[0].render_scalar();
    let Some(body) = env.partial(&partial_name) else {
        return Err(template_err(
            env.name,
            line,
            format!("no template partial named `{partial_name}` is defined"),
        ));
    };
    let mut out = String::new();
    eval_block(env, body, args[1].as_ref(), &mut out, depth + 1)?;
    Ok(Cow::Owned(Value::Str(out)))
}

fn eval_term<'a>(
    env: &EvalEnv<'a>,
    term: &'a Term,
    dot: &'a Value,
    line: usize,
    depth: usize,
) -> Result<Evaluated<'a>> {
    match term {
        Term::Path(segs) => Ok(borrowed_or_null(walk(dot, segs))),
        Term::RootPath(segs) => Ok(borrowed_or_null(walk(env.root, segs))),
        Term::Literal(v) => Ok(Cow::Borrowed(v)),
        Term::Sub(p) => eval_pipeline(env, p, dot, line, depth),
        Term::Ident(f) => Err(template_err(
            env.name,
            line,
            format!("function `{f}` used as a value (missing arguments?)"),
        )),
    }
}

fn borrowed_or_null(v: Option<&Value>) -> Evaluated<'_> {
    match v {
        Some(v) => Cow::Borrowed(v),
        None => Cow::Owned(Value::Null),
    }
}

/// Walks map keys from `base`; `None` stands for the missing-path `Null`
/// without cloning anything on the hit path.
fn walk<'v>(base: &'v Value, segs: &[String]) -> Option<&'v Value> {
    let mut cur = base;
    for s in segs {
        match cur {
            Value::Map(m) => cur = m.get(s)?,
            _ => return None,
        }
    }
    Some(cur)
}

fn call_function<'a>(
    name: &str,
    func: &str,
    mut args: Vec<Evaluated<'a>>,
    line: usize,
) -> Result<Evaluated<'a>> {
    let argc = args.len();
    let bad_arity = |want: &str| {
        Err(template_err(
            name,
            line,
            format!("`{func}` expects {want} argument(s), got {argc}"),
        ))
    };
    let owned = |v: Value| Ok(Cow::Owned(v));
    match func {
        "default" => {
            if argc != 2 {
                return bad_arity("2");
            }
            Ok(if args[1].truthy() {
                args.swap_remove(1)
            } else {
                args.swap_remove(0)
            })
        }
        "required" => {
            if argc != 2 {
                return bad_arity("2");
            }
            if args[1].truthy() {
                Ok(args.swap_remove(1))
            } else {
                Err(Error::Required(args[0].render_scalar()))
            }
        }
        "quote" => {
            if argc != 1 {
                return bad_arity("1");
            }
            owned(Value::Str(format!("\"{}\"", args[0].render_scalar())))
        }
        "squote" => {
            if argc != 1 {
                return bad_arity("1");
            }
            owned(Value::Str(format!("'{}'", args[0].render_scalar())))
        }
        "not" => {
            if argc != 1 {
                return bad_arity("1");
            }
            owned(Value::Bool(!args[0].truthy()))
        }
        "eq" | "ne" => {
            if argc != 2 {
                return bad_arity("2");
            }
            let equal = scalars_equal(args[0].as_ref(), args[1].as_ref());
            owned(Value::Bool(if func == "eq" { equal } else { !equal }))
        }
        "lt" | "le" | "gt" | "ge" => {
            if argc != 2 {
                return bad_arity("2");
            }
            let (a, b) = (
                args[0].as_float().unwrap_or(f64::NAN),
                args[1].as_float().unwrap_or(f64::NAN),
            );
            let r = match func {
                "lt" => a < b,
                "le" => a <= b,
                "gt" => a > b,
                _ => a >= b,
            };
            owned(Value::Bool(r))
        }
        "and" => {
            if argc < 2 {
                return bad_arity("2+");
            }
            Ok(match args.iter().position(|a| !a.truthy()) {
                Some(i) => args.swap_remove(i),
                None => args.pop().expect("non-empty"),
            })
        }
        "or" => {
            if argc < 2 {
                return bad_arity("2+");
            }
            Ok(match args.iter().position(|a| a.truthy()) {
                Some(i) => args.swap_remove(i),
                None => args.pop().expect("non-empty"),
            })
        }
        "add" | "sub" | "mul" => {
            if argc != 2 {
                return bad_arity("2");
            }
            let (a, b) = match (args[0].as_int(), args[1].as_int()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(template_err(name, line, format!("`{func}` needs integers"))),
            };
            owned(Value::Int(match func {
                "add" => a + b,
                "sub" => a - b,
                _ => a * b,
            }))
        }
        "len" => {
            if argc != 1 {
                return bad_arity("1");
            }
            owned(Value::Int(match args[0].as_ref() {
                Value::Seq(s) => s.len() as i64,
                Value::Map(m) => m.len() as i64,
                Value::Str(s) => s.len() as i64,
                _ => 0,
            }))
        }
        "upper" => {
            if argc != 1 {
                return bad_arity("1");
            }
            owned(Value::Str(args[0].render_scalar().to_uppercase()))
        }
        "lower" => {
            if argc != 1 {
                return bad_arity("1");
            }
            owned(Value::Str(args[0].render_scalar().to_lowercase()))
        }
        "trunc" => {
            if argc != 2 {
                return bad_arity("2");
            }
            let n = args[0].as_int().unwrap_or(0).max(0) as usize;
            let s = args[1].render_scalar();
            owned(Value::Str(s.chars().take(n).collect()))
        }
        "trimSuffix" => {
            if argc != 2 {
                return bad_arity("2");
            }
            let suffix = args[0].render_scalar();
            let s = args[1].render_scalar();
            owned(Value::Str(
                s.strip_suffix(&suffix).unwrap_or(&s).to_string(),
            ))
        }
        "replace" => {
            if argc != 3 {
                return bad_arity("3");
            }
            let s = args[2].render_scalar();
            owned(Value::Str(
                s.replace(&args[0].render_scalar(), &args[1].render_scalar()),
            ))
        }
        "printf" => {
            if argc < 1 {
                return bad_arity("1+");
            }
            printf(name, &args, line).map(Cow::Owned)
        }
        "toYaml" => {
            if argc != 1 {
                return bad_arity("1");
            }
            owned(Value::Str(
                ij_yaml::to_string(args[0].as_ref()).trim_end().to_string(),
            ))
        }
        "indent" | "nindent" => {
            if argc != 2 {
                return bad_arity("2");
            }
            let n = args[0].as_int().unwrap_or(0).max(0) as usize;
            let pad = " ".repeat(n);
            let s = args[1].render_scalar();
            let indented = s
                .lines()
                .map(|l| {
                    if l.is_empty() {
                        l.to_string()
                    } else {
                        format!("{pad}{l}")
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            owned(Value::Str(if func == "nindent" {
                format!("\n{indented}")
            } else {
                indented
            }))
        }
        "ternary" => {
            if argc != 3 {
                return bad_arity("3");
            }
            Ok(if args[2].truthy() {
                args.swap_remove(0)
            } else {
                args.swap_remove(1)
            })
        }
        "hasKey" => {
            if argc != 2 {
                return bad_arity("2");
            }
            let key = args[1].render_scalar();
            owned(Value::Bool(
                args[0].as_map().is_some_and(|m| m.contains_key(&key)),
            ))
        }
        "toString" => {
            if argc != 1 {
                return bad_arity("1");
            }
            owned(Value::Str(args[0].render_scalar()))
        }
        "int" => {
            if argc != 1 {
                return bad_arity("1");
            }
            let v = match args[0].as_ref() {
                Value::Int(i) => *i,
                Value::Float(f) => *f as i64,
                Value::Str(s) => s.trim().parse::<i64>().unwrap_or(0),
                Value::Bool(true) => 1,
                _ => 0,
            };
            owned(Value::Int(v))
        }
        other => Err(template_err(
            name,
            line,
            format!("unknown function `{other}`"),
        )),
    }
}

fn scalars_equal(a: &Value, b: &Value) -> bool {
    if a == b {
        return true;
    }
    // Numeric cross-type equality (`1 == 1.0`) and string/number coercion,
    // matching Go template laxness closely enough for chart conditions.
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

fn printf(name: &str, args: &[Evaluated<'_>], line: usize) -> Result<Value> {
    let fmt = args[0].render_scalar();
    let mut out = String::new();
    let mut arg_i = 1usize;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('s') | Some('d') | Some('v') => {
                let Some(a) = args.get(arg_i) else {
                    return Err(template_err(name, line, "printf: not enough arguments"));
                };
                out.push_str(&a.render_scalar());
                arg_i += 1;
            }
            other => {
                return Err(template_err(
                    name,
                    line,
                    format!(
                        "printf: unsupported verb `%{}`",
                        other.map(String::from).unwrap_or_default()
                    ),
                ))
            }
        }
    }
    Ok(Value::Str(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(values: &str) -> Context {
        Context {
            values: ij_yaml::parse(values).unwrap(),
            release_name: "rel".into(),
            release_namespace: "default".into(),
            chart_name: "demo".into(),
            chart_version: "1.0.0".into(),
        }
    }

    fn render(src: &str, values: &str) -> String {
        render_template("t", src, &ctx(values)).unwrap()
    }

    #[test]
    fn plain_interpolation() {
        assert_eq!(
            render("port: {{ .Values.port }}", "port: 8080"),
            "port: 8080"
        );
        assert_eq!(
            render("name: {{ .Release.Name }}-{{ .Chart.Name }}", ""),
            "name: rel-demo"
        );
    }

    #[test]
    fn nested_value_paths() {
        // Mirrors the Helm fragment in Figure 2b of the paper.
        let values = "primary:\n  service:\n    ports:\n      mysql: 3306\n";
        assert_eq!(
            render("port: {{ .Values.primary.service.ports.mysql }}", values),
            "port: 3306"
        );
    }

    #[test]
    fn missing_path_renders_empty() {
        assert_eq!(render("x: [{{ .Values.absent.deep }}]", ""), "x: []");
    }

    #[test]
    fn if_else_branches() {
        let tpl = "{{ if .Values.on }}yes{{ else }}no{{ end }}";
        assert_eq!(render(tpl, "on: true"), "yes");
        assert_eq!(render(tpl, "on: false"), "no");
        assert_eq!(render(tpl, ""), "no");
    }

    #[test]
    fn else_if_chain() {
        let tpl = "{{ if eq .Values.mode \"a\" }}A{{ else if eq .Values.mode \"b\" }}B{{ else }}C{{ end }}";
        assert_eq!(render(tpl, "mode: a"), "A");
        assert_eq!(render(tpl, "mode: b"), "B");
        assert_eq!(render(tpl, "mode: z"), "C");
    }

    #[test]
    fn whitespace_trim_markers() {
        let tpl = "a\n{{- if .Values.on }}\nb\n{{- end }}\nc\n";
        assert_eq!(render(tpl, "on: true"), "a\nb\nc\n");
        assert_eq!(render(tpl, "on: false"), "a\nc\n");
    }

    #[test]
    fn range_over_sequence() {
        let tpl = "{{ range .Values.ports }}- {{ . }}\n{{ end }}";
        assert_eq!(render(tpl, "ports:\n  - 80\n  - 443\n"), "- 80\n- 443\n");
    }

    #[test]
    fn range_with_field_access() {
        let tpl = "{{ range .Values.ports }}- containerPort: {{ .num }}\n{{ end }}";
        let values = "ports:\n  - num: 6121\n  - num: 6123\n";
        assert_eq!(
            render(tpl, values),
            "- containerPort: 6121\n- containerPort: 6123\n"
        );
    }

    #[test]
    fn root_path_inside_range() {
        let tpl = "{{ range .Values.items }}{{ $.Release.Name }}:{{ . }} {{ end }}";
        assert_eq!(render(tpl, "items:\n  - x\n"), "rel:x ");
    }

    #[test]
    fn with_rescopes_dot() {
        let tpl = "{{ with .Values.svc }}port={{ .port }}{{ end }}";
        assert_eq!(render(tpl, "svc:\n  port: 81\n"), "port=81");
        assert_eq!(render(tpl, ""), "");
    }

    #[test]
    fn default_function_and_pipe() {
        assert_eq!(render("{{ .Values.port | default 8080 }}", ""), "8080");
        assert_eq!(
            render("{{ .Values.port | default 8080 }}", "port: 9000"),
            "9000"
        );
        assert_eq!(
            render("{{ default 8080 .Values.port }}", "port: 9000"),
            "9000"
        );
    }

    #[test]
    fn quote_and_upper() {
        assert_eq!(render("{{ .Values.name | quote }}", "name: web"), "\"web\"");
        assert_eq!(render("{{ .Values.name | upper }}", "name: web"), "WEB");
    }

    #[test]
    fn logic_functions() {
        assert_eq!(
            render("{{ and .Values.a .Values.b }}", "a: true\nb: true"),
            "true"
        );
        assert_eq!(
            render(
                "{{ if and .Values.a (not .Values.b) }}y{{ else }}n{{ end }}",
                "a: true\nb: false"
            ),
            "y"
        );
        assert_eq!(render("{{ or .Values.a 7 }}", "a: 0"), "7");
    }

    #[test]
    fn arithmetic_and_printf() {
        assert_eq!(render("{{ add .Values.base 1 }}", "base: 6120"), "6121");
        assert_eq!(render("{{ printf \"%s-%d\" \"svc\" 3 }}", ""), "svc-3");
    }

    #[test]
    fn to_yaml_nindent() {
        let tpl = "labels:{{ .Values.labels | toYaml | nindent 2 }}";
        let out = render(tpl, "labels:\n  app: web\n  tier: front\n");
        assert_eq!(out, "labels:\n  app: web\n  tier: front");
    }

    #[test]
    fn required_function_errors() {
        let err = render_template(
            "t",
            "{{ required \"port is required\" .Values.port }}",
            &ctx(""),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Required(m) if m.contains("port is required")));
    }

    #[test]
    fn unknown_function_errors() {
        assert!(render_template("t", "{{ bogus 1 }}", &ctx("")).is_err());
    }

    #[test]
    fn unterminated_action_errors() {
        assert!(render_template("t", "{{ .Values.a ", &ctx("")).is_err());
    }

    #[test]
    fn dangling_end_errors() {
        assert!(render_template("t", "{{ end }}", &ctx("")).is_err());
    }

    #[test]
    fn unclosed_if_errors() {
        assert!(render_template("t", "{{ if .Values.a }}x", &ctx("")).is_err());
    }

    #[test]
    fn ternary_and_comparisons() {
        assert_eq!(
            render("{{ ternary \"hi\" \"lo\" (gt .Values.n 5) }}", "n: 9"),
            "hi"
        );
        assert_eq!(
            render("{{ ternary \"hi\" \"lo\" (gt .Values.n 5) }}", "n: 3"),
            "lo"
        );
    }

    #[test]
    fn numeric_equality_across_types() {
        assert_eq!(render("{{ eq .Values.n 3 }}", "n: 3.0"), "true");
    }

    #[test]
    fn string_helpers() {
        assert_eq!(render("{{ .Values.s | lower }}", "s: MiXeD"), "mixed");
        assert_eq!(render("{{ .Values.s | squote }}", "s: web"), "'web'");
        assert_eq!(render("{{ trunc 5 .Values.s }}", "s: kubernetes"), "kuber");
        assert_eq!(
            render("{{ trimSuffix \"-master\" .Values.s }}", "s: redis-master"),
            "redis"
        );
        assert_eq!(
            render("{{ replace \"_\" \"-\" .Values.s }}", "s: a_b_c"),
            "a-b-c"
        );
        assert_eq!(render("{{ toString .Values.n }}", "n: 42"), "42");
    }

    #[test]
    fn collection_helpers() {
        assert_eq!(
            render("{{ len .Values.items }}", "items:\n  - a\n  - b\n"),
            "2"
        );
        assert_eq!(render("{{ len .Values.name }}", "name: abc"), "3");
        assert_eq!(
            render("{{ hasKey .Values.svc \"port\" }}", "svc:\n  port: 80\n"),
            "true"
        );
        assert_eq!(
            render("{{ hasKey .Values.svc \"nope\" }}", "svc:\n  port: 80\n"),
            "false"
        );
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(render("{{ sub .Values.n 1 }}", "n: 10"), "9");
        assert_eq!(render("{{ mul .Values.n 3 }}", "n: 7"), "21");
        assert_eq!(render("{{ int .Values.s }}", "s: \"123\""), "123");
        assert_eq!(render("{{ int .Values.f }}", "f: 9.7"), "9");
        assert_eq!(render("{{ lt .Values.n 5 }}", "n: 3"), "true");
        assert_eq!(render("{{ ge .Values.n 5 }}", "n: 5"), "true");
        assert_eq!(render("{{ le .Values.n 4 }}", "n: 5"), "false");
    }

    #[test]
    fn range_over_map_iterates_values() {
        let out = render(
            "{{ range .Values.ports }}{{ . }};{{ end }}",
            "ports:\n  a: 1\n  b: 2\n",
        );
        assert_eq!(out, "1;2;");
    }

    #[test]
    fn range_over_null_is_empty() {
        assert_eq!(render("{{ range .Values.missing }}x{{ end }}", ""), "");
    }

    #[test]
    fn range_over_scalar_errors() {
        assert!(render_template("t", "{{ range .Values.n }}x{{ end }}", &ctx("n: 3")).is_err());
    }

    #[test]
    fn nil_literal_and_default() {
        assert_eq!(render("{{ default \"x\" nil }}", ""), "x");
    }

    #[test]
    fn bare_dollar_is_root() {
        assert_eq!(
            render("{{ with .Values.a }}{{ $.Chart.Name }}{{ end }}", "a: 1"),
            "demo"
        );
    }

    #[test]
    fn nested_with_blocks() {
        let values = "outer:\n  inner:\n    x: 5\n";
        let tpl = "{{ with .Values.outer }}{{ with .inner }}{{ .x }}{{ end }}{{ end }}";
        assert_eq!(render(tpl, values), "5");
    }

    #[test]
    fn nested_if_inside_range() {
        let values = "ports:\n  - 80\n  - 8080\n  - 443\n";
        let tpl = "{{ range .Values.ports }}{{ if gt . 100 }}{{ . }} {{ end }}{{ end }}";
        assert_eq!(render(tpl, values), "8080 443 ");
    }

    #[test]
    fn arity_errors_are_reported() {
        assert!(render_template("t", "{{ quote 1 2 }}", &ctx("")).is_err());
        assert!(render_template("t", "{{ default 1 }}", &ctx("")).is_err());
        assert!(render_template("t", "{{ add 1 \"x\" }}", &ctx("")).is_err());
    }

    #[test]
    fn pipe_into_value_errors() {
        assert!(render_template("t", "{{ 1 | .Values.x }}", &ctx("x: 2")).is_err());
    }

    #[test]
    fn define_and_include_in_one_file() {
        let tpl = "{{ define \"labels\" }}app: {{ .Values.app }}{{ end }}labels:\n  {{ include \"labels\" . }}";
        assert_eq!(render(tpl, "app: web"), "labels:\n  app: web");
    }

    #[test]
    fn include_pipes_into_nindent() {
        let tpl = "{{ define \"sel\" }}app: web\ntier: front{{ end }}selector:{{ include \"sel\" . | nindent 2 }}";
        assert_eq!(render(tpl, ""), "selector:\n  app: web\n  tier: front");
    }

    #[test]
    fn template_keyword_splices_directly() {
        let tpl =
            "{{ define \"greet\" }}hello {{ . }}{{ end }}{{ template \"greet\" .Values.who }}";
        assert_eq!(render(tpl, "who: world"), "hello world");
    }

    #[test]
    fn include_context_rescopes_dot() {
        let tpl = "{{ define \"port\" }}{{ .port }}{{ end }}{{ include \"port\" .Values.svc }}";
        assert_eq!(render(tpl, "svc:\n  port: 8443\n"), "8443");
    }

    #[test]
    fn defines_are_shared_across_files() {
        let helpers = parse_template(
            "_helpers.tpl",
            "{{ define \"common.name\" }}{{ .Release.Name }}-app{{ end }}",
        )
        .unwrap();
        let main = parse_template("deploy.yaml", "name: {{ include \"common.name\" . }}").unwrap();
        let shared = merge_defines(&[helpers]);
        let out = render_parsed("deploy.yaml", &main, &shared, &ctx("")).unwrap();
        assert_eq!(out, "name: rel-app");
    }

    #[test]
    fn unknown_partial_errors() {
        let err = render_template("t", "{{ include \"missing\" . }}", &ctx("")).unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn recursive_includes_are_bounded() {
        let tpl = "{{ define \"loop\" }}{{ include \"loop\" . }}{{ end }}{{ include \"loop\" . }}";
        let err = render_template("t", tpl, &ctx("")).unwrap_err();
        assert!(err.to_string().contains("recursion"));
    }

    #[test]
    fn later_define_wins() {
        let tpl =
            "{{ define \"x\" }}one{{ end }}{{ define \"x\" }}two{{ end }}{{ include \"x\" . }}";
        assert_eq!(render(tpl, ""), "two");
    }

    #[test]
    fn define_requires_quoted_name() {
        assert!(render_template("t", "{{ define unquoted }}x{{ end }}", &ctx("")).is_err());
    }

    #[test]
    fn defined_names_listed() {
        let parsed = parse_template(
            "t",
            "{{ define \"a\" }}1{{ end }}{{ define \"b\" }}2{{ end }}",
        )
        .unwrap();
        let mut names: Vec<&str> = parsed.defined_names().collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }
}
