//! Table 3 cross-crate check: the headline claims of §4.4.3.

use inside_job::baselines::{run_comparison, Detection};
use inside_job::core::MisconfigId;

#[test]
fn our_solution_is_the_only_one_finding_everything() {
    let rows = run_comparison();
    let ours = rows.iter().find(|r| r.tool == "Our solution").unwrap();
    for id in MisconfigId::ALL {
        assert_eq!(ours.cell(id), Detection::Found, "ours on {id}");
    }
    // No baseline tool fully finds any of the label-collision or port-delta
    // classes.
    for row in rows.iter().filter(|r| r.tool != "Our solution") {
        for id in [
            MisconfigId::M1,
            MisconfigId::M2,
            MisconfigId::M4A,
            MisconfigId::M4B,
            MisconfigId::M4C,
            MisconfigId::M4Star,
            MisconfigId::M5A,
            MisconfigId::M5B,
        ] {
            assert_ne!(row.cell(id), Detection::Found, "{} on {id}", row.tool);
        }
    }
}

#[test]
fn m6_and_m7_are_the_most_recognized() {
    // §4.4.3: "the lack of network policies (M6) and host network mapping
    // (M7) are the most recognized."
    let rows = run_comparison();
    let found_count = |id: MisconfigId| {
        rows.iter()
            .filter(|r| r.tool != "Our solution" && r.cell(id) == Detection::Found)
            .count()
    };
    let m6 = found_count(MisconfigId::M6);
    let m7 = found_count(MisconfigId::M7);
    assert!(m7 >= 9, "M7 found by most tools: {m7}");
    assert!(m6 >= 4, "M6 found by several tools: {m6}");
    for id in [
        MisconfigId::M1,
        MisconfigId::M2,
        MisconfigId::M3,
        MisconfigId::M4A,
    ] {
        assert!(found_count(id) == 0, "{id} should be found by no baseline");
    }
}

#[test]
fn kubescape_partially_hints_at_label_collisions() {
    let rows = run_comparison();
    let kubescape = rows.iter().find(|r| r.tool == "Kubescape").unwrap();
    for id in [MisconfigId::M4A, MisconfigId::M4B, MisconfigId::M4C] {
        assert_eq!(kubescape.cell(id), Detection::Partial, "kubescape on {id}");
    }
}

#[test]
fn static_tools_get_dashes_for_runtime_classes() {
    let rows = run_comparison();
    for tool in [
        "Checkov",
        "Kubeaudit",
        "KubeLinter",
        "Kube-score",
        "Kubesec",
        "SLI-KUBE",
    ] {
        let row = rows.iter().find(|r| r.tool == tool).unwrap();
        for id in [
            MisconfigId::M1,
            MisconfigId::M2,
            MisconfigId::M3,
            MisconfigId::M5A,
        ] {
            assert_eq!(row.cell(id), Detection::NotApplicable, "{tool} on {id}");
        }
        assert_eq!(row.cell(MisconfigId::M4Star), Detection::NotApplicable);
    }
}
