//! # ij-probe — runtime analysis of a (simulated) cluster
//!
//! Implements the paper's runtime-analysis methodology (§4.2), modelled on
//! Kubesonde: after installing an application into a fresh cluster, observe
//! each pod's open sockets from the network side, then repeat the
//! observation after a restart to separate stable ports from dynamic
//! (ephemeral) ones. Two special cases get the same treatment as in the
//! paper:
//!
//! * **Host network (M7):** a `hostNetwork` pod's snapshot contains every
//!   socket on its node. A pre-install [`HostBaseline`] is captured and
//!   subtracted so node daemons are not attributed to the application
//!   (§4.2.2).
//! * **UDP flakiness (§5.1.2):** the real probe sporadically reported
//!   random UDP ports; those false positives amounted to ~8% of the raw
//!   findings. The same pathology is injected here (seeded), and the
//!   double-run filter removes single-occurrence ephemeral-range UDP ports.
//!   Both the injection rate and the filter are configurable so the
//!   false-positive ablation can be reproduced.
//!
//! The crate also provides the batch reachability matrix ([`ReachMatrix`])
//! behind the paper's §4.3.2 network-policy impact study: the full
//! src × dst × socket reachability computed in one pass over the cluster's
//! cached policy index, bit-for-bit identical to the sequential per-pair
//! probe it replaced.

mod baseline;
mod matrix;
mod reach;
mod report;
mod snapshot;
mod topology;

pub use baseline::HostBaseline;
pub use matrix::ReachMatrix;
pub use reach::{reachable_pod_endpoints, reachable_service_ports, ReachableEndpoint};
pub use report::{PodRuntime, RuntimeReport};
pub use snapshot::{ObservedSocket, ProbeConfig, RuntimeAnalyzer, Snapshot};
pub use topology::connectivity_dot;
