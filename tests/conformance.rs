//! Regression checks for the vendored fixture charts and the committed
//! conformance artifacts.
//!
//! `CONFORMANCE.json` and `CONFORMANCE.md` are committed like the
//! `BENCH_*.json` baselines: this suite re-runs the differential harness
//! over `fixtures/charts/` and byte-compares the fresh artifacts against
//! the committed ones, so any behavior change — a chart gaining support, a
//! pipeline pair drifting apart, a new finding — shows up as a reviewable
//! diff instead of a silent skew. Regenerate with:
//!
//! ```text
//! cargo run --bin ij -- conform fixtures/charts \
//!     --json CONFORMANCE.json --report CONFORMANCE.md
//! ```

use inside_job::datasets::{run_conformance, ChartStatus, ConformanceReport};
use std::fs;
use std::path::Path;

fn fixtures_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/charts"))
}

fn fresh_report() -> ConformanceReport {
    run_conformance(fixtures_dir()).expect("fixtures/charts walks")
}

#[test]
fn fixture_corpus_is_large_and_mostly_supported() {
    let report = fresh_report();
    assert!(
        report.charts.len() >= 10,
        "the vendored corpus shrank to {} chart(s)",
        report.charts.len()
    );
    assert!(
        report.conformant() >= 10,
        "only {} of {} fixture charts are conformant",
        report.conformant(),
        report.charts.len()
    );
    assert_eq!(
        report.divergent(),
        0,
        "pipeline divergence on vendored charts: {:?}",
        report
            .charts
            .iter()
            .filter(|c| matches!(c.status, ChartStatus::Divergent { .. }))
            .collect::<Vec<_>>()
    );
}

#[test]
fn committed_artifacts_match_a_fresh_run() {
    let report = fresh_report();
    let json = fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("CONFORMANCE.json"))
        .expect("CONFORMANCE.json committed");
    assert_eq!(
        report.to_json(),
        json,
        "CONFORMANCE.json is stale; regenerate with \
         `cargo run --bin ij -- conform fixtures/charts --json CONFORMANCE.json \
         --report CONFORMANCE.md` and review the diff"
    );
    let markdown = fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("CONFORMANCE.md"))
        .expect("CONFORMANCE.md committed");
    assert_eq!(report.to_markdown(), markdown, "CONFORMANCE.md is stale");
}

#[test]
fn every_unsupported_fixture_names_its_feature() {
    // No silent skips: a chart the harness cannot carry end-to-end must say
    // exactly which feature it died on, with a path relative to the
    // fixtures directory so the committed artifact is machine-independent.
    let report = fresh_report();
    for chart in &report.charts {
        if let ChartStatus::Unsupported { feature } = &chart.status {
            assert!(
                !feature.trim().is_empty(),
                "{}: empty unsupported-feature text",
                chart.chart
            );
            assert!(
                !feature.contains(&fixtures_dir().display().to_string()),
                "{}: absolute path leaked into the artifact: {feature}",
                chart.chart
            );
        }
    }
}

#[test]
fn conformant_charts_exercised_real_work() {
    // The harness must actually have rendered objects and compared policy
    // verdicts — a conformant chart with zero work would be vacuous.
    let report = fresh_report();
    let objects: usize = report.charts.iter().map(|c| c.objects).sum();
    let verdicts: usize = report.charts.iter().map(|c| c.verdicts).sum();
    assert!(
        objects >= 20,
        "only {objects} objects rendered across the corpus"
    );
    assert!(verdicts >= 100, "only {verdicts} policy verdicts compared");
    for chart in &report.charts {
        if matches!(chart.status, ChartStatus::Conformant) {
            assert!(
                chart.objects > 0,
                "{}: conformant but rendered nothing",
                chart.chart
            );
            assert!(
                chart.verdicts > 0,
                "{}: conformant but compared no verdicts",
                chart.chart
            );
        }
    }
}
