//! The defense layer against the procedural corpus: for every
//! statically-detectable rule, a generated application carrying that (and
//! only that) injection must be rejected by [`GuardAdmission`] at install
//! time — and [`ContinuousAuditor`] must report the full
//! introduced/persisting/resolved delta arc on a generated application.

use ij_chart::Release;
use ij_cluster::{Cluster, ClusterConfig, InstallError};
use ij_datasets::{build_app, AppSpec, Archetype, CorpusGenerator, CorpusProfile, MisconfigMix};
use ij_guard::{ContinuousAuditor, GuardAdmission, GuardPolicy, PolicySynthesizer};
use ij_probe::HostBaseline;

/// A generator whose every application carries exactly the injections of
/// `overrides` (rates on an otherwise clean mix) and nothing else. The
/// population is pure `DataPipeline` archetype, whose propensity scale is
/// 1.0 for every rule exercised here, so a rate of `1.0` means "exactly
/// one injection per app" (1.5 for M5B: one or two).
fn generated(overrides: &[(&str, f64)], apps: usize, seed: u64) -> CorpusGenerator {
    let mut mix = MisconfigMix::clean();
    for (rule, rate) in overrides {
        mix.set(rule, *rate).expect("known rule");
    }
    CorpusGenerator::new(
        CorpusProfile::builder()
            .name("guard-test")
            .apps(apps)
            .seed(seed)
            .weight(Archetype::MicroserviceMesh, 0)
            .weight(Archetype::Monolith, 0)
            .weight(Archetype::DataPipeline, 1)
            .weight(Archetype::HostNetworkLegacy, 0)
            .weight(Archetype::PolicyMature, 0)
            .mix(mix)
            .build(),
    )
}

fn guarded_cluster(policy: GuardPolicy) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.push_admission(Box::new(GuardAdmission::new(policy)));
    cluster
}

/// Renders `spec` and installs it into a guarded cluster, returning the
/// denial (if any).
fn install_denied(spec: &AppSpec, policy: GuardPolicy) -> Option<String> {
    let built = build_app(spec);
    let rendered = built
        .chart()
        .render(&Release::new(&spec.name, "default"))
        .expect("generated charts render");
    let mut cluster = guarded_cluster(policy);
    match cluster.install(&rendered) {
        Ok(_) => None,
        Err(err) => {
            assert!(
                matches!(err, InstallError::Denied { .. }),
                "expected an admission denial, got {err}"
            );
            Some(err.to_string())
        }
    }
}

#[test]
fn admission_rejects_generated_label_collisions_m4() {
    for spec in generated(&[("m4a", 1.0)], 4, 11).iter() {
        assert_eq!(spec.plan.m4a, 1, "{}: scale-1 rate 1.0 is exact", spec.name);
        let denial = install_denied(&spec, GuardPolicy::default())
            .unwrap_or_else(|| panic!("{} was admitted", spec.name));
        assert!(denial.contains("label collision (M4)"), "{denial}");
    }
}

#[test]
fn admission_rejects_generated_undeclared_targets_m5b() {
    for spec in generated(&[("m5b", 1.0)], 4, 12).iter() {
        assert!(
            spec.plan.m5b >= 1,
            "{}: rate 1.5 injects at least one",
            spec.name
        );
        let denial = install_denied(&spec, GuardPolicy::default())
            .unwrap_or_else(|| panic!("{} was admitted", spec.name));
        assert!(denial.contains("M5B"), "{denial}");
    }
}

#[test]
fn admission_rejects_generated_targetless_services_m5d() {
    // The generated M5D service has a selector that matches nothing, which
    // is only decidable at admission in strict ordering mode (the charts
    // apply workloads before services, so the check is sound here).
    let strict = GuardPolicy {
        check_unmatched_selectors: true,
        ..Default::default()
    };
    for spec in generated(&[("m5d", 1.0)], 4, 13).iter() {
        assert_eq!(spec.plan.m5d, 1, "{}: scale-1 rate 1.0 is exact", spec.name);
        let denial = install_denied(&spec, strict.clone())
            .unwrap_or_else(|| panic!("{} was admitted", spec.name));
        assert!(denial.contains("M5D"), "{denial}");
    }
}

#[test]
fn admission_rejects_generated_host_network_m7() {
    for spec in generated(&[("m7", 1.0)], 4, 14).iter() {
        assert_eq!(spec.plan.m7, 1, "{}: scale-1 rate 1.0 is exact", spec.name);
        let denial = install_denied(&spec, GuardPolicy::default())
            .unwrap_or_else(|| panic!("{} was admitted", spec.name));
        assert!(denial.contains("M7"), "{denial}");
    }
}

#[test]
fn admission_rejects_cross_application_collisions_m4star() {
    // Every app in this population joins a shared collision token group;
    // with more apps than tokens, at least two share one. The first app of
    // such a pair installs cleanly; the second is the cross-application
    // impersonation the guard must stop (the check Kubernetes never makes).
    let generator = generated(&[("m4star", 1.0)], 20, 15);
    let specs: Vec<AppSpec> = generator.iter().collect();
    let (first, second) = specs
        .iter()
        .enumerate()
        .find_map(|(j, b)| {
            specs[..j]
                .iter()
                .find(|a| {
                    a.plan
                        .m4star_tokens
                        .iter()
                        .any(|t| b.plan.m4star_tokens.contains(t))
                })
                .map(|a| (a, b))
        })
        .expect("20 apps over 16 tokens must share one");

    let mut cluster = guarded_cluster(GuardPolicy::default());
    let install = |cluster: &mut Cluster, spec: &AppSpec| {
        let built = build_app(spec);
        let rendered = built
            .chart()
            .render(&Release::new(&spec.name, "default"))
            .expect("generated charts render");
        cluster.install(&rendered)
    };
    install(&mut cluster, first).expect("first token carrier is admitted");
    let err = install(&mut cluster, second).expect_err("second carrier collides");
    assert!(matches!(err, InstallError::Denied { .. }), "{err}");
    assert!(err.to_string().contains("label collision (M4)"), "{err}");
}

#[test]
fn auditor_reports_the_full_delta_arc_on_a_generated_app() {
    // A generated app whose only findings are M6 (degraded policy posture)
    // and one M7 exporter. Round 1 introduces both; synthesizing policies
    // resolves M6 while M7 persists; round 3 is quiet.
    let spec = generated(&[("m6", 1.0), ("m7", 1.0)], 1, 16).spec(0);
    assert_eq!(spec.plan.m7, 1);
    assert!(spec.plan.netpol.yields_m6());

    let built = build_app(&spec);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 5,
        behaviors: built.registry(),
    });
    let baseline = HostBaseline::capture(&cluster);
    let rendered = built
        .chart()
        .render(&Release::new(&spec.name, "default"))
        .expect("generated charts render");
    cluster.install(&rendered).expect("unguarded install");

    let mut auditor = ContinuousAuditor::new(
        &spec.name,
        baseline,
        ij_core::chart_defines_network_policies(built.chart()),
    );
    let first = auditor.tick(&mut cluster);
    let ids = |findings: &[ij_core::Finding]| {
        let mut ids: Vec<_> = findings.iter().map(|f| f.id).collect();
        ids.dedup();
        ids
    };
    assert_eq!(
        ids(&first.introduced),
        vec![ij_core::MisconfigId::M6, ij_core::MisconfigId::M7]
    );
    assert!(first.resolved.is_empty() && first.persisting.is_empty());

    // Mitigation: synthesize least-privilege policies from the declared
    // ports and apply them. M6 resolves; M7 cannot be policied away.
    let statics = ij_core::StaticModel::from_objects(cluster.objects());
    let outcome = PolicySynthesizer::new().synthesize(&statics);
    assert!(!outcome.policies.is_empty());
    for obj in outcome.objects() {
        cluster.apply(obj).expect("synthesized policies admitted");
    }
    let second = auditor.tick(&mut cluster);
    assert_eq!(ids(&second.resolved), vec![ij_core::MisconfigId::M6]);
    assert_eq!(ids(&second.persisting), vec![ij_core::MisconfigId::M7]);
    assert!(second.introduced.is_empty(), "{:#?}", second.introduced);

    let third = auditor.tick(&mut cluster);
    assert!(third.is_quiet());
    assert_eq!(ids(auditor.latest()), vec![ij_core::MisconfigId::M7]);
}
