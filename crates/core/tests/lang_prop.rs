//! Parser-robustness fuzzing for the rule expression language.
//!
//! Three generators stress the lex → parse → compile pipeline:
//!
//! 1. **Token soups** — random sequences of valid tokens, junk characters,
//!    and unterminated strings;
//! 2. **Mutated valid expressions** — every `when` expression from the
//!    built-in pack with characters deleted, inserted, duplicated, or
//!    replaced;
//! 3. **Mutated pack documents** — the whole built-in pack source with the
//!    same mutations applied, pushed through [`RulePack::load`].
//!
//! The property is uniform: the pipeline must return `Ok` or a typed
//! [`LangError`] whose span carries 1-based line/column positions inside
//! the document — it must never panic. Case count follows `PROPTEST_CASES`
//! (default 64, CI runs 256).

use ij_core::lang::{parse, LangError};
use ij_core::{RulePack, RuleRegistry};
use proptest::prelude::*;
use std::str::FromStr;

/// Every expression the built-in pack compiles, plus a few synthetic ones
/// exercising lists, calls, and nesting — the seed corpus for mutation.
fn seed_expressions() -> Vec<String> {
    let mut seeds: Vec<String> = RulePack::builtin()
        .rules()
        .map(|r| r.expression().to_string())
        .collect();
    seeds.extend(
        [
            "socket.port IN [80, 443, 8080] && !unit.host_network",
            "core.contains(core.lower(unit.name), \"db\") || labels.is(\"tier\", \"backend\")",
            "core.len(core.concat(unit.name, \"/\", unit.namespace)) > 3",
            "(unit.declared_count >= 1) == !unit.has_dynamic_ports",
            "core.ternary(labels.has(\"app\"), labels.get(\"app\"), unit.name) != \"\"",
        ]
        .map(String::from),
    );
    seeds
}

/// A fragment soup alphabet: legal tokens, near-miss junk, and pathological
/// sequences (unterminated strings, lone `&`, bad escapes, deep nesting).
fn arb_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        prop::sample::select(
            [
                "unit.name",
                "socket.port",
                "app.unit_count",
                "labels.has",
                "core.ternary",
                "ports.declared",
                "CONTAINS",
                "IN",
                "true",
                "false",
                "&&",
                "||",
                "!",
                "==",
                "!=",
                "<=",
                ">=",
                "<",
                ">",
                "(",
                ")",
                "[",
                "]",
                ",",
                "\"text\"",
                "42",
                "3.5",
                "0",
            ]
            .map(String::from)
            .to_vec()
        ),
        prop::sample::select(
            [
                "\"unterminated",
                "\"bad\\q\"",
                "&",
                "|",
                "=",
                "@",
                "#",
                "$",
                "~",
                "..",
                ".port",
                "unit.",
                "((((((((((((((((((((((((((((((((((",
                "]]]]",
                "\u{0}",
                "héllo",
                "日本語",
                "9999999999999999999999999",
            ]
            .map(String::from)
            .to_vec()
        ),
    ]
}

fn arb_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_fragment(), 0..24).prop_map(|frags| frags.join(" "))
}

/// One random point mutation: delete, insert, duplicate a slice, or
/// replace a character. Indexes are snapped to char boundaries so the
/// mutant is always valid UTF-8 (the parser takes `&str`).
fn mutate(src: &str, op: u8, at: usize, ins: char) -> String {
    let mut out = String::from(src);
    if out.is_empty() {
        out.push(ins);
        return out;
    }
    let mut idx = at % (out.len() + 1);
    while idx < out.len() && !out.is_char_boundary(idx) {
        idx += 1;
    }
    match op % 4 {
        0 => {
            if idx < out.len() {
                out.remove(idx);
            }
        }
        1 => out.insert(idx, ins),
        2 => {
            let tail: String = out[idx..].chars().take(6).collect();
            out.insert_str(idx, &tail);
        }
        _ => {
            if idx < out.len() {
                out.remove(idx);
                out.insert(idx, ins);
            }
        }
    }
    out
}

fn arb_mutation_char() -> impl Strategy<Value = char> {
    prop::sample::select(vec![
        '!', '&', '|', '(', ')', '[', ']', '"', '.', ',', '=', '<', '>', ' ', '\n', '\t', 'x', '7',
        '\\', '\u{0}', 'é',
    ])
}

/// Spans must point inside the document: 1-based, with the line index no
/// larger than the number of lines in the source.
fn assert_span_sane(err: &LangError, src: &str, what: &str) {
    let lines = src.lines().count().max(1) as u32;
    assert!(
        err.span.line >= 1 && err.span.line <= lines + 1,
        "{what}: error line {} outside document of {lines} lines\nsource: {src:?}\nerror: {err}",
        err.span.line,
    );
    assert!(
        err.span.column >= 1,
        "{what}: zero column in error {err}\nsource: {src:?}",
    );
    assert!(!err.message.is_empty(), "{what}: empty error message");
}

/// Wraps a bare expression into a minimal pack document so mutated
/// expressions also cover the type checker, not just the parser.
fn pack_with_when(expr: &str) -> String {
    format!(
        "rule fuzz\n  class = M7\n  select = socket\n  evidence = runtime\n  \
         when = {expr}\n  message = fired\nend\n"
    )
}

proptest! {
    /// Random token soups: parse never panics, and failures are
    /// positioned typed errors.
    #[test]
    fn token_soup_never_panics(soup in arb_soup()) {
        if let Err(err) = parse(&soup) {
            assert_span_sane(&err, &soup, "parse");
        }
    }

    /// Valid expressions with one to four point mutations: the full
    /// parse → type-check pipeline returns `Ok` or a positioned error.
    #[test]
    fn mutated_expressions_never_panic(
        seed_idx in 0usize..13,
        ops in prop::collection::vec((any::<u8>(), any::<u16>(), arb_mutation_char()), 1..5),
    ) {
        let seeds = seed_expressions();
        let mut expr = seeds[seed_idx % seeds.len()].clone();
        for (op, at, ins) in ops {
            expr = mutate(&expr, op, at as usize, ins);
        }
        if let Err(err) = parse(&expr) {
            assert_span_sane(&err, &expr, "parse");
        }
        let doc = pack_with_when(&expr);
        if let Err(err) = RulePack::from_str(&doc) {
            assert_span_sane(&err, &doc, "pack compile");
        }
    }

    /// The whole built-in pack document, mutated: `RulePack::load` (and
    /// registration of whatever survives) never panics.
    #[test]
    fn mutated_pack_documents_never_panic(
        ops in prop::collection::vec((any::<u8>(), any::<u32>(), arb_mutation_char()), 1..8),
    ) {
        let mut doc = ij_core::lang::BUILTIN_PACK_SOURCE.to_string();
        for (op, at, ins) in ops {
            doc = mutate(&doc, op, at as usize, ins);
        }
        match RulePack::from_str(&doc) {
            Ok(pack) => {
                // A surviving mutant must still register cleanly or fail
                // with the typed unknown-rule error — never panic.
                let mut registry = RuleRegistry::standard();
                let _ = pack.register_into(&mut registry);
            }
            Err(err) => assert_span_sane(&err, &doc, "pack load"),
        }
    }
}
