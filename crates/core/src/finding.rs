//! Misconfiguration taxonomy (Table 1 of the paper) and findings.

use ij_model::Protocol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The thirteen misconfiguration classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MisconfigId {
    /// Port open on container is not declared.
    M1,
    /// Container allocates dynamic (ephemeral) ports.
    M2,
    /// Port declared on container is not open.
    M3,
    /// Compute unit collision: identical label sets on unrelated units.
    M4A,
    /// Service label collision: multiple services target one compute unit.
    M4B,
    /// Compute unit subset collision: one service selects unrelated units.
    M4C,
    /// Global (cross-application) label collision.
    M4Star,
    /// Service targets a declared but unopened port.
    M5A,
    /// Service targets an undeclared port.
    M5B,
    /// Headless service port is not available.
    M5C,
    /// Service without target.
    M5D,
    /// Lack of (enabled) network policies.
    M6,
    /// Container binds to the host network.
    M7,
}

impl MisconfigId {
    /// Every class, in Table 1 order.
    pub const ALL: [MisconfigId; 13] = [
        MisconfigId::M1,
        MisconfigId::M2,
        MisconfigId::M3,
        MisconfigId::M4A,
        MisconfigId::M4B,
        MisconfigId::M4C,
        MisconfigId::M4Star,
        MisconfigId::M5A,
        MisconfigId::M5B,
        MisconfigId::M5C,
        MisconfigId::M5D,
        MisconfigId::M6,
        MisconfigId::M7,
    ];

    /// Paper spelling (`M4*` for the global collision).
    pub fn as_str(&self) -> &'static str {
        match self {
            MisconfigId::M1 => "M1",
            MisconfigId::M2 => "M2",
            MisconfigId::M3 => "M3",
            MisconfigId::M4A => "M4A",
            MisconfigId::M4B => "M4B",
            MisconfigId::M4C => "M4C",
            MisconfigId::M4Star => "M4*",
            MisconfigId::M5A => "M5A",
            MisconfigId::M5B => "M5B",
            MisconfigId::M5C => "M5C",
            MisconfigId::M5D => "M5D",
            MisconfigId::M6 => "M6",
            MisconfigId::M7 => "M7",
        }
    }

    /// Table 1 "Description" column.
    pub fn description(&self) -> &'static str {
        match self {
            MisconfigId::M1 => "Port open on container is not declared",
            MisconfigId::M2 => "Container allocates dynamic ports",
            MisconfigId::M3 => "Port declared on container is not open",
            MisconfigId::M4A => "Compute unit collision",
            MisconfigId::M4B => "Service label collision",
            MisconfigId::M4C => "Compute unit subset collision",
            MisconfigId::M4Star => "Global label collision",
            MisconfigId::M5A => "Service targets unopened port",
            MisconfigId::M5B => "Service targets undeclared port",
            MisconfigId::M5C => "Headless service port is not available",
            MisconfigId::M5D => "Service without target",
            MisconfigId::M6 => "Lack of network policies",
            MisconfigId::M7 => "Container binds to host network",
        }
    }

    /// Table 1 "Issue" column.
    pub fn issue(&self) -> &'static str {
        match self {
            MisconfigId::M1 => "Listening on all interfaces by default",
            MisconfigId::M2 => "Dynamic ports cannot be controlled",
            MisconfigId::M3 => "Missing checks on declared ports",
            MisconfigId::M4A | MisconfigId::M4B | MisconfigId::M4C | MisconfigId::M4Star => {
                "Missing checks on label collision"
            }
            MisconfigId::M5A | MisconfigId::M5B | MisconfigId::M5C | MisconfigId::M5D => {
                "Missing checks on declared ports / target labels"
            }
            MisconfigId::M6 => "No isolation between containers",
            MisconfigId::M7 => "Network policies do not apply to host",
        }
    }

    /// Table 1 "Possible attack(s)" column.
    pub fn possible_attacks(&self) -> &'static [&'static str] {
        match self {
            MisconfigId::M1 => &["Command and control", "Sensitive port information"],
            MisconfigId::M2 => &["Loosened security policies"],
            MisconfigId::M3 => &["Data interception / spoofing", "Data exfiltration"],
            MisconfigId::M4A | MisconfigId::M4B | MisconfigId::M4C | MisconfigId::M4Star => {
                &["Man in the middle", "Server impersonation"]
            }
            MisconfigId::M5A => &["Data interception"],
            MisconfigId::M5B => &["Data spoofing"],
            MisconfigId::M5C => &["Denial of service"],
            MisconfigId::M5D => &["Bypassing security checks"],
            MisconfigId::M6 => &["Data interception / spoofing", "Privilege escalation"],
            MisconfigId::M7 => &["Bypassing network controls"],
        }
    }

    /// Mitigation guidance (§3.5).
    pub fn mitigation(&self) -> &'static str {
        match self {
            MisconfigId::M1 => {
                "Declare every port the container opens in the resource configuration; \
                 mind ports that depend on optional chart parameters"
            }
            MisconfigId::M2 => {
                "Pin dynamic ports to static values via application configuration, or \
                 document the dynamic range so policy tooling does not mis-learn it"
            }
            MisconfigId::M3 => "Remove declarations for ports the application never opens",
            MisconfigId::M4A | MisconfigId::M4B | MisconfigId::M4C | MisconfigId::M4Star => {
                "Make label sets unique per component after understanding why they are shared"
            }
            MisconfigId::M5A | MisconfigId::M5B => {
                "Bind services only to ports that are declared and actually open"
            }
            MisconfigId::M5C => "Remove the port setting; headless services do not support it",
            MisconfigId::M5D => "Give every service a selector matching an existing compute unit",
            MisconfigId::M6 => {
                "Define and enable NetworkPolicies selecting every pod, allowing only \
                 necessary connections"
            }
            MisconfigId::M7 => {
                "Set hostNetwork to false unless functionality demands it; audit the pod \
                 in depth otherwise"
            }
        }
    }

    /// Severity as assessed through the disclosure feedback (§5.1.1): label
    /// collisions rated most critical, declared-but-closed ports least.
    pub fn severity(&self) -> Severity {
        match self {
            MisconfigId::M4A | MisconfigId::M4B | MisconfigId::M4C | MisconfigId::M4Star => {
                Severity::High
            }
            MisconfigId::M1 | MisconfigId::M2 | MisconfigId::M6 | MisconfigId::M7 => {
                Severity::Medium
            }
            MisconfigId::M5A | MisconfigId::M5B | MisconfigId::M5C | MisconfigId::M5D => {
                Severity::Medium
            }
            MisconfigId::M3 => Severity::Low,
        }
    }

    /// True for the class that only exists across applications.
    pub fn is_cluster_wide(&self) -> bool {
        matches!(self, MisconfigId::M4Star)
    }

    /// True when detection requires runtime observation.
    pub fn needs_runtime(&self) -> bool {
        matches!(
            self,
            MisconfigId::M1
                | MisconfigId::M2
                | MisconfigId::M3
                | MisconfigId::M5A
                | MisconfigId::M5C
        )
    }
}

impl fmt::Display for MisconfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Coarse severity, per the disclosure assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Requires several other weaknesses to matter.
    Low,
    /// Exploitable in combination with application behaviour.
    Medium,
    /// Directly enables impersonation / man-in-the-middle.
    High,
}

/// One detected misconfiguration instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Misconfiguration class.
    pub id: MisconfigId,
    /// Application (release) the finding belongs to.
    pub app: String,
    /// Qualified name of the primary resource involved.
    pub object: String,
    /// Human-readable explanation.
    pub detail: String,
    /// Port involved, when the finding is port-specific.
    pub port: Option<u16>,
    /// Protocol of that port.
    pub protocol: Option<Protocol>,
}

impl Finding {
    /// Creates a finding without port information.
    pub fn new(
        id: MisconfigId,
        app: impl Into<String>,
        object: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Finding {
            id,
            app: app.into(),
            object: object.into(),
            detail: detail.into(),
            port: None,
            protocol: None,
        }
    }

    /// Builder-style port attachment.
    pub fn with_port(mut self, port: u16, protocol: Protocol) -> Self {
        self.port = Some(port);
        self.protocol = Some(protocol);
        self
    }

    /// A 64-bit identity hash (FNV-1a) over every field, with separators so
    /// field boundaries cannot alias. Continuous-audit tooling keys finding
    /// multisets by this instead of comparing full structs: two findings are
    /// equal exactly when their identities collide (up to 64-bit hash
    /// collision odds), and counting identities gives multiset semantics —
    /// two identical findings in one round stay two findings.
    pub fn identity(&self) -> u64 {
        identity_over(
            self.id,
            &self.app,
            &self.object,
            &self.detail,
            self.port,
            self.protocol,
        )
    }
}

/// The identity hash over resolved field bytes. [`Finding::identity`] and
/// the interned `CompactFinding::identity` both delegate here, so the two
/// representations key continuous-audit multisets identically by
/// construction.
pub(crate) fn identity_over(
    id: MisconfigId,
    app: &str,
    object: &str,
    detail: &str,
    port: Option<u16>,
    protocol: Option<Protocol>,
) -> u64 {
    const SEP: &[u8] = &[0xff];
    let mut h = fnv1a(FNV_OFFSET, id.as_str().as_bytes());
    h = fnv1a(h, SEP);
    h = fnv1a(h, app.as_bytes());
    h = fnv1a(h, SEP);
    h = fnv1a(h, object.as_bytes());
    h = fnv1a(h, SEP);
    h = fnv1a(h, detail.as_bytes());
    h = fnv1a(h, SEP);
    h = match port {
        Some(p) => fnv1a(h, &[1, p as u8, (p >> 8) as u8]),
        None => fnv1a(h, &[0]),
    };
    match protocol {
        Some(proto) => fnv1a(h, proto.as_str().as_bytes()),
        None => fnv1a(h, &[0]),
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} — {}", self.id, self.object, self.detail)
    }
}

/// Sorts findings into the canonical report order: by class (Table 1
/// order), then object, then port. Every rendered report — per-app
/// findings, census rows, disclosure output — uses this order, so both the
/// per-app pass and the cluster-wide M4\* attribution re-sort through it.
pub fn sort_canonical(findings: &mut [Finding]) {
    findings.sort_by(|a, b| (a.id, &a.object, a.port).cmp(&(b.id, &b.object, b.port)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_have_metadata() {
        for id in MisconfigId::ALL {
            assert!(!id.as_str().is_empty());
            assert!(!id.description().is_empty());
            assert!(!id.issue().is_empty());
            assert!(!id.mitigation().is_empty());
            assert!(!id.possible_attacks().is_empty());
        }
    }

    #[test]
    fn severity_ordering_matches_disclosure() {
        assert!(MisconfigId::M4A.severity() > MisconfigId::M1.severity());
        assert!(MisconfigId::M1.severity() > MisconfigId::M3.severity());
        assert_eq!(MisconfigId::M4Star.severity(), Severity::High);
    }

    #[test]
    fn cluster_wide_flag() {
        assert!(MisconfigId::M4Star.is_cluster_wide());
        assert!(!MisconfigId::M4A.is_cluster_wide());
    }

    #[test]
    fn runtime_requirements() {
        assert!(MisconfigId::M1.needs_runtime());
        assert!(MisconfigId::M2.needs_runtime());
        assert!(!MisconfigId::M4A.needs_runtime());
        assert!(!MisconfigId::M6.needs_runtime());
    }

    #[test]
    fn display_formats() {
        assert_eq!(MisconfigId::M4Star.to_string(), "M4*");
        let f = Finding::new(
            MisconfigId::M1,
            "app",
            "default/pod",
            "port 8080 open, undeclared",
        )
        .with_port(8080, Protocol::Tcp);
        assert!(f.to_string().contains("M1"));
        assert_eq!(f.port, Some(8080));
    }
}
