//! Responsible-disclosure report generation (§5 and Appendix A.1).
//!
//! The paper's disclosure to each organization included: the list of
//! identified misconfigurations and affected charts, the threat model, a
//! description of each misconfiguration type with suggested mitigations —
//! followed by an anonymous questionnaire (Figure 5). This module renders
//! exactly that package from a [`Census`], so a user of this library can
//! take its findings to the affected teams the same way the authors did.

use crate::finding::MisconfigId;
use crate::report::Census;
use std::collections::BTreeSet;

/// The threat-model paragraph included in every disclosure (§3.1).
pub const THREAT_MODEL: &str = "\
Threat model: we consider the lateral-movement tactic (cluster-internal \
networking technique) of the Microsoft Threat Matrix for Kubernetes. The \
attacker controls one container in a pod, with legitimate access to the \
cluster network but no other privileges (no root, no Kubernetes API). The \
cluster itself is assumed hardened according to security best practices.";

/// Renders the disclosure report for one organization (dataset).
pub fn disclosure_report(census: &Census, dataset: &str) -> String {
    let apps: Vec<_> = census
        .apps
        .iter()
        .filter(|a| a.dataset == dataset && a.is_affected())
        .collect();
    let classes: BTreeSet<MisconfigId> = apps
        .iter()
        .flat_map(|a| a.findings.iter().map(|f| f.id))
        .collect();
    let total: usize = apps.iter().map(|a| a.total()).sum();

    let mut out = String::new();
    out.push_str(&format!(
        "# Security disclosure — network misconfigurations in {dataset} charts\n\n"
    ));
    out.push_str(THREAT_MODEL);
    out.push_str("\n\n");
    out.push_str(&format!(
        "## Summary\n\nWe analyzed your publicly available Helm charts by installing each \
         into an isolated cluster and comparing declared configuration against observed \
         runtime behaviour. {} of your charts exhibit a total of {} network \
         misconfigurations across {} classes.\n\n",
        apps.len(),
        total,
        classes.len()
    ));

    out.push_str("## Misconfiguration classes found\n\n");
    for id in MisconfigId::ALL {
        if !classes.contains(&id) {
            continue;
        }
        let count: usize = apps.iter().map(|a| a.count_of(id)).sum();
        out.push_str(&format!(
            "### {} — {} ({} instance(s), severity {:?})\n\n{}.\nPossible attacks: {}.\n\n**Suggested mitigation:** {}.\n\n",
            id.as_str(),
            id.description(),
            count,
            id.severity(),
            id.issue(),
            id.possible_attacks().join(", "),
            id.mitigation()
        ));
    }

    out.push_str("## Affected charts\n\n");
    for app in &apps {
        out.push_str(&format!("### {} {}\n\n", app.app, app.version));
        for f in &app.findings {
            out.push_str(&format!("* [{}] `{}` — {}\n", f.id, f.object, f.detail));
        }
        out.push('\n');
    }

    out.push_str(
        "## Follow-up\n\nWe would appreciate your assessment of these findings. \
                  A short anonymous questionnaire is attached below; we are happy to \
                  discuss mitigations for any specific chart.\n\n",
    );
    out.push_str(questionnaire());
    out
}

/// The Figure 5 feedback questionnaire, rendered as markdown.
pub fn questionnaire() -> &'static str {
    "\
## Questionnaire

1. What is the size of your organization, if applicable? (1-99 / 100-999 / \
1,000-4,999 / 5,000+ / N.A.)
2. What is your current role?
3. How long have you been using Helm? (less than a year / 1-2 years / more)
4. Do you follow any guidelines to secure Helm Charts? If so, what are the main steps?
5. Do you use any software tools or services to check the security of Helm Charts?
6. Compared to Charts created by your organization, do you handle third-party \
Helm Charts differently?
7. Rate your agreement: (a) detecting lateral movement in a Kubernetes cluster \
is a critical issue; (b) I trust the port information in Helm Charts.
8. Do you use network policies with your cloud applications? (yes/no)
9. If yes: why, and what are their advantages and disadvantages?
10. If no: why not, and what are their disadvantages?
11. Rate your agreement: (a) undeclared ports are a critical security risk; \
(b) unused ports are a critical security risk; (c) label collision is a \
critical security risk.
12. If any rated non-critical: why are they not a critical security risk?
13. Did you receive a security report about Helm misconfigurations, including \
undeclared ports, unused ports and/or label collisions? (yes/no)
14. Are there false positives in the reported misconfigurations?
15. Rate your agreement: (a) the proposed mitigations are useful; (b) I will \
use a tool to detect the reported misconfigurations.
16. If the proposed mitigations were not useful, what would be a better option?
17. Does the report reflect the status of your project? Leave your feedback here.
18. Please leave any other feedback you may consider useful for our research.
"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::Finding;
    use crate::report::AppReport;

    fn census() -> Census {
        Census {
            apps: vec![
                AppReport {
                    app: "rabbitmq".into(),
                    dataset: "Bitnami".into(),
                    version: "11.9.1".into(),
                    findings: vec![
                        Finding::new(
                            MisconfigId::M1,
                            "rabbitmq",
                            "default/rabbitmq-server",
                            "port 9200/TCP open, undeclared",
                        ),
                        Finding::new(MisconfigId::M6, "rabbitmq", "rabbitmq", "no NetworkPolicy"),
                    ],
                },
                AppReport {
                    app: "clean-app".into(),
                    dataset: "Bitnami".into(),
                    version: "1.0.0".into(),
                    findings: vec![],
                },
                AppReport {
                    app: "other-org".into(),
                    dataset: "CNCF".into(),
                    version: "1.0.0".into(),
                    findings: vec![Finding::new(
                        MisconfigId::M7,
                        "other-org",
                        "default/x",
                        "hostNetwork",
                    )],
                },
            ],
        }
    }

    #[test]
    fn report_contains_required_sections() {
        let text = disclosure_report(&census(), "Bitnami");
        assert!(text.contains("Threat model"));
        assert!(text.contains("M1 — Port open on container is not declared"));
        assert!(text.contains("Suggested mitigation"));
        assert!(text.contains("rabbitmq 11.9.1"));
        assert!(text.contains("Questionnaire"));
        // Only affected charts of the addressed dataset appear.
        assert!(!text.contains("clean-app"));
        assert!(!text.contains("other-org"));
    }

    #[test]
    fn questionnaire_has_all_eighteen_items() {
        let q = questionnaire();
        for i in 1..=18 {
            assert!(q.contains(&format!("{i}. ")), "missing question {i}");
        }
    }
}
