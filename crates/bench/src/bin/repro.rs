//! Regenerates the paper's tables and figures from the full pipeline.
//!
//! ```text
//! repro [table2|table3|fig3a|fig3b|fig4a|fig4b|averages|defense|score|all]
//! ```
//!
//! With no argument, prints everything (`all`).

use ij_bench::{averages, defense, fig3a, fig3b, fig4a, fig4b, full_census, score, table2, table3};

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let needs_census = matches!(
        what.as_str(),
        "table2" | "fig3a" | "fig3b" | "fig4a" | "averages" | "all"
    );
    let census = needs_census.then(ij_bench::full_census);
    let census = census.as_ref();

    let print_section = |name: &str, body: String| {
        println!("==== {name} ====");
        println!("{body}");
    };

    match what.as_str() {
        "table2" => print_section("Table 2", table2(census.expect("census"))),
        "table3" => print_section("Table 3", table3()),
        "fig3a" => print_section("Figure 3a", fig3a(census.expect("census"))),
        "fig3b" => print_section("Figure 3b", fig3b(census.expect("census"))),
        "fig4a" => print_section("Figure 4a", fig4a(census.expect("census"))),
        "fig4b" => print_section("Figure 4b", fig4b()),
        "averages" => print_section("Averages", averages(census.expect("census"))),
        "defense" => print_section("Defense", defense()),
        "score" => print_section("Scoring", score()),
        "all" => {
            let census = census.expect("census");
            print_section("Table 2", table2(census));
            print_section("Figure 3a", fig3a(census));
            print_section("Figure 3b", fig3b(census));
            print_section("Figure 4a", fig4a(census));
            print_section("Averages", averages(census));
            print_section("Figure 4b", fig4b());
            print_section("Table 3", table3());
            print_section("Defense ablation", defense());
            print_section("Ground-truth scoring", score());
        }
        other => {
            eprintln!(
                "unknown artifact `{other}`; expected one of: table2 table3 fig3a fig3b fig4a fig4b averages defense score all"
            );
            std::process::exit(2);
        }
    }
    let _ = full_census; // referenced for the `all` closure above
}
