//! The top-level [`Object`] enum and manifest (de)serialization.

use crate::error::{Error, Result};
use crate::meta::ObjectMeta;
use crate::netpol::NetworkPolicy;
use crate::pod::Pod;
use crate::service::Service;
use crate::workload::{Workload, WorkloadKind};
use ij_yaml::{Map, Value};

/// Any Kubernetes object this workspace understands.
///
/// Kinds without networking relevance (ConfigMap, Secret, ServiceAccount, …)
/// are preserved verbatim as [`Object::Opaque`] so that charts containing
/// them still render and deploy.
#[derive(Debug, Clone, PartialEq)]
pub enum Object {
    /// A bare pod.
    Pod(Pod),
    /// A pod-templating workload (Deployment, StatefulSet, …).
    Workload(Workload),
    /// A service.
    Service(Service),
    /// A network policy.
    NetworkPolicy(NetworkPolicy),
    /// A namespace (carries labels for namespaceSelector matching).
    Namespace(ObjectMeta),
    /// Anything else, kept as raw YAML.
    Opaque {
        /// The manifest's `kind`.
        kind: String,
        /// Its metadata (best-effort decode).
        meta: ObjectMeta,
        /// The full raw document.
        raw: Value,
    },
}

impl Object {
    /// The object's `kind` string.
    pub fn kind(&self) -> &str {
        match self {
            Object::Pod(_) => "Pod",
            Object::Workload(w) => w.kind.as_str(),
            Object::Service(_) => "Service",
            Object::NetworkPolicy(_) => "NetworkPolicy",
            Object::Namespace(_) => "Namespace",
            Object::Opaque { kind, .. } => kind,
        }
    }

    /// The object's metadata.
    pub fn meta(&self) -> &ObjectMeta {
        match self {
            Object::Pod(p) => &p.meta,
            Object::Workload(w) => &w.meta,
            Object::Service(s) => &s.meta,
            Object::NetworkPolicy(n) => &n.meta,
            Object::Namespace(m) => m,
            Object::Opaque { meta, .. } => meta,
        }
    }

    /// Mutable metadata access (used by the chart renderer to stamp release
    /// names and namespaces).
    pub fn meta_mut(&mut self) -> &mut ObjectMeta {
        match self {
            Object::Pod(p) => &mut p.meta,
            Object::Workload(w) => &mut w.meta,
            Object::Service(s) => &mut s.meta,
            Object::NetworkPolicy(n) => &mut n.meta,
            Object::Namespace(m) => m,
            Object::Opaque { meta, .. } => meta,
        }
    }

    /// `namespace/name` handle.
    pub fn qualified_name(&self) -> String {
        self.meta().qualified_name()
    }

    /// Decodes one parsed YAML document.
    pub fn decode(doc: &Value) -> Result<Object> {
        let root = doc
            .as_map()
            .ok_or_else(|| Error::malformed("document root is not a mapping"))?;
        let kind = match root.get("kind") {
            Some(Value::Str(k)) => k.clone(),
            _ => return Err(Error::malformed("missing or non-string `kind`")),
        };
        if let Some(wk) = WorkloadKind::from_kind(&kind) {
            return Ok(Object::Workload(Workload::decode(wk, root)?));
        }
        match kind.as_str() {
            "Pod" => Ok(Object::Pod(Pod::decode(root)?)),
            "Service" => Ok(Object::Service(Service::decode(root)?)),
            "NetworkPolicy" => Ok(Object::NetworkPolicy(NetworkPolicy::decode(root)?)),
            "Namespace" => {
                let mut meta = ObjectMeta::decode(root)?;
                // A namespace is not itself namespaced.
                meta.namespace = String::new();
                Ok(Object::Namespace(meta))
            }
            _ => Ok(Object::Opaque {
                kind,
                meta: ObjectMeta::decode(root).unwrap_or_else(|_| ObjectMeta::named("unnamed")),
                raw: doc.clone(),
            }),
        }
    }

    /// Encodes back to a YAML value.
    pub fn encode(&self) -> Value {
        match self {
            Object::Pod(p) => p.encode(),
            Object::Workload(w) => w.encode(),
            Object::Service(s) => s.encode(),
            Object::NetworkPolicy(n) => n.encode(),
            Object::Namespace(meta) => {
                let mut m = Map::with_capacity(3);
                m.push_unchecked("apiVersion", Value::str("v1"));
                m.push_unchecked("kind", Value::str("Namespace"));
                let mut me = Map::with_capacity(2);
                me.push_unchecked("name", Value::str(&meta.name));
                if !meta.labels.is_empty() {
                    me.push_unchecked("labels", meta.labels.encode());
                }
                m.push_unchecked("metadata", Value::Map(me));
                Value::Map(m)
            }
            Object::Opaque { raw, .. } => raw.clone(),
        }
    }

    /// Renders the object as a YAML manifest.
    pub fn to_manifest(&self) -> String {
        ij_yaml::to_string(&self.encode())
    }
}

/// Decodes a single-document manifest.
pub fn decode_manifest(src: &str) -> Result<Object> {
    Object::decode(&ij_yaml::parse(src)?)
}

/// Decodes a multi-document manifest stream, skipping empty documents.
pub fn decode_manifests(src: &str) -> Result<Vec<Object>> {
    ij_yaml::parse_all(src)?
        .iter()
        .filter(|d| !d.is_null())
        .map(Object::decode)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
        - name: web
          image: nginx
---
apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  selector:
    app: web
  ports:
    - port: 80
---
apiVersion: v1
kind: ConfigMap
metadata:
  name: web-config
data:
  key: value
";

    #[test]
    fn decode_stream_with_mixed_kinds() {
        let objs = decode_manifests(STREAM).unwrap();
        assert_eq!(objs.len(), 3);
        assert_eq!(objs[0].kind(), "Deployment");
        assert_eq!(objs[1].kind(), "Service");
        assert_eq!(objs[2].kind(), "ConfigMap");
        assert!(matches!(objs[2], Object::Opaque { .. }));
    }

    #[test]
    fn round_trip_through_manifest() {
        let objs = decode_manifests(STREAM).unwrap();
        for obj in &objs {
            let text = obj.to_manifest();
            let back = decode_manifest(&text).unwrap();
            assert_eq!(&back, obj, "round trip failed for {}", obj.kind());
        }
    }

    #[test]
    fn namespace_is_cluster_scoped() {
        let obj = decode_manifest("kind: Namespace\nmetadata:\n  name: prod\n").unwrap();
        assert_eq!(obj.kind(), "Namespace");
        assert_eq!(obj.meta().namespace, "");
    }

    #[test]
    fn missing_kind_errors() {
        assert!(decode_manifest("metadata:\n  name: x\n").is_err());
    }

    #[test]
    fn qualified_name_uses_namespace() {
        let objs = decode_manifests(STREAM).unwrap();
        assert_eq!(objs[0].qualified_name(), "default/web");
    }
}
