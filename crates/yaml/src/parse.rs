//! Indentation-based recursive-descent parser for the supported YAML subset.

use crate::error::{Error, Result};
use crate::value::{Map, Value};

/// A logical source line after comment and blank stripping.
#[derive(Debug, Clone)]
struct Line<'a> {
    /// Column of the first content character (spaces only; tabs are errors).
    indent: usize,
    /// Content with indentation removed and trailing whitespace trimmed.
    content: &'a str,
    /// 1-based source line number for error reporting.
    number: usize,
}

/// Parses a single-document source. Fails if the stream holds more than one
/// non-empty document.
pub fn parse(src: &str) -> Result<Value> {
    let mut docs = parse_all(src)?;
    match docs.len() {
        0 => Ok(Value::Null),
        1 => Ok(docs.pop().expect("len checked")),
        n => Err(Error::new(1, format!("expected one document, found {n}"))),
    }
}

/// Parses a `---`-separated stream, skipping documents with no content.
pub fn parse_all(src: &str) -> Result<Vec<Value>> {
    let mut docs = Vec::new();
    for chunk in split_documents(src) {
        let lines = logical_lines(chunk.text, chunk.first_line)?;
        if lines.is_empty() {
            continue;
        }
        let mut p = Parser {
            lines: &lines,
            pos: 0,
            depth: 0,
        };
        let value = p.parse_node(lines[0].indent)?;
        if let Some(extra) = p.peek() {
            return Err(Error::new(
                extra.number,
                format!("unexpected content `{}` after document root", extra.content),
            ));
        }
        docs.push(value);
    }
    Ok(docs)
}

struct DocChunk<'a> {
    text: &'a str,
    first_line: usize,
}

/// Splits on lines that begin a new document (`---`). The marker may carry a
/// trailing comment but no inline payload.
fn split_documents(src: &str) -> Vec<DocChunk<'_>> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut start_line = 1usize;
    let mut line_no = 0usize;
    let mut offset = 0usize;
    for line in src.split_inclusive('\n') {
        line_no += 1;
        let trimmed = line.trim_end();
        if trimmed == "---" || trimmed.starts_with("--- ") || trimmed.starts_with("---\t") {
            chunks.push(DocChunk {
                text: &src[start..offset],
                first_line: start_line,
            });
            start = offset + line.len();
            start_line = line_no + 1;
        }
        offset += line.len();
    }
    chunks.push(DocChunk {
        text: &src[start..],
        first_line: start_line,
    });
    chunks
}

/// Produces content lines: blanks and full-line comments removed, inline
/// comments stripped, indentation measured.
fn logical_lines(src: &str, first_line: usize) -> Result<Vec<Line<'_>>> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let number = first_line + i;
        if raw.contains('\t') && raw[..raw.len() - raw.trim_start().len()].contains('\t') {
            return Err(Error::new(
                number,
                "tab characters are not allowed in indentation",
            ));
        }
        let without_comment = strip_comment(raw);
        let trimmed_end = without_comment.trim_end();
        let indent = trimmed_end.len() - trimmed_end.trim_start().len();
        let content = trimmed_end.trim_start();
        if content.is_empty() {
            continue;
        }
        if content == "..." {
            break;
        }
        out.push(Line {
            indent,
            content,
            number,
        });
    }
    Ok(out)
}

/// Removes a trailing `# comment` that is outside quotes and preceded by
/// whitespace (or at the start of the content).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            // Skip the escaped character inside double quotes so `\"` (and
            // `\\` before a real closing quote) track correctly.
            b'\\' if in_double => {
                i += 2;
                continue;
            }
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'#' if !in_single && !in_double => {
                let at_start = line[..i].trim().is_empty();
                let after_space = i > 0 && (bytes[i - 1] == b' ' || bytes[i - 1] == b'\t');
                if at_start || after_space {
                    return &line[..i];
                }
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Nesting ceiling for the block parser. Recursion depth is bounded by the
/// source's line count, so a hostile megabyte of two-space indents would
/// otherwise overflow the stack; real manifests sit comfortably under this.
const MAX_BLOCK_DEPTH: usize = 128;

/// Nesting ceiling for one-line flow collections (`[[[[…`).
const MAX_FLOW_DEPTH: usize = 64;

struct Parser<'a, 'b> {
    lines: &'b [Line<'a>],
    pos: usize,
    /// Current recursion depth across `parse_node` / `parse_sequence`.
    depth: usize,
}

impl<'a, 'b> Parser<'a, 'b> {
    fn peek(&self) -> Option<&Line<'a>> {
        self.lines.get(self.pos)
    }

    fn bump(&mut self) -> &Line<'a> {
        let l = &self.lines[self.pos];
        self.pos += 1;
        l
    }

    /// Bumps the recursion depth, erroring out (instead of overflowing the
    /// stack) past [`MAX_BLOCK_DEPTH`].
    fn enter(&mut self, line: usize) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_BLOCK_DEPTH {
            return Err(Error::new(
                line,
                format!("nesting exceeds the supported depth of {MAX_BLOCK_DEPTH}"),
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Parses the block node starting at the current line, which must sit at
    /// exactly `indent`.
    fn parse_node(&mut self, indent: usize) -> Result<Value> {
        let line = match self.peek() {
            Some(l) => l,
            None => return Ok(Value::Null),
        };
        if line.indent != indent {
            return Err(Error::new(
                line.number,
                format!("expected indentation {indent}, found {}", line.indent),
            ));
        }
        if line.content == "-" || line.content.starts_with("- ") {
            self.parse_sequence(indent)
        } else if split_key(line.content).is_some() {
            self.parse_mapping(indent)
        } else {
            // A bare scalar document (e.g. the output of a template that
            // rendered to a single value).
            let l = self.bump();
            parse_scalar(l.content, l.number)
        }
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Value> {
        let Some(line) = self.peek() else {
            return Ok(Value::Seq(Vec::new()));
        };
        self.enter(line.number)?;
        let result = self.parse_sequence_inner(indent);
        self.leave();
        result
    }

    fn parse_sequence_inner(&mut self, indent: usize) -> Result<Value> {
        let mut items = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent != indent || !(line.content == "-" || line.content.starts_with("- ")) {
                break;
            }
            let number = line.number;
            let content = line.content;
            self.bump();
            let rest = content[1..].trim_start();
            let content_col = indent + (content.len() - rest.len());
            if rest.is_empty() {
                // Nested block on following lines, indented past the dash.
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        items.push(self.parse_node(child_indent)?);
                    }
                    _ => items.push(Value::Null),
                }
            } else if rest == "-" || rest.starts_with("- ") {
                return Err(Error::new(
                    number,
                    "nested inline sequences (`- - x`) are not supported; use block form",
                ));
            } else if let Some((key, val_text)) = split_key(rest) {
                let first = self.parse_entry_value(key, val_text, content_col, number)?;
                items.push(self.continue_mapping(first, content_col)?);
            } else {
                items.push(parse_scalar(rest, number)?);
            }
        }
        Ok(Value::Seq(items))
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Value> {
        let Some(line) = self.peek() else {
            return Ok(Value::Map(Map::new()));
        };
        self.enter(line.number)?;
        let result = self.parse_mapping_inner(indent);
        self.leave();
        result
    }

    fn parse_mapping_inner(&mut self, indent: usize) -> Result<Value> {
        let mut map = Map::new();
        while let Some(line) = self.peek() {
            if line.indent != indent {
                break;
            }
            let number = line.number;
            let content = line.content;
            if content == "-" || content.starts_with("- ") {
                break;
            }
            let Some((key, val_text)) = split_key(content) else {
                return Err(Error::new(
                    number,
                    format!("expected `key:`, found `{content}`"),
                ));
            };
            self.bump();
            let (k, v) = self.parse_entry_value(key, val_text, indent, number)?;
            if map.contains_key(&k) {
                return Err(Error::new(number, format!("duplicate mapping key `{k}`")));
            }
            map.insert(k, v);
        }
        Ok(Value::Map(map))
    }

    /// After the first `key: value` of a sequence-item mapping, keeps
    /// consuming sibling keys that sit at the content column.
    fn continue_mapping(&mut self, first: (String, Value), indent: usize) -> Result<Value> {
        let mut map = Map::new();
        map.insert(first.0, first.1);
        while let Some(line) = self.peek() {
            if line.indent != indent || line.content == "-" || line.content.starts_with("- ") {
                break;
            }
            let number = line.number;
            let Some((key, val_text)) = split_key(line.content) else {
                break;
            };
            self.bump();
            let (k, v) = self.parse_entry_value(key, val_text, indent, number)?;
            if map.contains_key(&k) {
                return Err(Error::new(number, format!("duplicate mapping key `{k}`")));
            }
            map.insert(k, v);
        }
        Ok(Value::Map(map))
    }

    /// Parses the value side of a `key:` entry whose key sits at `indent`.
    fn parse_entry_value(
        &mut self,
        key: &str,
        val_text: &str,
        indent: usize,
        number: usize,
    ) -> Result<(String, Value)> {
        let key = unquote_key(key, number)?;
        let val_text = val_text.trim();
        let value = if val_text.is_empty() {
            match self.peek() {
                Some(next) if next.indent > indent => {
                    let child = next.indent;
                    self.parse_node(child)?
                }
                // A sequence may sit at the same indentation as its key;
                // Kubernetes manifests use this style pervasively.
                Some(next)
                    if next.indent == indent
                        && (next.content == "-" || next.content.starts_with("- ")) =>
                {
                    self.parse_sequence(indent)?
                }
                _ => Value::Null,
            }
        } else if let Some(style) = block_scalar_style(val_text) {
            self.parse_block_scalar(style, indent)?
        } else {
            parse_scalar(val_text, number)?
        };
        Ok((key, value))
    }

    fn parse_block_scalar(&mut self, style: BlockStyle, key_indent: usize) -> Result<Value> {
        let mut raw_lines: Vec<(usize, &str)> = Vec::new();
        // Block scalar content is every following line deeper than the key.
        // Blank lines were stripped by the tokenizer, which is acceptable for
        // the manifests this crate targets (no blank-line-preserving scalars).
        while let Some(line) = self.peek() {
            if line.indent <= key_indent {
                break;
            }
            raw_lines.push((line.indent, line.content));
            self.bump();
        }
        if raw_lines.is_empty() {
            return Ok(Value::Str(String::new()));
        }
        let base = raw_lines.iter().map(|(i, _)| *i).min().expect("non-empty");
        let parts: Vec<String> = raw_lines
            .iter()
            .map(|(i, c)| format!("{}{}", " ".repeat(i - base), c))
            .collect();
        let joined = match style {
            BlockStyle::Literal { .. } => parts.join("\n"),
            BlockStyle::Folded { .. } => parts.join(" "),
        };
        let chomped = match style {
            BlockStyle::Literal { strip } | BlockStyle::Folded { strip } => {
                if strip {
                    joined
                } else {
                    format!("{joined}\n")
                }
            }
        };
        Ok(Value::Str(chomped))
    }
}

#[derive(Clone, Copy)]
enum BlockStyle {
    Literal { strip: bool },
    Folded { strip: bool },
}

fn block_scalar_style(s: &str) -> Option<BlockStyle> {
    match s {
        "|" | "|+" => Some(BlockStyle::Literal { strip: false }),
        "|-" => Some(BlockStyle::Literal { strip: true }),
        ">" | ">+" => Some(BlockStyle::Folded { strip: false }),
        ">-" => Some(BlockStyle::Folded { strip: true }),
        _ => None,
    }
}

/// Splits `key: value` at the first unquoted colon followed by a space or end
/// of line. Returns `(key, value_text)`.
fn split_key(s: &str) -> Option<(&str, &str)> {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0usize; // [..] / {..} nesting in a flow key (rare)
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            // Skip the escaped character inside double quotes so `\"` does
            // not desync the quote tracking.
            b'\\' if in_double => {
                i += 2;
                continue;
            }
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            b':' if !in_single
                && !in_double
                && depth == 0
                && (i + 1 == bytes.len() || bytes[i + 1] == b' ') =>
            {
                let key = s[..i].trim();
                if key.is_empty() {
                    return None;
                }
                return Some((key, &s[i + 1..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn unquote_key(key: &str, line: usize) -> Result<String> {
    if (key.starts_with('"') && key.ends_with('"') && key.len() >= 2)
        || (key.starts_with('\'') && key.ends_with('\'') && key.len() >= 2)
    {
        parse_scalar(key, line).map(|v| v.render_scalar())
    } else {
        Ok(key.to_string())
    }
}

/// Parses a scalar or one-line flow collection.
pub(crate) fn parse_scalar(s: &str, line: usize) -> Result<Value> {
    let s = s.trim();
    if s.starts_with('[') || s.starts_with('{') {
        let mut fp = FlowParser {
            src: s.as_bytes(),
            pos: 0,
            line,
            depth: 0,
        };
        let v = fp.parse_value()?;
        fp.skip_ws();
        if fp.pos != fp.src.len() {
            return Err(Error::new(
                line,
                "trailing characters after flow collection",
            ));
        }
        return Ok(v);
    }
    if let Some(inner) = s.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return Err(Error::new(line, "unterminated double-quoted scalar"));
        };
        return Ok(Value::Str(unescape_double(inner, line)?));
    }
    if let Some(inner) = s.strip_prefix('\'') {
        let Some(inner) = inner.strip_suffix('\'') else {
            return Err(Error::new(line, "unterminated single-quoted scalar"));
        };
        return Ok(Value::Str(inner.replace("''", "'")));
    }
    // Reference-style YAML constructs are deliberately out of scope: a chart
    // that uses them should get a typed ingest error, not a silently wrong
    // string value.
    match s.as_bytes().first() {
        Some(b'&') => return Err(Error::new(line, "YAML anchors (`&...`) are not supported")),
        Some(b'*') => return Err(Error::new(line, "YAML aliases (`*...`) are not supported")),
        Some(b'!') => return Err(Error::new(line, "YAML tags (`!...`) are not supported")),
        Some(b'%') => {
            return Err(Error::new(
                line,
                "YAML directives (`%...`) are not supported",
            ));
        }
        _ => {}
    }
    Ok(plain_scalar(s))
}

fn plain_scalar(s: &str) -> Value {
    match s {
        "" | "~" | "null" | "Null" | "NULL" => return Value::Null,
        "true" | "True" | "TRUE" => return Value::Bool(true),
        "false" | "False" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        // Leading zeros (e.g. `0700`) stay strings, mirroring common k8s
        // practice for modes; plain `0` is an int.
        if !(s.len() > 1 && (s.starts_with('0') || s.starts_with("-0"))) {
            return Value::Int(i);
        }
    }
    if looks_like_float(s) {
        if let Ok(f) = s.parse::<f64>() {
            // Overlong digit runs overflow to infinity; keep those as strings
            // so every parsed float survives an emit/reparse round trip.
            if f.is_finite() {
                return Value::Float(f);
            }
        }
    }
    Value::Str(s.to_string())
}

fn looks_like_float(s: &str) -> bool {
    let body = s.strip_prefix('-').unwrap_or(s);
    !body.is_empty()
        && body.contains('.')
        && body.chars().all(|c| c.is_ascii_digit() || c == '.')
        && body.matches('.').count() == 1
        && !body.starts_with('.')
        && !body.ends_with('.')
}

fn unescape_double(s: &str, line: usize) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('0') => out.push('\0'),
            Some(other) => return Err(Error::new(line, format!("unsupported escape `\\{other}`"))),
            None => return Err(Error::new(line, "dangling backslash in scalar")),
        }
    }
    Ok(out)
}

/// One-line flow (`[...]` / `{...}`) parser with full nesting support.
struct FlowParser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    depth: usize,
}

impl<'a> FlowParser<'a> {
    fn nested(&mut self, inner: fn(&mut Self) -> Result<Value>) -> Result<Value> {
        if self.depth >= MAX_FLOW_DEPTH {
            return Err(Error::new(
                self.line,
                format!("flow nesting exceeds the supported depth of {MAX_FLOW_DEPTH}"),
            ));
        }
        self.depth += 1;
        let result = inner(self);
        self.depth -= 1;
        result
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && (self.src[self.pos] == b' ') {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.src.get(self.pos) {
            Some(b'[') => self.nested(Self::parse_flow_seq),
            Some(b'{') => self.nested(Self::parse_flow_map),
            Some(_) => {
                let raw = self.take_scalar_text();
                parse_scalar(raw.trim(), self.line)
            }
            None => Err(Error::new(self.line, "unexpected end of flow collection")),
        }
    }

    fn parse_flow_seq(&mut self) -> Result<Value> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.src.get(self.pos) {
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                Some(_) => {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.src.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {}
                        _ => {
                            return Err(Error::new(
                                self.line,
                                "expected `,` or `]` in flow sequence",
                            ))
                        }
                    }
                }
                None => return Err(Error::new(self.line, "unterminated flow sequence")),
            }
        }
    }

    fn parse_flow_map(&mut self) -> Result<Value> {
        self.pos += 1; // consume '{'
        let mut map = Map::new();
        loop {
            self.skip_ws();
            match self.src.get(self.pos) {
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(map));
                }
                Some(_) => {
                    let key_text = self.take_until_colon()?;
                    let key = unquote_key(key_text.trim(), self.line)?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.src.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {}
                        _ => {
                            return Err(Error::new(
                                self.line,
                                "expected `,` or `}` in flow mapping",
                            ))
                        }
                    }
                }
                None => return Err(Error::new(self.line, "unterminated flow mapping")),
            }
        }
    }

    fn take_until_colon(&mut self) -> Result<String> {
        let start = self.pos;
        let mut in_single = false;
        let mut in_double = false;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' if in_double => {
                    self.pos = (self.pos + 2).min(self.src.len());
                    continue;
                }
                b'\'' if !in_double => in_single = !in_single,
                b'"' if !in_single => in_double = !in_double,
                b':' if !in_single && !in_double => {
                    let key = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(key);
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(Error::new(self.line, "missing `:` in flow mapping entry"))
    }

    /// Consumes a scalar up to a flow delimiter, honouring quotes.
    fn take_scalar_text(&mut self) -> String {
        let start = self.pos;
        let mut in_single = false;
        let mut in_double = false;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' if in_double => {
                    self.pos = (self.pos + 2).min(self.src.len());
                    continue;
                }
                b'\'' if !in_double => in_single = !in_single,
                b'"' if !in_single => in_double = !in_double,
                b',' | b']' | b'}' if !in_single && !in_double => break,
                _ => {}
            }
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Value {
        parse(src).unwrap()
    }

    #[test]
    fn plain_scalars() {
        assert_eq!(p("a: 1").path(&["a"]), Some(&Value::Int(1)));
        assert_eq!(p("a: 1.5").path(&["a"]), Some(&Value::Float(1.5)));
        assert_eq!(p("a: true").path(&["a"]), Some(&Value::Bool(true)));
        assert_eq!(p("a: null").path(&["a"]), Some(&Value::Null));
        assert_eq!(p("a: ~").path(&["a"]), Some(&Value::Null));
        assert_eq!(
            p("a: hello world").path(&["a"]),
            Some(&Value::str("hello world"))
        );
    }

    #[test]
    fn leading_zero_stays_string() {
        assert_eq!(p("mode: 0700").path(&["mode"]), Some(&Value::str("0700")));
        assert_eq!(p("n: 0").path(&["n"]), Some(&Value::Int(0)));
    }

    #[test]
    fn quoted_scalars() {
        assert_eq!(p(r#"a: "x: y""#).path(&["a"]), Some(&Value::str("x: y")));
        assert_eq!(
            p(r#"a: "line\nbreak""#).path(&["a"]),
            Some(&Value::str("line\nbreak"))
        );
        assert_eq!(p("a: 'it''s'").path(&["a"]), Some(&Value::str("it's")));
        assert_eq!(p(r#"a: "8080""#).path(&["a"]), Some(&Value::str("8080")));
    }

    #[test]
    fn nested_maps() {
        let v = p("a:\n  b:\n    c: 3\n");
        assert_eq!(v.path(&["a", "b", "c"]), Some(&Value::Int(3)));
    }

    #[test]
    fn sequence_of_scalars() {
        let v = p("ports:\n  - 80\n  - 443\n");
        assert_eq!(
            v.path(&["ports"]).unwrap().as_seq().unwrap(),
            &[Value::Int(80), Value::Int(443)]
        );
    }

    #[test]
    fn sequence_at_key_indent() {
        // Kubernetes style: list items at the same column as the key.
        let v = p("ports:\n- 80\n- 443\n");
        assert_eq!(v.path(&["ports"]).unwrap().as_seq().unwrap().len(), 2);
    }

    #[test]
    fn sequence_of_maps() {
        let v = p(
            "containers:\n  - name: web\n    image: nginx\n  - name: sidecar\n    image: envoy\n",
        );
        let seq = v.path(&["containers"]).unwrap().as_seq().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].path(&["name"]), Some(&Value::str("web")));
        assert_eq!(seq[1].path(&["image"]), Some(&Value::str("envoy")));
    }

    #[test]
    fn seq_item_with_nested_block() {
        let v = p("rules:\n  - ports:\n      - port: 80\n    to:\n      - podSelector: {}\n");
        let rule = &v.path(&["rules"]).unwrap().as_seq().unwrap()[0];
        assert_eq!(rule.path(&["ports", "0", "port"]), Some(&Value::Int(80)));
        assert!(rule
            .path(&["to", "0", "podSelector"])
            .unwrap()
            .as_map()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn comments_and_blanks() {
        let v = p("# heading\na: 1\n\nb: 2 # trailing\n# tail\n");
        assert_eq!(v.path(&["a"]), Some(&Value::Int(1)));
        assert_eq!(v.path(&["b"]), Some(&Value::Int(2)));
    }

    #[test]
    fn hash_inside_scalar_is_kept() {
        assert_eq!(p("a: foo#bar").path(&["a"]), Some(&Value::str("foo#bar")));
        assert_eq!(
            p(r##"a: "# not a comment""##).path(&["a"]),
            Some(&Value::str("# not a comment"))
        );
    }

    #[test]
    fn flow_collections() {
        let v = p("a: [1, 2, three]\nb: {x: 1, y: [true]}\nc: []\nd: {}\n");
        assert_eq!(v.path(&["a", "2"]), Some(&Value::str("three")));
        assert_eq!(v.path(&["b", "y", "0"]), Some(&Value::Bool(true)));
        assert_eq!(v.path(&["c"]).unwrap().as_seq().unwrap().len(), 0);
        assert!(v.path(&["d"]).unwrap().as_map().unwrap().is_empty());
    }

    #[test]
    fn literal_block_scalar() {
        let v = p("script: |\n  line one\n  line two\nafter: 1\n");
        assert_eq!(
            v.path(&["script"]),
            Some(&Value::str("line one\nline two\n"))
        );
        assert_eq!(v.path(&["after"]), Some(&Value::Int(1)));
    }

    #[test]
    fn literal_block_scalar_stripped() {
        let v = p("script: |-\n  just this\n");
        assert_eq!(v.path(&["script"]), Some(&Value::str("just this")));
    }

    #[test]
    fn folded_block_scalar() {
        let v = p("msg: >-\n  folded into\n  one line\n");
        assert_eq!(v.path(&["msg"]), Some(&Value::str("folded into one line")));
    }

    #[test]
    fn empty_value_is_null() {
        let v = p("a:\nb: 1\n");
        assert_eq!(v.path(&["a"]), Some(&Value::Null));
    }

    #[test]
    fn dotted_and_slashed_keys() {
        let v = p("app.kubernetes.io/name: web\n");
        assert_eq!(
            v.path(&["app.kubernetes.io/name"]),
            Some(&Value::str("web"))
        );
    }

    #[test]
    fn quoted_keys() {
        let v = p("\"odd: key\": 1\n");
        assert_eq!(v.path(&["odd: key"]), Some(&Value::Int(1)));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn tab_indentation_rejected() {
        assert!(parse("a:\n\tb: 1\n").is_err());
    }

    #[test]
    fn bad_indentation_reported_with_line() {
        let err = parse("a:\n  b: 1\n c: 2\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn document_markers() {
        let docs = parse_all("---\na: 1\n---\n# only a comment\n---\nb: 2\n").unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn root_sequence() {
        let v = p("- a\n- b\n");
        assert_eq!(v.as_seq().unwrap().len(), 2);
    }

    #[test]
    fn colon_in_plain_value_kept() {
        let v = p("image: bitnami/flink:1.17\n");
        assert_eq!(v.path(&["image"]), Some(&Value::str("bitnami/flink:1.17")));
    }

    #[test]
    fn url_value() {
        let v = p("url: https://example.org/x?y=1\n");
        assert_eq!(
            v.path(&["url"]),
            Some(&Value::str("https://example.org/x?y=1"))
        );
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(p("a: -3").path(&["a"]), Some(&Value::Int(-3)));
        assert_eq!(p("a: -3.5").path(&["a"]), Some(&Value::Float(-3.5)));
    }

    #[test]
    fn deeply_nested_pod_spec() {
        let v = p("\
spec:
  template:
    spec:
      hostNetwork: true
      containers:
        - name: exporter
          ports:
            - containerPort: 9100
              protocol: TCP
");
        assert_eq!(
            v.path(&["spec", "template", "spec", "hostNetwork"]),
            Some(&Value::Bool(true))
        );
        assert_eq!(
            v.path(&[
                "spec",
                "template",
                "spec",
                "containers",
                "0",
                "ports",
                "0",
                "containerPort"
            ]),
            Some(&Value::Int(9100))
        );
    }
}
