//! Auditing a whole dataset and watching a live cluster for regressions.
//!
//! ```sh
//! cargo run --example cluster_audit
//! ```
//!
//! Part 1 runs the census pipeline over the CNCF dataset (ten charts, each
//! in its own fresh cluster, analyzed on four worker threads with a
//! progress observer) and prints its Table-2 row.
//! Part 2 attaches the continuous auditor to a live cluster and shows a
//! misconfiguration being introduced and caught between audit rounds.

use inside_job::cluster::{Cluster, ClusterConfig};
use inside_job::core::MisconfigId;
use inside_job::datasets::{corpus, CensusPipeline, Org};
use inside_job::guard::ContinuousAuditor;
use inside_job::model::{Container, ContainerPort, Labels, Object, ObjectMeta, Pod, PodSpec};
use inside_job::probe::HostBaseline;

fn main() {
    // --- Part 1: dataset audit -----------------------------------------
    let cncf: Vec<_> = corpus()
        .into_iter()
        .filter(|a| a.org == Org::Cncf)
        .collect();
    println!("auditing the {} CNCF charts…", cncf.len());
    let census = CensusPipeline::builder()
        .threads(4)
        .observer(|p| eprintln!("  [{}/{}] {}", p.completed, p.total, p.app))
        .build()
        .run(&cncf)
        .expect("the synthetic corpus renders and installs");
    let row = census.dataset_row("CNCF");
    println!(
        "CNCF: {}/{} applications affected, {} misconfigurations total",
        row.affected,
        row.total_apps,
        row.total()
    );
    for id in MisconfigId::ALL {
        if row.count(id) > 0 {
            println!(
                "  {:<4} {:>2}  — {}",
                id.as_str(),
                row.count(id),
                id.description()
            );
        }
    }
    assert_eq!(row.total(), 27, "the paper's CNCF row sums to 27");

    // --- Part 2: continuous audit ---------------------------------------
    println!("\nattaching the continuous auditor to a live cluster…");
    let mut cluster = Cluster::new(ClusterConfig::default());
    let baseline = HostBaseline::capture(&cluster);
    cluster
        .apply(Object::Pod(Pod::new(
            ObjectMeta::named("api").with_labels(Labels::from_pairs([("app", "api")])),
            PodSpec {
                containers: vec![Container::new("api", "acme/api")
                    .with_ports(vec![ContainerPort::named("http", 8080)])],
                ..Default::default()
            },
        )))
        .expect("apply");
    cluster.reconcile();

    let mut auditor = ContinuousAuditor::new("acme", baseline, false);
    let round1 = auditor.tick(&mut cluster);
    println!(
        "round 1: {} finding(s) introduced (expected: M6 — no policies yet)",
        round1.introduced.len()
    );

    // Someone deploys a colliding pod between rounds.
    cluster
        .apply(Object::Pod(Pod::new(
            ObjectMeta::named("api-copy").with_labels(Labels::from_pairs([("app", "api")])),
            PodSpec {
                containers: vec![Container::new("api", "acme/api-fork")
                    .with_ports(vec![ContainerPort::named("http", 8080)])],
                ..Default::default()
            },
        )))
        .expect("apply");
    cluster.reconcile();

    let round2 = auditor.tick(&mut cluster);
    println!("round 2: {} new finding(s):", round2.introduced.len());
    for f in &round2.introduced {
        println!("  {f}");
    }
    assert!(
        round2.introduced.iter().any(|f| f.id == MisconfigId::M4A),
        "the collision is caught as a delta"
    );

    let round3 = auditor.tick(&mut cluster);
    assert!(
        round3.is_quiet(),
        "nothing changed; the auditor stays quiet"
    );
    println!("round 3: quiet (no changes)");
}
