//! The admission chain: the API server hook where requests can be vetted
//! before objects are persisted.
//!
//! Kubernetes exposes this as validating/mutating admission webhooks; the
//! `ij-guard` crate plugs its defense in here. The review gets read access to
//! the current object set so that cross-object checks (label collisions
//! against *existing* resources — the M4\* case Kubernetes itself never
//! performs) are possible at admission time.

use ij_model::Object;

/// What an admission controller decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Persist the object.
    Allow,
    /// Persist the object but surface warnings to the client.
    Warn(Vec<String>),
    /// Reject the request.
    Deny(String),
}

impl AdmissionOutcome {
    /// True unless the outcome is a denial.
    pub fn is_allowed(&self) -> bool {
        !matches!(self, AdmissionOutcome::Deny(_))
    }
}

/// The request under review.
#[derive(Debug)]
pub struct AdmissionReview<'a> {
    /// The incoming object.
    pub object: &'a Object,
    /// Objects already persisted in the cluster (cluster-wide).
    pub existing: &'a [Object],
}

/// A validating admission controller.
pub trait AdmissionController: Send + Sync {
    /// Controller name, used in event logs and error messages.
    fn name(&self) -> &str;

    /// Reviews one create request.
    fn review(&self, review: &AdmissionReview<'_>) -> AdmissionOutcome;
}

/// An admission controller that allows everything (the Kubernetes default
/// posture for networking objects).
#[derive(Debug, Default)]
pub struct AllowAll;

impl AdmissionController for AllowAll {
    fn name(&self) -> &str {
        "allow-all"
    }

    fn review(&self, _review: &AdmissionReview<'_>) -> AdmissionOutcome {
        AdmissionOutcome::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_model::{ObjectMeta, Pod, PodSpec};

    #[test]
    fn allow_all_allows() {
        let pod = Object::Pod(Pod::new(ObjectMeta::named("p"), PodSpec::default()));
        let review = AdmissionReview {
            object: &pod,
            existing: &[],
        };
        assert!(AllowAll.review(&review).is_allowed());
    }

    #[test]
    fn deny_is_not_allowed() {
        assert!(!AdmissionOutcome::Deny("nope".into()).is_allowed());
        assert!(AdmissionOutcome::Warn(vec!["careful".into()]).is_allowed());
    }
}
