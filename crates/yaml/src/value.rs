//! The in-memory representation of a parsed YAML document.

use std::fmt;

/// An order-preserving string-keyed map.
///
/// Kubernetes manifests rely on field order only for readability, but
/// preserving it keeps emitted documents diffable against their source and
/// makes duplicate-key detection deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty map with room for `capacity` entries, so builders
    /// that know the final shape up front avoid growth reallocations.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key, replacing any existing value under the same key while
    /// keeping the original position.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Appends an entry without scanning for an existing key.
    ///
    /// `insert`'s replace-in-place semantics cost a linear scan per call,
    /// which is pure overhead for builders that construct a map from a known
    /// set of distinct keys (template evaluation roots, object encoders,
    /// generator specs). Callers must guarantee the key is not already
    /// present; debug builds verify and panic, release builds skip the scan
    /// entirely.
    pub fn push_unchecked(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        debug_assert!(
            !self.contains_key(&key),
            "push_unchecked: duplicate key {key:?}"
        );
        self.entries.push((key, value));
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True when the key exists.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Deep-merges `other` into `self`: nested maps merge recursively, any
    /// other value kind from `other` replaces the existing entry. This is the
    /// merge rule Helm applies when overlaying user values onto chart
    /// defaults.
    pub fn deep_merge(&mut self, other: &Map) {
        for (k, v) in other.iter() {
            match (self.get_mut(k), v) {
                (Some(Value::Map(dst)), Value::Map(src)) => dst.deep_merge(src),
                _ => self.insert(k, v.clone()),
            }
        }
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A YAML value in the supported subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`, `~`, or an empty scalar position.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer scalar.
    Int(i64),
    /// A floating-point scalar.
    Float(f64),
    /// Any other scalar, including quoted strings.
    Str(String),
    /// A block or flow sequence.
    Seq(Vec<Value>),
    /// A block or flow mapping with string keys.
    Map(Map),
}

impl Value {
    /// Returns the string content of a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns an integer, converting from `Int` only.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns a float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns a boolean from a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the sequence items.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the map.
    pub fn as_map(&self) -> Option<&Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable map access.
    pub fn as_map_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Map-key lookup; `None` on non-maps.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Walks a path of map keys and (decimal) sequence indices.
    ///
    /// ```
    /// # use ij_yaml::{parse, Value};
    /// let v = parse("a:\n  - x: 1\n").unwrap();
    /// assert_eq!(v.path(&["a", "0", "x"]).and_then(Value::as_int), Some(1));
    /// ```
    pub fn path(&self, segments: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for seg in segments {
            cur = match cur {
                Value::Map(m) => m.get(seg)?,
                Value::Seq(s) => s.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Helm-style truthiness: `null`, `false`, `0`, `0.0`, `""`, empty
    /// sequences, and empty maps are falsy; everything else is truthy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Seq(s) => !s.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    /// Renders the value as the scalar string Helm would interpolate.
    pub fn render_scalar(&self) -> String {
        match self {
            // Fast path: `write_scalar` would copy the string anyway, and
            // callers of `render_scalar` on `Str` expect an owned clone.
            Value::Str(s) => s.clone(),
            _ => {
                let mut out = String::new();
                self.write_scalar(&mut out);
                out
            }
        }
    }

    /// Appends the scalar rendering of [`render_scalar`](Self::render_scalar)
    /// to `out` without allocating an intermediate `String` for string
    /// values — the zero-copy interpolation path of template engines.
    pub fn write_scalar(&self, out: &mut String) {
        match self {
            Value::Null => {}
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => out.push_str(&format_float(*f)),
            Value::Str(s) => out.push_str(s),
            Value::Seq(_) | Value::Map(_) => out.push_str(crate::to_string(self).trim_end()),
        }
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_scalar())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u16> for Value {
    fn from(i: u16) -> Self {
        Value::Int(i as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Seq(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Map(m)
    }
}

pub(crate) fn format_float(f: f64) -> String {
    let mut out = String::new();
    write_float(&mut out, f);
    out
}

/// Appends [`format_float`]'s rendering to `out` without an intermediate
/// allocation; shared by the emitter's write-through scalar path.
pub(crate) fn write_float(out: &mut String, f: f64) {
    use std::fmt::Write as _;
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

/// Builds a [`Map`] from `(key, value)` pairs; mostly used by tests and the
/// dataset generators.
#[macro_export]
macro_rules! ymap {
    ($($k:expr => $v:expr),* $(,)?) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($k, $crate::Value::from($v)); )*
        $crate::Value::Map(m)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a", Value::Int(1));
        m.insert("b", Value::Int(2));
        m.insert("a", Value::Int(3));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(m.get("a"), Some(&Value::Int(3)));
    }

    #[test]
    fn push_unchecked_appends_in_order() {
        let mut m = Map::with_capacity(3);
        m.push_unchecked("a", Value::Int(1));
        m.push_unchecked("b", Value::Int(2));
        m.push_unchecked("c", Value::Int(3));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(m.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    #[cfg(debug_assertions)]
    fn push_unchecked_catches_duplicates_in_debug() {
        let mut m = Map::new();
        m.push_unchecked("a", Value::Int(1));
        m.push_unchecked("a", Value::Int(2));
    }

    #[test]
    fn deep_merge_overlays_nested_maps() {
        let mut base = Map::new();
        let mut inner = Map::new();
        inner.insert("port", Value::Int(80));
        inner.insert("enabled", Value::Bool(false));
        base.insert("service", Value::Map(inner));

        let mut overlay = Map::new();
        let mut inner2 = Map::new();
        inner2.insert("enabled", Value::Bool(true));
        overlay.insert("service", Value::Map(inner2));

        base.deep_merge(&overlay);
        let svc = base.get("service").unwrap().as_map().unwrap();
        assert_eq!(svc.get("port"), Some(&Value::Int(80)));
        assert_eq!(svc.get("enabled"), Some(&Value::Bool(true)));
    }

    #[test]
    fn truthiness_matches_helm_semantics() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(!Value::Seq(vec![]).truthy());
        assert!(Value::Int(1).truthy());
        assert!(Value::str("x").truthy());
    }

    #[test]
    fn path_walks_maps_and_sequences() {
        let v = ymap! {
            "spec" => ymap! {
                "ports" => Value::Seq(vec![ymap! {"port" => 80i64}]),
            },
        };
        assert_eq!(
            v.path(&["spec", "ports", "0", "port"])
                .and_then(Value::as_int),
            Some(80)
        );
        assert_eq!(v.path(&["spec", "missing"]), None);
        assert_eq!(v.path(&["spec", "ports", "9"]), None);
    }

    #[test]
    fn render_scalar_formats() {
        assert_eq!(Value::Int(8080).render_scalar(), "8080");
        assert_eq!(Value::Bool(true).render_scalar(), "true");
        assert_eq!(Value::Float(1.5).render_scalar(), "1.5");
        assert_eq!(Value::Float(2.0).render_scalar(), "2.0");
        assert_eq!(Value::Null.render_scalar(), "");
    }
}
