//! End-to-end tests of the `ij` CLI binary against charts on disk.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn write(path: &Path, content: &str) {
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, content).expect("write");
}

fn demo_chart_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ij-cli-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    write(
        &dir.join("Chart.yaml"),
        "name: cli-demo\nversion: 0.9.0\ndescription: CLI test chart\n",
    );
    write(&dir.join("values.yaml"), "replicas: 1\n");
    write(
        &dir.join("templates/app.yaml"),
        "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-web
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      hostNetwork: true
      containers:
        - name: web
          image: acme/web
          ports:
            - containerPort: 8080
---
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-web
spec:
  selector:
    app: web
  ports:
    - port: 80
      targetPort: 9999
",
    );
    dir
}

fn ij(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ij"))
        .args(args)
        .output()
        .expect("spawn ij")
}

#[test]
fn analyze_reports_structural_findings() {
    let dir = demo_chart_dir("analyze");
    let out = ij(&["analyze", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 finding(s)"), "{stdout}");
    assert!(stdout.contains("[M5B]"), "{stdout}");
    assert!(stdout.contains("[M6]"), "{stdout}");
    assert!(stdout.contains("[M7]"), "{stdout}");
    assert!(stdout.contains("fix:"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn render_prints_manifests() {
    let dir = demo_chart_dir("render");
    let out = ij(&["render", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kind: Deployment"));
    assert!(stdout.contains("kind: Service"));
    assert!(stdout.contains("name: cli-demo-web"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn disclose_produces_markdown_report() {
    let dir = demo_chart_dir("disclose");
    let out = ij(&["disclose", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# Security disclosure"));
    assert!(stdout.contains("Threat model"));
    assert!(stdout.contains("Questionnaire"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dot_flag_writes_connectivity_graph() {
    let dir = demo_chart_dir("dot");
    let dot_path = dir.join("out.dot");
    let out = ij(&[
        "analyze",
        dir.to_str().unwrap(),
        "--dot",
        dot_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let dot = fs::read_to_string(&dot_path).expect("dot written");
    assert!(dot.starts_with("digraph"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn values_override_changes_rendering() {
    let dir = demo_chart_dir("values");
    let values = dir.join("override.yaml");
    fs::write(&values, "replicas: 4\n").unwrap();
    let out = ij(&[
        "render",
        dir.to_str().unwrap(),
        "--values",
        values.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("replicas: 4"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = ij(&["bogus-command"]);
    assert!(!out.status.success());
    let out = ij(&[]);
    assert!(!out.status.success());
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing command is a usage error"
    );
}

#[test]
fn census_subcommand_prints_dataset_breakdown() {
    let out = ij(&["census", "--org", "CNCF", "--threads", "4", "--progress"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Dataset"), "{stdout}");
    assert!(stdout.contains("CNCF"), "{stdout}");
    assert!(stdout.contains("misconfiguration(s) across"), "{stdout}");
    // --progress streams one completion tick per application to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[1/10]"), "{stderr}");
    assert!(stderr.contains("[10/10]"), "{stderr}");
}

#[test]
fn census_is_identical_across_thread_counts() {
    let sequential = ij(&["census", "--org", "Wikimedia"]);
    let parallel = ij(&["census", "--org", "Wikimedia", "--threads", "4"]);
    assert!(sequential.status.success());
    assert!(parallel.status.success());
    assert_eq!(
        String::from_utf8_lossy(&sequential.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "--threads must not change a byte of the census output"
    );
}

#[test]
fn census_timings_flag_prints_phase_breakdown_to_stderr() {
    let plain = ij(&["census", "--org", "CNCF"]);
    let timed = ij(&["census", "--org", "CNCF", "--timings", "--threads", "2"]);
    assert!(plain.status.success());
    assert!(
        timed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&timed.stderr)
    );
    let stderr = String::from_utf8_lossy(&timed.stderr);
    for phase in ["timings:", "build", "render", "install", "probe", "analyze"] {
        assert!(stderr.contains(phase), "missing `{phase}` in {stderr}");
    }
    // The breakdown goes to stderr only; stdout stays byte-identical.
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&timed.stdout),
        "--timings must not change a byte of the census output"
    );
}

#[test]
fn census_timings_merge_across_shards() {
    // Sharded + threaded runs accumulate per-worker timings and merge them
    // into one report: the same phase lines print, and stdout is still
    // byte-identical to the untimed run.
    let plain = ij(&["census", "--synthetic", "40", "--seed", "7"]);
    let timed = ij(&[
        "census",
        "--synthetic",
        "40",
        "--seed",
        "7",
        "--shards",
        "4",
        "--threads",
        "2",
        "--timings",
    ]);
    assert!(plain.status.success());
    assert!(
        timed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&timed.stderr)
    );
    let stderr = String::from_utf8_lossy(&timed.stderr);
    for phase in ["timings:", "build", "render", "install", "probe", "analyze"] {
        assert!(stderr.contains(phase), "missing `{phase}` in {stderr}");
    }
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&timed.stdout),
        "--timings/--shards must not change a byte of the census output"
    );
}

/// Extracts every `--flag` token from a blob of text.
fn flags_in(text: &str) -> std::collections::BTreeSet<String> {
    let mut flags = std::collections::BTreeSet::new();
    for chunk in text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '-')) {
        if let Some(name) = chunk.strip_prefix("--") {
            // Skip markdown table rules (`---`) and require a real name.
            if !name.is_empty() && !name.starts_with('-') {
                flags.insert(format!("--{name}"));
            }
        }
    }
    flags
}

#[test]
fn help_stays_in_sync_with_the_readme_cli_contract() {
    let out = ij(&["help"]);
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stdout).to_string();

    let readme = fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("README.md"))
        .expect("README.md readable");
    let section_start = readme
        .find("## Command-line interface")
        .expect("README documents the CLI contract");
    let section = &readme[section_start..];
    let section = &section[..section[2..]
        .find("\n## ")
        .map(|i| i + 2)
        .unwrap_or(section.len())];

    // Every flag the binary advertises is documented, and vice versa —
    // including the synthetic-corpus flags.
    let in_help = flags_in(&help);
    let in_readme = flags_in(section);
    assert_eq!(
        in_help, in_readme,
        "ij help and the README CLI section list different flags"
    );
    for required in [
        "--synthetic",
        "--profile",
        "--mix",
        "--describe",
        "--rule-pack",
        "--without-rule",
        "--explain",
    ] {
        assert!(
            in_help.contains(required),
            "{required} missing from ij help"
        );
    }
    // The documented exit-code scheme and scenario names track the binary.
    for token in ["2", "3", "4", "1"] {
        assert!(help.contains(token), "exit code {token} missing from help");
    }
    for profile in [
        "baseline",
        "mesh-heavy",
        "monolith-heavy",
        "pipeline-heavy",
        "legacy",
        "policy-mature",
    ] {
        assert!(
            help.contains(profile),
            "profile {profile} missing from help"
        );
        assert!(
            section.contains(profile),
            "profile {profile} missing from README"
        );
    }
}

#[test]
fn census_synthetic_runs_a_generated_population() {
    let out = ij(&[
        "census",
        "--synthetic",
        "30",
        "--seed",
        "7",
        "--profile",
        "legacy",
        "--mix",
        "m7=0.5",
        "--threads",
        "2",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("across 30 application(s)"), "{stdout}");
}

#[test]
fn census_is_identical_across_shard_and_thread_counts() {
    let reference = ij(&["census", "--synthetic", "40", "--seed", "7"]);
    assert!(
        reference.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    for (shards, threads) in [("2", "1"), ("8", "1"), ("2", "4"), ("8", "4")] {
        let sharded = ij(&[
            "census",
            "--synthetic",
            "40",
            "--seed",
            "7",
            "--shards",
            shards,
            "--threads",
            threads,
        ]);
        assert!(sharded.status.success());
        assert_eq!(
            String::from_utf8_lossy(&reference.stdout),
            String::from_utf8_lossy(&sharded.stdout),
            "--shards {shards} --threads {threads} changed a byte of the census output"
        );
    }
}

#[test]
fn shards_flag_requires_synthetic_and_rejects_garbage() {
    // The built-in corpus runs the materializing pipeline; --shards would
    // be silently meaningless there, so it is an explicit error.
    let out = ij(&["census", "--shards", "4"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--synthetic"), "{stderr}");

    let out = ij(&["census", "--synthetic", "10", "--shards", "lots"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --shards"));

    // corpus --describe never analyzes: census-only flags are rejected.
    let out = ij(&["corpus", "--describe", "--shards", "4"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn corpus_describe_prints_population_summaries() {
    // Built-in corpus: the Table 2 ground truth.
    let out = ij(&["corpus", "--describe"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("290 application(s)"), "{stdout}");
    assert!(
        stdout.contains("total expected: 634 finding(s)"),
        "{stdout}"
    );

    // Synthetic population: summary matches the generator.
    let out = ij(&[
        "corpus",
        "--describe",
        "--synthetic",
        "40",
        "--seed",
        "3",
        "--profile",
        "mesh-heavy",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mesh-heavy"), "{stdout}");
    assert!(stdout.contains("40 application(s), seed 3"), "{stdout}");

    // --describe is mandatory for the corpus subcommand.
    let out = ij(&["corpus"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "corpus without --describe is usage"
    );

    // Census-only flags are not silently ignored on `corpus`.
    for flags in [
        &["corpus", "--describe", "--org", "CNCF"][..],
        &["corpus", "--describe", "--threads", "4"][..],
        &["corpus", "--describe", "--progress"][..],
    ] {
        let out = ij(flags);
        assert_eq!(out.status.code(), Some(2), "{flags:?} is a usage error");
    }
    // Neither is a --seed that cannot affect the built-in summary.
    let out = ij(&["corpus", "--describe", "--seed", "99"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "--seed without --synthetic errors"
    );
}

#[test]
fn synthetic_flag_errors_use_the_documented_exit_codes() {
    let out = ij(&["census", "--synthetic", "10", "--profile", "not-a-profile"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown profile"), "{stderr}");
    assert!(
        stderr.contains("mesh-heavy"),
        "names the valid profiles: {stderr}"
    );

    let out = ij(&["census", "--synthetic", "10", "--mix", "m9=1.0"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));

    let out = ij(&["census", "--synthetic", "10", "--mix", "m1=lots"]);
    assert_eq!(out.status.code(), Some(1));

    let out = ij(&["census", "--synthetic", "many"]);
    assert_eq!(out.status.code(), Some(1));

    let out = ij(&["census", "--synthetic", "10", "--org", "CNCF"]);
    assert_eq!(out.status.code(), Some(1), "--org and --synthetic conflict");

    let out = ij(&["census", "--profile", "baseline"]);
    assert_eq!(out.status.code(), Some(1), "--profile requires --synthetic");

    let out = ij(&["census", "--describe"]);
    assert_eq!(out.status.code(), Some(2), "--describe is corpus-only");
}

#[test]
fn census_rejects_unknown_dataset_and_bad_flags() {
    let out = ij(&["census", "--org", "NotADataset"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown dataset"), "{stderr}");
    assert!(stderr.contains("Banzai Cloud"), "names the valid datasets");

    let out = ij(&["census", "--threads", "many"]);
    assert_eq!(out.status.code(), Some(1));

    let out = ij(&["census", "--bogus-flag"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag is a usage error");
}

#[test]
fn rules_subcommand_lists_the_registry_and_explains_rules() {
    // Plain listing: every native rule, tagged native and enabled.
    let out = ij(&["rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for heading in ["NAME", "CLASSES", "SCOPE", "ORIGIN", "ENABLED"] {
        assert!(stdout.contains(heading), "{stdout}");
    }
    for name in ["m1", "m5", "m7", "m4star"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    assert!(stdout.contains("native"), "{stdout}");
    assert!(!stdout.contains("pack"), "no pack loaded: {stdout}");

    // With the built-in pack: shadowed natives flip to pack origin, the
    // native m5 aggregate is disabled, and the m5 sub-rules appear.
    let out = ij(&["rules", "--rule-pack", "packs/builtin.rules"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pack"), "{stdout}");
    for name in ["m5a", "m5b", "m5c", "m5d"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    let m5_row = stdout
        .lines()
        .find(|l| l.starts_with("m5 "))
        .expect("m5 row");
    assert!(
        m5_row.contains("no"),
        "native m5 disabled by pack: {m5_row}"
    );

    // --explain prints a pack rule's expression and message template.
    let out = ij(&[
        "rules",
        "--rule-pack",
        "packs/builtin.rules",
        "--explain",
        "m7",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("when:"), "{stdout}");
    assert!(stdout.contains("unit.host_network"), "{stdout}");
    assert!(stdout.contains("hostNetwork: true"), "{stdout}");

    // Native rules explain too, pointing at the Rust body.
    let out = ij(&["rules", "--explain", "m3"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("native"));

    // Unknown names are usage errors that list the known rules.
    let out = ij(&["rules", "--explain", "m99"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule `m99`"), "{stderr}");
    assert!(stderr.contains("m4star"), "lists the known rules: {stderr}");
}

#[test]
fn census_rule_pack_is_byte_identical_and_pack_errors_carry_positions() {
    // The built-in pack replaces five native rules without changing a byte.
    let native = ij(&["census", "--synthetic", "40", "--seed", "11"]);
    let packed = ij(&[
        "census",
        "--synthetic",
        "40",
        "--seed",
        "11",
        "--rule-pack",
        "packs/builtin.rules",
    ]);
    assert!(native.status.success());
    assert!(
        packed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&packed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&native.stdout),
        String::from_utf8_lossy(&packed.stdout),
        "--rule-pack packs/builtin.rules must not change the census"
    );

    // A malformed pack is a usage error rendering the file position.
    let dir = std::env::temp_dir().join(format!("ij-cli-test-pack-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let bad = dir.join("bad.rules");
    write(
        &bad,
        "rule broken\n  class = M7\n  select = unit\n  when = unit.host_network &&\n  message = x\nend\n",
    );
    let out = ij(&[
        "census",
        "--synthetic",
        "5",
        "--rule-pack",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "pack errors are usage errors");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.rules"), "{stderr}");
    assert!(stderr.contains("line 4, column"), "{stderr}");

    // A missing pack file is an ordinary failure, not a panic.
    let out = ij(&["census", "--synthetic", "5", "--rule-pack", "no/such.rules"]);
    assert_eq!(out.status.code(), Some(1));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn without_rule_flag_disables_rules_and_rejects_typos() {
    // Disabling m7 drops the hostNetwork finding from the demo chart's
    // census... exercised on the synthetic corpus for speed.
    let all = ij(&["census", "--synthetic", "30", "--seed", "7"]);
    let without = ij(&[
        "census",
        "--synthetic",
        "30",
        "--seed",
        "7",
        "--without-rule",
        "m7",
        "--without-rule",
        "m1",
    ]);
    assert!(all.status.success());
    assert!(without.status.success());
    assert_ne!(
        String::from_utf8_lossy(&all.stdout),
        String::from_utf8_lossy(&without.stdout),
        "disabling rules must change the census"
    );

    // A typo is a usage error naming the known rules — not a silent no-op.
    let out = ij(&["census", "--synthetic", "5", "--without-rule", "m7x"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule `m7x`"), "{stderr}");
    assert!(stderr.contains("known rules"), "{stderr}");

    // corpus --describe never analyzes, so the analyzer flags are rejected.
    for flags in [
        &["corpus", "--describe", "--rule-pack", "packs/builtin.rules"][..],
        &["corpus", "--describe", "--without-rule", "m7"][..],
    ] {
        let out = ij(flags);
        assert_eq!(out.status.code(), Some(2), "{flags:?} is a usage error");
    }
}

#[test]
fn serve_runs_the_churn_workload_deterministically() {
    let args = &[
        "serve",
        "--clusters",
        "2",
        "--mutations",
        "40",
        "--seed",
        "7",
    ];
    let first = ij(args);
    assert!(
        first.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(stdout.contains("total: 40 mutation(s)"), "{stdout}");
    assert!(stdout.contains("introduced"), "{stdout}");
    let second = ij(args);
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "serve output must be a pure function of its flags"
    );
}

#[test]
fn serve_verify_checks_the_oracle_without_changing_output() {
    let plain = ij(&["serve", "--mutations", "30", "--seed", "3"]);
    let verified = ij(&["serve", "--mutations", "30", "--seed", "3", "--verify"]);
    assert!(plain.status.success());
    assert!(
        verified.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&verified.stderr)
    );
    let out = String::from_utf8_lossy(&verified.stdout);
    assert!(
        out.contains("verified against the full-recompute oracle"),
        "{out}"
    );
    // Everything but the verification banner is byte-identical.
    let stripped: String = out
        .lines()
        .filter(|l| !l.contains("oracle"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(String::from_utf8_lossy(&plain.stdout), stripped);
}

#[test]
fn serve_rejects_bad_flags() {
    let out = ij(&["serve", "--bogus"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag is a usage error");

    let out = ij(&["serve", "--mutations", "lots"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --mutations"));

    let out = ij(&["serve", "--clusters", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one cluster"));

    let out = ij(&["serve", "--profile", "not-a-profile", "--mutations", "5"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown profile"));
}

#[test]
fn render_failure_uses_render_exit_code() {
    let dir = std::env::temp_dir().join(format!("ij-cli-test-badchart-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    write(&dir.join("Chart.yaml"), "name: bad\nversion: 0.0.1\n");
    write(
        &dir.join("templates/broken.yaml"),
        "value: {{ .Values.x\n", // unclosed template action
    );
    let out = ij(&["analyze", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "render failures exit with 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("failed to render"), "{stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn static_only_flag_is_accepted() {
    let dir = demo_chart_dir("static");
    let out = ij(&["analyze", dir.to_str().unwrap(), "--static-only"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("finding(s)"));
    let _ = fs::remove_dir_all(&dir);
}

/// A fixtures directory holding one fully-supported demo chart, plus
/// (optionally) one chart the engine rejects over a YAML anchor.
fn conform_fixtures(tag: &str, with_unsupported: bool) -> PathBuf {
    let root = std::env::temp_dir().join(format!("ij-cli-conform-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let demo = root.join("demo");
    write(&demo.join("Chart.yaml"), "name: demo\nversion: 0.1.0\n");
    write(&demo.join("values.yaml"), "port: 8080\n");
    write(
        &demo.join("templates/deploy.yaml"),
        "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-app
spec:
  replicas: 1
  selector:
    matchLabels:
      app: demo
  template:
    metadata:
      labels:
        app: demo
    spec:
      containers:
        - name: app
          image: img/app
          ports:
            - containerPort: {{ .Values.port }}
",
    );
    if with_unsupported {
        let bad = root.join("anchored");
        write(&bad.join("Chart.yaml"), "name: anchored\nversion: 0.1.0\n");
        write(&bad.join("values.yaml"), "defaults: &d\n  cpu: 100m\n");
    }
    root
}

#[test]
fn conform_exits_zero_when_every_chart_is_conformant() {
    let root = conform_fixtures("allgood", false);
    let out = ij(&["conform", root.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conformant"), "{stdout}");
    assert!(
        stdout.contains("1 chart(s): 1 conformant, 0 unsupported, 0 divergent"),
        "{stdout}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn conform_exits_one_with_per_chart_summary_on_losses() {
    let root = conform_fixtures("losses", true);
    let out = ij(&["conform", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "an unsupported chart is a loss");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Per-chart summary: both charts are listed, nothing silently skipped.
    assert!(stdout.contains("anchored"), "{stdout}");
    assert!(stdout.contains("unsupported"), "{stdout}");
    assert!(stdout.contains("anchor"), "the feature is named: {stdout}");
    assert!(stdout.contains("demo"), "{stdout}");
    assert!(
        stdout.contains("2 chart(s): 1 conformant, 1 unsupported, 0 divergent"),
        "{stdout}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn conform_writes_artifacts_and_gates_on_the_baseline() {
    let root = conform_fixtures("baseline", true);
    let json = root.join("out.json");
    let md = root.join("out.md");
    let out = ij(&[
        "conform",
        root.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
        "--report",
        md.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "losses still exit 1 while writing"
    );
    let json_text = fs::read_to_string(&json).expect("JSON artifact written");
    assert!(
        json_text.contains("\"status\": \"unsupported\""),
        "{json_text}"
    );
    assert!(json_text.contains("\"conformant\": 1"), "{json_text}");
    let md_text = fs::read_to_string(&md).expect("markdown artifact written");
    assert!(md_text.contains("ranked by charts lost"), "{md_text}");

    // With the freshly-written baseline the same losses are explained.
    let out = ij(&[
        "conform",
        root.to_str().unwrap(),
        "--baseline",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "baselined unsupported features are explained; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A drifted baseline fails the gate.
    fs::write(&json, json_text.replace("unsupported", "conformant")).expect("tamper");
    let out = ij(&[
        "conform",
        root.to_str().unwrap(),
        "--baseline",
        json.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("drifted"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn conform_usage_errors_exit_two() {
    // No fixtures directory at all.
    let out = ij(&["conform"]);
    assert_eq!(out.status.code(), Some(2));

    // Unknown flag.
    let root = conform_fixtures("usage", false);
    let out = ij(&["conform", root.to_str().unwrap(), "--bogus"]);
    assert_eq!(out.status.code(), Some(2));

    // Flag missing its value.
    let out = ij(&["conform", root.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(2));

    // A nonexistent path is a runtime failure, not a usage error.
    let out = ij(&["conform", root.join("missing").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a directory"));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn conform_gate_holds_on_the_vendored_fixtures() {
    // The exact invocation CI runs: the committed baseline explains every
    // unsupported fixture, so the gate passes.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = ij(&[
        "conform",
        repo.join("fixtures/charts").to_str().unwrap(),
        "--baseline",
        repo.join("CONFORMANCE.json").to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 divergent"), "{stdout}");
}
