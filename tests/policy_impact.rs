//! §4.3.2 / Figure 4b: the policy-impact study over the full corpus.
//! Paper-vs-measured deltas are documented in EXPERIMENTS.md.

use inside_job::datasets::{corpus, policy_impact, CorpusOptions};

#[test]
fn figure4b_policy_impact_shape() {
    let rows = policy_impact(&corpus(), &CorpusOptions::default()).expect("policy study runs");
    let get = |name: &str| rows.iter().find(|r| r.dataset == name).unwrap();

    // Banzai Cloud defines no policies at all → absent from the table.
    assert!(rows.iter().all(|r| r.dataset != "Banzai Cloud"));

    // "Enabled" columns are exact (Figure 4b).
    assert_eq!(get("Bitnami").enabled, 48);
    assert_eq!(get("CNCF").enabled, 4);
    assert_eq!(get("EEA").enabled, 19);
    assert_eq!(get("Prometheus C.").enabled, 5);
    assert_eq!(get("Wikimedia").enabled, 25);

    // CNCF: policies actually mitigate everything (paper: affected 0).
    assert_eq!(get("CNCF").affected, 0);
    assert_eq!(get("CNCF").reachable_pods, 0);

    // Bitnami: 3 affected charts, 14 reachable pods (1 dynamic) — exact.
    let bitnami = get("Bitnami");
    assert_eq!(bitnami.affected, 3);
    assert_eq!(bitnami.reachable_pods, 14);
    assert_eq!(bitnami.reachable_dynamic_pods, 1);

    // Prometheus C.: 3 affected, 32 reachable pods (3 dynamic) — exact.
    let prom = get("Prometheus C.");
    assert_eq!(prom.affected, 3);
    assert_eq!(prom.reachable_pods, 32);
    assert_eq!(prom.reachable_dynamic_pods, 3);

    // EEA: paper reports 8 affected / 13 pods. Our "affected" requires a
    // *reachable misconfigured endpoint*; the eighth EEA chart's issues
    // (M3 + M4B) have no such endpoint, so it measures 7 — the 13 reachable
    // pods match.
    let eea = get("EEA");
    assert_eq!(eea.reachable_pods, 13);
    assert!(
        eea.affected == 7 || eea.affected == 8,
        "measured {}",
        eea.affected
    );

    // Wikimedia: paper reports 4 affected / 8 pods (5 dynamic).
    let wiki = get("Wikimedia");
    assert_eq!(wiki.affected, 4);
    assert_eq!(wiki.reachable_pods, 8);
    assert!(wiki.reachable_dynamic_pods >= 3);

    // In every dataset with loose policies, misconfigured endpoints stayed
    // reachable — the paper's core §4.3.2 claim.
    for name in ["Bitnami", "EEA", "Prometheus C.", "Wikimedia"] {
        assert!(get(name).reachable_pods > 0, "{name} should stay exposed");
    }
}
