//! Self-measuring census harness: runs one flat-memory generated census
//! and reports wall clock, per-app cost, interner arena size, and the
//! process peak RSS (`VmHWM`). One process per measurement — the kernel's
//! high-water mark never resets, so sweeping sizes means one invocation
//! per size:
//!
//! ```text
//! cargo run --release -p ij-bench --bin rss_census -- 100000 [shards] [threads]
//! ```
//!
//! The committed numbers in `BENCH_corpus.json` come from this harness
//! (reproduce instructions there); `tests/rss_guard.rs` runs the same
//! measurement in-process at 25k apps as the CI memory-regression gate.

use ij_datasets::{CensusPipeline, CorpusGenerator, CorpusProfile, PhaseTimings};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let apps: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| usage());
    let shards: usize = args
        .next()
        .map_or(1, |a| a.parse().unwrap_or_else(|_| usage()));
    let threads: usize = args
        .next()
        .map_or(1, |a| a.parse().unwrap_or_else(|_| usage()));
    // `owned` re-registers the M4* global rule as a custom (non-builtin)
    // entry: byte-identical findings, but the pipeline must take the
    // materializing owned-string path — the pre-flat-memory cost model,
    // kept measurable for the BENCH_corpus.json comparison row.
    let owned = args.next().as_deref() == Some("owned");

    let generator = CorpusGenerator::new(
        CorpusProfile::named("baseline")
            .expect("baseline profile")
            .with_apps(apps)
            .with_seed(7),
    );
    let gen_start = Instant::now();
    let mut gen_findings = 0usize;
    for spec in generator.iter() {
        gen_findings += std::hint::black_box(spec.plan.expected_local_findings());
    }
    println!(
        "generate: {:.3}s total, {} ns/app ({gen_findings} expected findings)",
        gen_start.elapsed().as_secs_f64(),
        gen_start.elapsed().as_nanos() / apps.max(1) as u128,
    );

    let timings = Arc::new(PhaseTimings::default());
    let mut builder = CensusPipeline::builder()
        .seed(7)
        .shards(shards)
        .threads(threads)
        .timings(Arc::clone(&timings));
    if owned {
        let mut analyzer = ij_core::Analyzer::hybrid();
        analyzer.registry.register_global_rule(
            "m4star",
            &[ij_core::MisconfigId::M4Star],
            ij_core::m4_global_collisions,
        );
        builder = builder.analyzer(analyzer);
    }
    let start = Instant::now();
    let census = builder
        .build()
        .run_generated_compact(&generator)
        .expect("generated corpus renders and installs");
    let elapsed = start.elapsed();

    let (affected, total_apps) = census.affected_apps();
    println!(
        "apps={total_apps} shards={shards} threads={threads} findings={} affected={affected}",
        census.total_misconfigurations(),
    );
    println!(
        "census: {:.3}s total, {} ns/app, arena {} bytes",
        elapsed.as_secs_f64(),
        elapsed.as_nanos() / apps.max(1) as u128,
        census.table().arena_bytes(),
    );
    let phases = timings.snapshot();
    println!(
        "phases: build {:.3}s, render {:.3}s, install {:.3}s, probe {:.3}s, analyze {:.3}s",
        phases.build.as_secs_f64(),
        phases.render.as_secs_f64(),
        phases.install.as_secs_f64(),
        phases.probe.as_secs_f64(),
        phases.analyze.as_secs_f64(),
    );
    match ij_bench::peak_rss_kb() {
        Some(kb) => println!("peak RSS (VmHWM): {kb} kB"),
        None => println!("peak RSS (VmHWM): unavailable on this platform"),
    }
}

fn usage() -> ! {
    eprintln!("usage: rss_census <apps> [shards] [threads] [owned]");
    std::process::exit(2);
}
