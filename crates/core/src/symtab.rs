//! A flat-memory symbol table: every distinct string stored once in a
//! single byte arena, referenced by a dense 32-bit [`Sym`].
//!
//! The census at corpus scale produces millions of findings whose `app` /
//! `object` / `detail` fields repeat heavily (dataset names, version
//! strings, shared detail templates) or are the only owner of their bytes
//! (qualified object names). Carrying them as three owned `String`s per
//! finding costs three heap allocations plus malloc slack each; interning
//! them turns a finding into a few integers and the whole census into one
//! contiguous arena — the same trade [`ij_model::LabelInterner`] makes for
//! label sets, pushed through the finding/report path.
//!
//! ```
//! use ij_core::SymbolTable;
//!
//! let mut table = SymbolTable::new();
//! let a = table.intern("default/web");
//! let b = table.intern("default/web");
//! assert_eq!(a, b); // deduplicated
//! assert_eq!(table.resolve(a), "default/web");
//! ```

use std::collections::HashMap;

/// An interned string id: an index into one [`SymbolTable`]. Resolving a
/// `Sym` against a table it did not come from is a logic error (caught by
/// the table's bounds check at resolve time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (interning order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Candidate symbol ids behind one dedup-index hash. Hash collisions among
/// distinct strings are near-nonexistent, so the common case stores its
/// single id inline; spilling to a heap `Vec` only on a genuine collision
/// saves one allocation per unique string — hundreds of MB and a lot of
/// cache misses at million-app scale.
#[derive(Clone)]
enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

impl Bucket {
    fn ids(&self) -> &[u32] {
        match self {
            Bucket::One(id) => std::slice::from_ref(id),
            Bucket::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, id]),
            Bucket::Many(ids) => ids.push(id),
        }
    }
}

/// The arena: one byte buffer, one span per symbol, and a hash index for
/// deduplication. Symbols are dense (`0..len()`) in first-intern order, so
/// two tables fed the same strings in the same order assign identical ids —
/// the property the sharded census merge relies on.
#[derive(Clone, Default)]
pub struct SymbolTable {
    /// Every interned string, concatenated.
    bytes: String,
    /// Per symbol: (offset, length) into `bytes`.
    spans: Vec<(u32, u32)>,
    /// FNV-1a hash of the string → candidate symbol ids (collision-checked
    /// against the arena on lookup).
    index: HashMap<u64, Bucket>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes held by the arena (distinct string content only).
    pub fn arena_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Interns `s`, returning the existing symbol when the exact string was
    /// seen before.
    pub fn intern(&mut self, s: &str) -> Sym {
        let hash = fnv64(s);
        if let Some(bucket) = self.index.get(&hash) {
            for &id in bucket.ids() {
                if self.span_str(id) == s {
                    return Sym(id);
                }
            }
        }
        let offset = u32::try_from(self.bytes.len()).expect("symbol arena exceeds 4 GiB");
        let len = u32::try_from(s.len()).expect("symbol longer than 4 GiB");
        let id = u32::try_from(self.spans.len()).expect("more than 2^32 symbols");
        self.bytes.push_str(s);
        self.spans.push((offset, len));
        match self.index.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(id),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Bucket::One(id));
            }
        }
        Sym(id)
    }

    /// Looks a string up without interning it.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.index
            .get(&fnv64(s))?
            .ids()
            .iter()
            .copied()
            .find(|&id| self.span_str(id) == s)
            .map(Sym)
    }

    /// The string behind a symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.span_str(sym.0)
    }

    fn span_str(&self, id: u32) -> &str {
        let (offset, len) = self.spans[id as usize];
        &self.bytes[offset as usize..(offset + len) as usize]
    }
}

/// Deterministic: every symbol in id order. (A derived `Debug` would leak
/// the dedup `HashMap`'s arbitrary iteration order, making two identical
/// tables print differently — the determinism suites compare censuses via
/// `{:#?}`.)
impl std::fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for id in 0..self.spans.len() as u32 {
            map.entry(&id, &self.span_str(id));
        }
        map.finish()
    }
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_and_resolves() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.arena_bytes(), "alphabeta".len());
    }

    #[test]
    fn lookup_never_inserts() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup("ghost"), None);
        let a = t.intern("real");
        assert_eq!(t.lookup("real"), Some(a));
        assert_eq!(t.lookup("ghost"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_intern_order() {
        let mut t = SymbolTable::new();
        for (i, s) in ["a", "b", "c", "a", "d"].iter().enumerate() {
            let sym = t.intern(s);
            // "a" repeats: the fourth intern resolves to id 0.
            let expected = match i {
                3 => 0,
                4 => 3,
                n => n,
            };
            assert_eq!(sym.index(), expected);
        }
    }

    #[test]
    fn bucket_spills_inline_id_to_a_vec_on_collision() {
        // Real FNV-1a collisions are too rare to construct here; exercise
        // the spill path directly so a collision would still dedup right.
        let mut b = Bucket::One(3);
        assert_eq!(b.ids(), &[3]);
        b.push(7);
        assert_eq!(b.ids(), &[3, 7]);
        b.push(9);
        assert_eq!(b.ids(), &[3, 7, 9]);
    }

    #[test]
    fn empty_and_unicode_strings_round_trip() {
        let mut t = SymbolTable::new();
        let empty = t.intern("");
        let uni = t.intern("café/π");
        assert_eq!(t.resolve(empty), "");
        assert_eq!(t.resolve(uni), "café/π");
        assert_eq!(t.intern(""), empty);
    }
}
