//! Deterministic evaluator over the compiled AST, with an optional
//! atom-level trace.
//!
//! Evaluation is infallible by construction: the type-check pass
//! ([`super::compile`]) guarantees operand types, attribute ids index the
//! scope schema, and label probes carry pre-interned ids. The resolver is
//! queried only through integer ids — no string lookup happens at eval time.

use super::compile::{CKind, CompiledExpr};
use super::Comparator;
use ij_model::{AttrId, KeyId, LabelId};
use std::fmt;
use std::sync::Arc;

/// A runtime value of the expression language.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Number (integral in practice; `f64` keeps literals simple).
    Number(f64),
    /// String (shared, so resolvers can hand out cheap clones).
    Str(Arc<str>),
    /// Homogeneous list.
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True-ness; panics on non-bools (excluded by the type checker).
    pub(crate) fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => unreachable!("type checker admitted non-bool condition: {other:?}"),
        }
    }

    /// Renders the value the way message templates and traces print it:
    /// integral numbers without a decimal point, strings bare (unquoted).
    pub fn render(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 1e15 => {
                format!("{}", *n as i64)
            }
            Value::Number(n) => n.to_string(),
            Value::Str(s) => s.to_string(),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// What an expression evaluates against: one entity (application, compute
/// unit, observed socket, service, or service port) exposed as typed
/// attributes behind dense ids.
///
/// Implementations resolve ids assigned at compile time:
/// [`AttrId`]s index the scope's attribute schema, [`KeyId`]/[`LabelId`]s
/// come from the pack's label interner. The label and port hooks have
/// defaults so scopes without a compute unit (and test doubles) only
/// implement [`attr`](RuleResolver::attr).
pub trait RuleResolver {
    /// The value of one schema attribute. Must return the declared type.
    fn attr(&self, id: AttrId) -> Value;

    /// True when the current unit's labels contain the key (any value).
    fn label_key_present(&self, _id: KeyId) -> bool {
        false
    }

    /// True when the current unit's labels contain the exact pair.
    fn label_pair_present(&self, _id: LabelId) -> bool {
        false
    }

    /// The value the current unit's labels map the key to.
    fn label_value(&self, _id: KeyId) -> Option<&str> {
        None
    }

    /// True when the current unit declares `(port, protocol)`;
    /// `protocol` is the canonical upper-case name (`TCP`/`UDP`/`SCTP`).
    fn port_declared(&self, _port: u16, _protocol: &str) -> bool {
        false
    }
}

/// One atom of an evaluation trace: an attribute read, label probe,
/// function call, or comparison — the smallest units whose values explain a
/// verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAtom {
    /// The atom's source text.
    pub expr: String,
    /// Resolved inputs as `(source text, rendered value)` pairs — operands
    /// of a comparison, arguments of a call; empty for attribute reads.
    pub inputs: Vec<(String, String)>,
    /// The atom's rendered result.
    pub value: String,
}

impl fmt::Display for TraceAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.expr, self.value)?;
        for (src, val) in &self.inputs {
            write!(f, "\n    {src} = {val}")?;
        }
        Ok(())
    }
}

/// Evaluates a compiled expression. Deterministic: same entity, same
/// result, independent of thread count or iteration order.
pub fn evaluate(expr: &CompiledExpr, resolver: &dyn RuleResolver) -> Value {
    eval(expr, resolver, "", None)
}

/// Evaluates and records an atom-level trace in evaluation order.
/// Short-circuited branches contribute no atoms — the trace is exactly what
/// the evaluator looked at, which is what makes it an explanation.
/// `source` must be the text the expression was compiled from (atom spans
/// slice it).
pub fn evaluate_with_trace(
    expr: &CompiledExpr,
    resolver: &dyn RuleResolver,
    source: &str,
) -> (Value, Vec<TraceAtom>) {
    let mut atoms = Vec::new();
    let value = eval(expr, resolver, source, Some(&mut atoms));
    (value, atoms)
}

fn eval(
    expr: &CompiledExpr,
    resolver: &dyn RuleResolver,
    src: &str,
    mut trace: Option<&mut Vec<TraceAtom>>,
) -> Value {
    match &expr.kind {
        CKind::Bool(b) => Value::Bool(*b),
        CKind::Number(n) => Value::Number(*n),
        CKind::Str(s) => Value::Str(Arc::clone(s)),
        CKind::List(items) => Value::List(Arc::new(
            items
                .iter()
                .map(|item| eval(item, resolver, src, trace.as_deref_mut()))
                .collect(),
        )),
        CKind::Attr(id) => {
            let value = resolver.attr(*id);
            record(&mut trace, expr, src, Vec::new(), &value);
            value
        }
        CKind::LabelHasKey(id) => {
            let value = Value::Bool(resolver.label_key_present(*id));
            record(&mut trace, expr, src, Vec::new(), &value);
            value
        }
        CKind::LabelHasPair(id) => {
            let value = Value::Bool(resolver.label_pair_present(*id));
            record(&mut trace, expr, src, Vec::new(), &value);
            value
        }
        CKind::LabelGet(id) => {
            let value = Value::str(resolver.label_value(*id).unwrap_or(""));
            record(&mut trace, expr, src, Vec::new(), &value);
            value
        }
        CKind::PortDeclared { port, protocol } => {
            let port_v = eval(port, resolver, src, trace.as_deref_mut());
            let proto_v = eval(protocol, resolver, src, trace.as_deref_mut());
            let Value::Number(p) = port_v else {
                unreachable!("type checker admitted non-number port")
            };
            let Value::Str(proto) = &proto_v else {
                unreachable!("type checker admitted non-string protocol")
            };
            let value = Value::Bool(resolver.port_declared(p as u16, proto));
            let inputs = vec![
                (port.span.slice(src).to_string(), Value::Number(p).render()),
                (protocol.span.slice(src).to_string(), proto_v.render()),
            ];
            record(&mut trace, expr, src, inputs, &value);
            value
        }
        CKind::Call { kind, args, .. } => {
            let arg_values: Vec<Value> = match kind.lazy_arity() {
                // Lazy builtins (core.ternary) evaluate the selector first
                // and only the taken branch — the trace shows exactly the
                // branch that produced the value.
                Some(_) => {
                    let cond = eval(&args[0], resolver, src, trace.as_deref_mut());
                    let taken = if cond.truthy() { &args[1] } else { &args[2] };
                    let picked = eval(taken, resolver, src, trace.as_deref_mut());
                    return {
                        let inputs = vec![
                            (args[0].span.slice(src).to_string(), cond.render()),
                            (taken.span.slice(src).to_string(), picked.render()),
                        ];
                        record(&mut trace, expr, src, inputs, &picked);
                        picked
                    };
                }
                None => args
                    .iter()
                    .map(|a| eval(a, resolver, src, trace.as_deref_mut()))
                    .collect(),
            };
            let value = kind.run(&arg_values);
            let inputs = args
                .iter()
                .zip(&arg_values)
                .map(|(a, v)| (a.span.slice(src).to_string(), v.render()))
                .collect();
            record(&mut trace, expr, src, inputs, &value);
            value
        }
        CKind::Cmp { op, lhs, rhs } => {
            let lv = eval(lhs, resolver, src, trace.as_deref_mut());
            let rv = eval(rhs, resolver, src, trace.as_deref_mut());
            let value = Value::Bool(compare(*op, &lv, &rv));
            let inputs = vec![
                (lhs.span.slice(src).to_string(), lv.render()),
                (rhs.span.slice(src).to_string(), rv.render()),
            ];
            record(&mut trace, expr, src, inputs, &value);
            value
        }
        CKind::And(lhs, rhs) => {
            let lv = eval(lhs, resolver, src, trace.as_deref_mut());
            if !lv.truthy() {
                return Value::Bool(false);
            }
            eval(rhs, resolver, src, trace)
        }
        CKind::Or(lhs, rhs) => {
            let lv = eval(lhs, resolver, src, trace.as_deref_mut());
            if lv.truthy() {
                return Value::Bool(true);
            }
            eval(rhs, resolver, src, trace)
        }
        CKind::Not(inner) => Value::Bool(!eval(inner, resolver, src, trace).truthy()),
    }
}

fn record(
    trace: &mut Option<&mut Vec<TraceAtom>>,
    expr: &CompiledExpr,
    src: &str,
    inputs: Vec<(String, String)>,
    value: &Value,
) {
    if let Some(atoms) = trace {
        atoms.push(TraceAtom {
            expr: expr.span.slice(src).to_string(),
            inputs,
            value: value.render(),
        });
    }
}

fn compare(op: Comparator, lhs: &Value, rhs: &Value) -> bool {
    match op {
        Comparator::Eq => lhs == rhs,
        Comparator::Ne => lhs != rhs,
        Comparator::Lt | Comparator::Le | Comparator::Gt | Comparator::Ge => {
            let (Value::Number(a), Value::Number(b)) = (lhs, rhs) else {
                unreachable!("type checker admitted non-number ordering")
            };
            match op {
                Comparator::Lt => a < b,
                Comparator::Le => a <= b,
                Comparator::Gt => a > b,
                Comparator::Ge => a >= b,
                _ => unreachable!(),
            }
        }
        Comparator::Contains => match (lhs, rhs) {
            (Value::List(items), needle) => items.iter().any(|v| v == needle),
            (Value::Str(hay), Value::Str(needle)) => hay.contains(needle.as_ref()),
            _ => unreachable!("type checker admitted bad CONTAINS operands"),
        },
        Comparator::In => match (lhs, rhs) {
            (needle, Value::List(items)) => items.iter().any(|v| v == needle),
            _ => unreachable!("type checker admitted bad IN operands"),
        },
    }
}
