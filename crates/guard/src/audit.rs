//! The continuous auditor: periodic re-analysis with finding deltas.

use std::collections::HashMap;

use ij_cluster::Cluster;
use ij_core::{Analyzer, Finding};
use ij_probe::{HostBaseline, RuntimeAnalyzer};

/// What changed between two audit rounds.
#[derive(Debug, Clone, Default)]
pub struct AuditDelta {
    /// Findings present now but not in the previous round.
    pub introduced: Vec<Finding>,
    /// Findings from the previous round that disappeared.
    pub resolved: Vec<Finding>,
    /// Findings present in both rounds.
    pub persisting: Vec<Finding>,
}

impl AuditDelta {
    /// Diffs two finding lists as multisets, keyed by [`Finding::identity`].
    ///
    /// Each previous occurrence cancels at most one current occurrence, so
    /// two identical findings resolving down to one reports exactly one
    /// `resolved` and one `persisting`. Output order follows input order,
    /// which keeps the delta deterministic for canonically sorted inputs.
    /// Runs in O(previous + current).
    pub fn between(previous: &[Finding], current: &[Finding]) -> AuditDelta {
        let mut prev_counts: HashMap<u64, usize> = HashMap::new();
        for f in previous {
            *prev_counts.entry(f.identity()).or_default() += 1;
        }
        let mut cur_counts: HashMap<u64, usize> = HashMap::new();
        for f in current {
            *cur_counts.entry(f.identity()).or_default() += 1;
        }

        let mut delta = AuditDelta::default();
        for f in current {
            match prev_counts.get_mut(&f.identity()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    delta.persisting.push(f.clone());
                }
                _ => delta.introduced.push(f.clone()),
            }
        }
        for f in previous {
            match cur_counts.get_mut(&f.identity()) {
                Some(n) if *n > 0 => *n -= 1,
                _ => delta.resolved.push(f.clone()),
            }
        }
        delta
    }

    /// True when nothing changed.
    pub fn is_quiet(&self) -> bool {
        self.introduced.is_empty() && self.resolved.is_empty()
    }
}

/// Re-runs the hybrid analyzer against the live cluster, tracking deltas —
/// the reconciliation loop of the defense.
pub struct ContinuousAuditor {
    analyzer: Analyzer,
    probe: RuntimeAnalyzer,
    baseline: HostBaseline,
    app: String,
    chart_defines_policies: bool,
    previous: Option<Vec<Finding>>,
}

impl ContinuousAuditor {
    /// Creates an auditor for an application installed in the cluster. The
    /// baseline must have been captured before installation.
    pub fn new(
        app: impl Into<String>,
        baseline: HostBaseline,
        chart_defines_policies: bool,
    ) -> Self {
        ContinuousAuditor {
            analyzer: Analyzer::hybrid(),
            probe: RuntimeAnalyzer::default(),
            baseline,
            app: app.into(),
            chart_defines_policies,
            previous: None,
        }
    }

    /// Runs one audit round and reports the delta against the previous one.
    pub fn tick(&mut self, cluster: &mut Cluster) -> AuditDelta {
        let runtime = self.probe.analyze(cluster, &self.baseline);
        let objects = cluster.objects().to_vec();
        let current = self.analyzer.analyze_app(
            &self.app,
            &objects,
            cluster,
            Some(&runtime),
            self.chart_defines_policies,
        );
        let previous = self.previous.take().unwrap_or_default();
        let delta = AuditDelta::between(&previous, &current);
        self.previous = Some(current);
        delta
    }

    /// The most recent full finding list.
    pub fn latest(&self) -> &[Finding] {
        self.previous.as_deref().unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_cluster::{Cluster, ClusterConfig};
    use ij_core::MisconfigId;
    use ij_model::{Container, ContainerPort, Labels, Object, ObjectMeta, Pod, PodSpec};

    #[test]
    fn detects_newly_introduced_misconfigurations() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let baseline = HostBaseline::capture(&cluster);
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named("web").with_labels(Labels::from_pairs([("app", "web")])),
                PodSpec {
                    containers: vec![
                        Container::new("c", "img/web").with_ports(vec![ContainerPort::tcp(8080)])
                    ],
                    ..Default::default()
                },
            )))
            .unwrap();
        cluster.reconcile();

        let mut auditor = ContinuousAuditor::new("app", baseline, false);
        let first = auditor.tick(&mut cluster);
        // Round 1: only M6 (no policies).
        assert_eq!(first.introduced.len(), 1);
        assert_eq!(first.introduced[0].id, MisconfigId::M6);

        // Someone deploys an imposter with colliding labels.
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named("imposter").with_labels(Labels::from_pairs([("app", "web")])),
                PodSpec {
                    containers: vec![
                        Container::new("c", "img/other").with_ports(vec![ContainerPort::tcp(8080)])
                    ],
                    ..Default::default()
                },
            )))
            .unwrap();
        cluster.reconcile();

        let second = auditor.tick(&mut cluster);
        assert!(second.introduced.iter().any(|f| f.id == MisconfigId::M4A));
        assert!(second.persisting.iter().any(|f| f.id == MisconfigId::M6));
        assert!(!second.is_quiet());

        // Nothing changes: quiet round.
        let third = auditor.tick(&mut cluster);
        assert!(third.is_quiet());
        assert!(!auditor.latest().is_empty());
    }

    #[test]
    fn duplicate_findings_diff_as_a_multiset() {
        use ij_model::Protocol;

        let finding = Finding::new(
            MisconfigId::M1,
            "shop",
            "default/shop-server",
            "port 9200/TCP open but not declared",
        )
        .with_port(9200, Protocol::Tcp);

        // Two identical findings, one resolves: the naive Vec::contains diff
        // collapsed the pair and reported a quiet round.
        let down = AuditDelta::between(
            &[finding.clone(), finding.clone()],
            std::slice::from_ref(&finding),
        );
        assert_eq!(down.resolved.len(), 1, "one of two duplicates resolved");
        assert_eq!(down.persisting.len(), 1, "the other duplicate persists");
        assert!(down.introduced.is_empty());
        assert!(
            !down.is_quiet(),
            "a resolved duplicate is not a quiet round"
        );

        // And the mirror image: a second identical finding appearing.
        let up = AuditDelta::between(
            std::slice::from_ref(&finding),
            &[finding.clone(), finding.clone()],
        );
        assert_eq!(up.introduced.len(), 1);
        assert_eq!(up.persisting.len(), 1);
        assert!(up.resolved.is_empty());

        // Identity hashing separates near-identical findings.
        let other = finding.clone().with_port(9300, Protocol::Tcp);
        assert_ne!(finding.identity(), other.identity());
        assert_eq!(finding.identity(), finding.clone().identity());
    }
}
