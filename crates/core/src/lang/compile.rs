//! The type-check pass: untyped AST → compiled, typed AST.
//!
//! Compilation resolves every name once:
//!
//! * attribute paths become dense [`AttrId`]s against the selection scope's
//!   declared [`AttrSchema`];
//! * `labels.*` calls require literal arguments and are lowered to
//!   [`KeyId`]/[`LabelId`] probes, interned into the pack's
//!   [`LabelInterner`] *now* so evaluation never hashes a string;
//! * builtin calls are bound to their [`BuiltinKind`] and arity/type
//!   checked.
//!
//! Anything that survives this pass evaluates without error, which is why
//! the evaluator is infallible.

use super::ast::{Comparator, Expr, ExprKind};
use super::builtins::{BuiltinKind, BuiltinsRegistry};
use super::lex::{LangError, Span};
use ij_model::{AttrId, AttrSchema, AttrType, KeyId, LabelId, LabelInterner};
use std::fmt;
use std::sync::Arc;

/// An expression type. Attribute types are the primitive subset; list
/// types arise from literals and are consumed by `CONTAINS`/`IN`/`core.len`.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// Boolean.
    Bool,
    /// Number.
    Number,
    /// String.
    String,
    /// Homogeneous list.
    List(Box<Type>),
}

impl From<AttrType> for Type {
    fn from(ty: AttrType) -> Self {
        match ty {
            AttrType::Bool => Type::Bool,
            AttrType::Number => Type::Number,
            AttrType::String => Type::String,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => f.write_str("bool"),
            Type::Number => f.write_str("number"),
            Type::String => f.write_str("string"),
            Type::List(inner) => write!(f, "list<{inner}>"),
        }
    }
}

/// A type-checked expression node. Kind and type are fixed; the span still
/// points into the original source for traces and diagnostics.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    pub(crate) kind: CKind,
    pub(crate) span: Span,
    pub(crate) ty: Type,
}

impl CompiledExpr {
    /// The node's type.
    pub fn ty(&self) -> &Type {
        &self.ty
    }
}

#[derive(Debug, Clone)]
pub(crate) enum CKind {
    Bool(bool),
    Number(f64),
    Str(Arc<str>),
    Attr(AttrId),
    List(Vec<CompiledExpr>),
    Cmp {
        op: Comparator,
        lhs: Box<CompiledExpr>,
        rhs: Box<CompiledExpr>,
    },
    And(Box<CompiledExpr>, Box<CompiledExpr>),
    Or(Box<CompiledExpr>, Box<CompiledExpr>),
    Not(Box<CompiledExpr>),
    Call {
        kind: BuiltinKind,
        args: Vec<CompiledExpr>,
    },
    /// `labels.has("key")` lowered to an interned key probe.
    LabelHasKey(KeyId),
    /// `labels.is("key", "value")` lowered to an interned pair probe.
    LabelHasPair(LabelId),
    /// `labels.get("key")` lowered to an interned key lookup.
    LabelGet(KeyId),
    /// `ports.declared(port, protocol)` — a resolver probe on the current
    /// unit's declared ports.
    PortDeclared {
        port: Box<CompiledExpr>,
        protocol: Box<CompiledExpr>,
    },
}

/// Everything compilation checks against.
pub struct CompileEnv<'a> {
    /// The selection scope's attribute schema.
    pub schema: &'a AttrSchema,
    /// Human name of the scope, for diagnostics (`unit`, `service_port`, …).
    pub scope_name: &'a str,
    /// True when the scope carries a compute unit (enables `ports.*` /
    /// `labels.*`).
    pub unit_scoped: bool,
    /// Callable builtins.
    pub builtins: &'a BuiltinsRegistry,
    /// The pack-wide intern table `labels.*` literals resolve into.
    pub interner: &'a mut LabelInterner,
}

/// Type-checks and compiles one parsed expression.
pub fn compile(expr: &Expr, env: &mut CompileEnv<'_>) -> Result<CompiledExpr, LangError> {
    match &expr.kind {
        ExprKind::Bool(b) => Ok(CompiledExpr {
            kind: CKind::Bool(*b),
            span: expr.span,
            ty: Type::Bool,
        }),
        ExprKind::Number(n) => Ok(CompiledExpr {
            kind: CKind::Number(*n),
            span: expr.span,
            ty: Type::Number,
        }),
        ExprKind::String(s) => Ok(CompiledExpr {
            kind: CKind::Str(Arc::from(s.as_str())),
            span: expr.span,
            ty: Type::String,
        }),
        ExprKind::Attribute(path) => {
            let name = path.join(".");
            let Some((id, ty)) = env.schema.lookup(&name) else {
                return Err(LangError::new(
                    format!(
                        "unknown attribute `{name}` in the `{}` scope",
                        env.scope_name
                    ),
                    expr.span,
                ));
            };
            Ok(CompiledExpr {
                kind: CKind::Attr(id),
                span: expr.span,
                ty: ty.into(),
            })
        }
        ExprKind::ListLiteral(items) => {
            if items.is_empty() {
                return Err(LangError::new(
                    "empty list literal has no element type",
                    expr.span,
                ));
            }
            let compiled: Vec<CompiledExpr> = items
                .iter()
                .map(|item| compile(item, env))
                .collect::<Result<_, _>>()?;
            let elem_ty = compiled[0].ty.clone();
            for item in &compiled[1..] {
                if item.ty != elem_ty {
                    return Err(LangError::new(
                        format!(
                            "list elements must share one type: first is {elem_ty}, this is {}",
                            item.ty
                        ),
                        item.span,
                    ));
                }
            }
            Ok(CompiledExpr {
                kind: CKind::List(compiled),
                span: expr.span,
                ty: Type::List(Box::new(elem_ty)),
            })
        }
        ExprKind::Not(inner) => {
            let inner = expect_type(compile(inner, env)?, &Type::Bool, "`!`")?;
            Ok(CompiledExpr {
                kind: CKind::Not(Box::new(inner)),
                span: expr.span,
                ty: Type::Bool,
            })
        }
        ExprKind::And(lhs, rhs) => {
            let lhs = expect_type(compile(lhs, env)?, &Type::Bool, "`&&`")?;
            let rhs = expect_type(compile(rhs, env)?, &Type::Bool, "`&&`")?;
            Ok(CompiledExpr {
                kind: CKind::And(Box::new(lhs), Box::new(rhs)),
                span: expr.span,
                ty: Type::Bool,
            })
        }
        ExprKind::Or(lhs, rhs) => {
            let lhs = expect_type(compile(lhs, env)?, &Type::Bool, "`||`")?;
            let rhs = expect_type(compile(rhs, env)?, &Type::Bool, "`||`")?;
            Ok(CompiledExpr {
                kind: CKind::Or(Box::new(lhs), Box::new(rhs)),
                span: expr.span,
                ty: Type::Bool,
            })
        }
        ExprKind::Comparison { op, lhs, rhs } => {
            let lhs = compile(lhs, env)?;
            let rhs = compile(rhs, env)?;
            check_comparison(*op, &lhs, &rhs, expr.span)?;
            Ok(CompiledExpr {
                kind: CKind::Cmp {
                    op: *op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span: expr.span,
                ty: Type::Bool,
            })
        }
        ExprKind::FunctionCall { path, args } => compile_call(expr, path, args, env),
    }
}

fn check_comparison(
    op: Comparator,
    lhs: &CompiledExpr,
    rhs: &CompiledExpr,
    span: Span,
) -> Result<(), LangError> {
    match op {
        Comparator::Eq | Comparator::Ne => {
            if lhs.ty != rhs.ty {
                return Err(LangError::new(
                    format!(
                        "`{}` compares values of one type, found {} and {}",
                        op.as_str(),
                        lhs.ty,
                        rhs.ty
                    ),
                    span,
                ));
            }
            Ok(())
        }
        Comparator::Lt | Comparator::Le | Comparator::Gt | Comparator::Ge => {
            if lhs.ty != Type::Number || rhs.ty != Type::Number {
                return Err(LangError::new(
                    format!(
                        "`{}` orders numbers, found {} and {}",
                        op.as_str(),
                        lhs.ty,
                        rhs.ty
                    ),
                    span,
                ));
            }
            Ok(())
        }
        Comparator::Contains => match (&lhs.ty, &rhs.ty) {
            (Type::List(elem), needle) if needle == elem.as_ref() => Ok(()),
            (Type::String, Type::String) => Ok(()),
            (l, r) => Err(LangError::new(
                format!("`CONTAINS` needs list<t> CONTAINS t or string CONTAINS string, found {l} and {r}"),
                span,
            )),
        },
        Comparator::In => match (&lhs.ty, &rhs.ty) {
            (needle, Type::List(elem)) if needle == elem.as_ref() => Ok(()),
            (l, r) => Err(LangError::new(
                format!("`IN` needs t IN list<t>, found {l} and {r}"),
                span,
            )),
        },
    }
}

fn compile_call(
    expr: &Expr,
    path: &[String],
    args: &[Expr],
    env: &mut CompileEnv<'_>,
) -> Result<CompiledExpr, LangError> {
    let name = path.join(".");
    let Some(def) = env.builtins.lookup(&name) else {
        return Err(LangError::new(
            format!("unknown function `{name}`"),
            expr.span,
        ));
    };
    let kind = def.kind().clone();
    if kind.needs_unit() && !env.unit_scoped {
        return Err(LangError::new(
            format!(
                "`{name}` probes the current compute unit and is not available in the `{}` scope",
                env.scope_name
            ),
            expr.span,
        ));
    }

    // The labels.* family is lowered to interned id probes, so its
    // arguments must be string literals the compiler can intern now.
    match kind {
        BuiltinKind::LabelsHas | BuiltinKind::LabelsGet => {
            let [key] = args else {
                return Err(arity(&name, 1, args.len(), expr.span));
            };
            let key = literal_string(key, &name)?;
            let id = env.interner.key(key);
            let (ckind, ty) = if matches!(kind, BuiltinKind::LabelsHas) {
                (CKind::LabelHasKey(id), Type::Bool)
            } else {
                (CKind::LabelGet(id), Type::String)
            };
            return Ok(CompiledExpr {
                kind: ckind,
                span: expr.span,
                ty,
            });
        }
        BuiltinKind::LabelsIs => {
            let [key, value] = args else {
                return Err(arity(&name, 2, args.len(), expr.span));
            };
            let key = literal_string(key, &name)?;
            let value = literal_string(value, &name)?;
            let id = env.interner.pair(key, value);
            return Ok(CompiledExpr {
                kind: CKind::LabelHasPair(id),
                span: expr.span,
                ty: Type::Bool,
            });
        }
        BuiltinKind::PortsDeclared => {
            let [port, protocol] = args else {
                return Err(arity(&name, 2, args.len(), expr.span));
            };
            let port = expect_type(compile(port, env)?, &Type::Number, "`ports.declared`")?;
            let protocol = expect_type(compile(protocol, env)?, &Type::String, "`ports.declared`")?;
            return Ok(CompiledExpr {
                kind: CKind::PortDeclared {
                    port: Box::new(port),
                    protocol: Box::new(protocol),
                },
                span: expr.span,
                ty: Type::Bool,
            });
        }
        _ => {}
    }

    let compiled: Vec<CompiledExpr> = args
        .iter()
        .map(|arg| compile(arg, env))
        .collect::<Result<_, _>>()?;
    let ty = match &kind {
        BuiltinKind::Len => {
            let [arg] = compiled.as_slice() else {
                return Err(arity(&name, 1, compiled.len(), expr.span));
            };
            match &arg.ty {
                Type::List(_) | Type::String => Type::Number,
                other => {
                    return Err(LangError::new(
                        format!("`core.len` takes a list or string, found {other}"),
                        arg.span,
                    ))
                }
            }
        }
        BuiltinKind::Contains => {
            let [hay, needle] = compiled.as_slice() else {
                return Err(arity(&name, 2, compiled.len(), expr.span));
            };
            match (&hay.ty, &needle.ty) {
                (Type::List(elem), n) if n == elem.as_ref() => Type::Bool,
                (Type::String, Type::String) => Type::Bool,
                (h, n) => {
                    return Err(LangError::new(
                        format!(
                        "`core.contains` needs (list<t>, t) or (string, string), found ({h}, {n})"
                    ),
                        expr.span,
                    ))
                }
            }
        }
        BuiltinKind::Str => {
            let [arg] = compiled.as_slice() else {
                return Err(arity(&name, 1, compiled.len(), expr.span));
            };
            match &arg.ty {
                Type::Bool | Type::Number | Type::String => Type::String,
                other => {
                    return Err(LangError::new(
                        format!("`core.str` takes a scalar, found {other}"),
                        arg.span,
                    ))
                }
            }
        }
        BuiltinKind::Concat => {
            if compiled.is_empty() {
                return Err(LangError::new(
                    "`core.concat` needs at least one argument",
                    expr.span,
                ));
            }
            for arg in &compiled {
                if arg.ty != Type::String {
                    return Err(LangError::new(
                        format!("`core.concat` takes strings, found {}", arg.ty),
                        arg.span,
                    ));
                }
            }
            Type::String
        }
        BuiltinKind::Ternary => {
            let [cond, then, alt] = compiled.as_slice() else {
                return Err(arity(&name, 3, compiled.len(), expr.span));
            };
            if cond.ty != Type::Bool {
                return Err(LangError::new(
                    format!("`core.ternary` condition must be bool, found {}", cond.ty),
                    cond.span,
                ));
            }
            if then.ty != alt.ty {
                return Err(LangError::new(
                    format!(
                        "`core.ternary` branches must share one type, found {} and {}",
                        then.ty, alt.ty
                    ),
                    expr.span,
                ));
            }
            then.ty.clone()
        }
        BuiltinKind::Upper | BuiltinKind::Lower => {
            let [arg] = compiled.as_slice() else {
                return Err(arity(&name, 1, compiled.len(), expr.span));
            };
            if arg.ty != Type::String {
                return Err(LangError::new(
                    format!("`{name}` takes a string, found {}", arg.ty),
                    arg.span,
                ));
            }
            Type::String
        }
        BuiltinKind::Custom { params, ret, .. } => {
            if compiled.len() != params.len() {
                return Err(arity(&name, params.len(), compiled.len(), expr.span));
            }
            for (arg, want) in compiled.iter().zip(params) {
                if arg.ty != *want {
                    return Err(LangError::new(
                        format!("`{name}` expects {want} here, found {}", arg.ty),
                        arg.span,
                    ));
                }
            }
            ret.clone()
        }
        BuiltinKind::PortsDeclared
        | BuiltinKind::LabelsHas
        | BuiltinKind::LabelsIs
        | BuiltinKind::LabelsGet => unreachable!("lowered above"),
    };
    Ok(CompiledExpr {
        kind: CKind::Call {
            kind,
            args: compiled,
        },
        span: expr.span,
        ty,
    })
}

fn expect_type(expr: CompiledExpr, want: &Type, ctx: &str) -> Result<CompiledExpr, LangError> {
    if expr.ty != *want {
        return Err(LangError::new(
            format!("{ctx} expects {want}, found {}", expr.ty),
            expr.span,
        ));
    }
    Ok(expr)
}

fn arity(name: &str, want: usize, got: usize, span: Span) -> LangError {
    LangError::new(
        format!("`{name}` takes {want} argument(s), found {got}"),
        span,
    )
}

fn literal_string<'e>(expr: &'e Expr, fn_name: &str) -> Result<&'e str, LangError> {
    match &expr.kind {
        ExprKind::String(s) => Ok(s),
        _ => Err(LangError::new(
            format!(
                "`{fn_name}` resolves label ids at compile time, so its arguments must be \
                 string literals"
            ),
            expr.span,
        )),
    }
}
