//! Offline shim for `serde`.
//!
//! The workspace only uses serde's *derive surface* (`#[derive(Serialize,
//! Deserialize)]`) to mark types as wire-ready; nothing in the tree calls a
//! serializer. The build environment has no network access to crates.io, so
//! this proc-macro crate accepts the derives (including `#[serde(...)]`
//! helper attributes) and expands to nothing. Swapping in the real `serde`
//! is a one-line change in each manifest once a registry is reachable.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
