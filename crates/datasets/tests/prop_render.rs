//! Compiled-render equivalence: for *any* (bounded) injection plan, any
//! release namespace, and either policy posture, the compile-once render
//! path ([`ij_chart::CompiledChart`]) must produce output byte-identical to
//! the parse-per-call seed path ([`ij_chart::Chart::render`]) — and the
//! pipeline's memoized render must agree with both. This is the acceptance
//! bar of the compiled render layer, mirroring how the compiled policy
//! index was verified against the naive engine.

use ij_chart::{Release, RenderScratch};
use ij_datasets::{build_app, AppSpec, CensusPipeline, NetpolSpec, Org, Plan};
use ij_model::Object;
use proptest::prelude::*;

fn arb_netpol() -> impl Strategy<Value = NetpolSpec> {
    prop_oneof![
        Just(NetpolSpec::Missing),
        Just(NetpolSpec::DefinedDisabled { loose: false }),
        Just(NetpolSpec::DefinedDisabled { loose: true }),
        Just(NetpolSpec::Enabled { loose: false }),
        Just(NetpolSpec::Enabled { loose: true }),
    ]
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        (0usize..=2, 0usize..=2, 0usize..=2),
        (0usize..=2, 0usize..=2, 0usize..=2),
        (0usize..=2, 0usize..=2, 0usize..=2, 0usize..=2),
        arb_netpol(),
        0usize..=2,
        (1u32..=3, 0usize..=2),
    )
        .prop_map(
            |(
                (m1, m2, m3),
                (m4a, m4b, m4c),
                (m5a, m5b, m5c, m5d),
                netpol,
                m7,
                (replicas, clean),
            )| Plan {
                m1,
                m2,
                m3,
                m4a,
                m4b,
                m4c,
                m5a,
                m5b,
                m5c,
                m5d,
                netpol,
                m7,
                server_replicas: replicas,
                clean_components: clean,
                m4star_tokens: vec![],
            },
        )
}

fn arb_release() -> impl Strategy<Value = Release> {
    (0usize..3, any::<bool>()).prop_map(|(ns, force_policies)| {
        let release = Release::new("prop-rel", ["default", "apps", "prod"][ns]);
        if force_policies {
            release
                .with_values_yaml("networkPolicy:\n  enabled: true\n")
                .expect("static values parse")
        } else {
            release
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_render_is_byte_identical_to_seed_path(
        plan in arb_plan(),
        release in arb_release(),
    ) {
        let spec = AppSpec::new("prop-render", Org::Bitnami, "0.0.1", plan);
        let built = build_app(&spec);

        let naive = built.chart().render(&release).expect("seed path renders");
        let compiled = built.compiled().expect("corpus charts compile");
        let replay = compiled.render(&release).expect("compiled path renders");
        prop_assert_eq!(
            format!("{naive:#?}"),
            format!("{replay:#?}"),
            "compiled render diverged from the seed path"
        );

        // Replaying the cached ASTs again changes nothing.
        let again = compiled.render(&release).expect("second replay renders");
        prop_assert_eq!(format!("{replay:#?}"), format!("{again:#?}"));

        // The pipeline's memoized render agrees too — on the miss and on
        // the hit.
        let pipeline = CensusPipeline::builder().build();
        let miss = pipeline.render_app(&built, &release).expect("cache miss renders");
        let hit = pipeline.render_app(&built, &release).expect("cache hit renders");
        prop_assert_eq!(format!("{naive:#?}"), format!("{:#?}", *miss));
        prop_assert_eq!(format!("{:#?}", *miss), format!("{:#?}", *hit));
    }

    /// The direct-to-Value hot path carries a determinism contract: emitting
    /// each [`ij_chart::CompiledChart::render_values`] document back to text
    /// and reparsing it must reproduce the document exactly, and decoding the
    /// stream under the release namespace must yield the oracle
    /// [`ij_chart::Chart::render`] objects byte-for-byte.
    #[test]
    fn render_values_emitted_and_reparsed_matches_oracle(
        plan in arb_plan(),
        release in arb_release(),
    ) {
        let spec = AppSpec::new("prop-values", Org::Bitnami, "0.0.1", plan);
        let built = build_app(&spec);

        let oracle = built.chart().render(&release).expect("seed path renders");
        let compiled = built.compiled().expect("corpus charts compile");
        let docs = compiled.render_values(&release).expect("value path renders");

        let mut decoded = Vec::with_capacity(docs.len());
        for doc in &docs {
            let emitted = ij_yaml::to_string(doc);
            let reparsed = ij_yaml::parse(&emitted).expect("emitted document reparses");
            prop_assert_eq!(
                format!("{doc:#?}"),
                format!("{reparsed:#?}"),
                "emit/reparse round-trip changed a rendered document"
            );
            let mut obj = Object::decode(&reparsed).expect("document decodes");
            if obj.kind() != "Namespace" && obj.meta().namespace == "default" {
                obj.meta_mut().namespace = release.namespace.clone();
            }
            decoded.push(obj);
        }
        prop_assert_eq!(
            format!("{:#?}", oracle.objects),
            format!("{decoded:#?}"),
            "render_values, emitted and reparsed, diverged from the oracle render"
        );
    }

    /// Worker scratch must not leak state between apps: rendering two
    /// different apps back-to-back through one reused [`RenderScratch`] and
    /// one reused staging vec must match what each app renders into fresh
    /// buffers.
    #[test]
    fn reused_scratch_matches_fresh_buffers(
        plan_a in arb_plan(),
        plan_b in arb_plan(),
        release in arb_release(),
    ) {
        let built_a = build_app(&AppSpec::new("prop-scr-a", Org::Bitnami, "0.0.1", plan_a));
        let built_b = build_app(&AppSpec::new("prop-scr-b", Org::Cncf, "0.0.2", plan_b));

        let mut scratch = RenderScratch::default();
        let mut staged = Vec::new();
        let mut reused = Vec::new();
        for built in [&built_a, &built_b] {
            let compiled = built.compiled().expect("corpus charts compile");
            staged.clear();
            compiled
                .render_objects_into(&release, &mut scratch, &mut staged)
                .expect("reused-scratch render succeeds");
            reused.push(format!("{staged:#?}"));
        }

        for (built, seen) in [&built_a, &built_b].into_iter().zip(&reused) {
            let fresh = built
                .compiled()
                .expect("corpus charts compile")
                .render(&release)
                .expect("fresh-buffer render succeeds");
            prop_assert_eq!(
                &format!("{:#?}", fresh.objects),
                seen,
                "reused worker scratch poisoned a later app's render"
            );
        }
    }
}
