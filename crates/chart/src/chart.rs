//! Chart packaging and the render pipeline.

use crate::error::{Error, Result};
use crate::template::{build_root, parse_template, render_file, shared_defines};
use ij_model::Object;
use ij_yaml::{Map, Value};

/// A packaged application: default values, templates, and dependencies.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Chart name (also the values key its parent scopes it under).
    pub name: String,
    /// Chart version string.
    pub version: String,
    /// Human description.
    pub description: String,
    /// Default values (the chart's `values.yaml`).
    pub values: Value,
    /// Templates as `(file name, source)` pairs, rendered in order.
    pub templates: Vec<(String, TemplateSource)>,
    /// Subchart dependencies.
    pub dependencies: Vec<Dependency>,
}

/// One template file's source material.
///
/// Charts loaded from disk or written by hand carry Helm-style template
/// `Text`. Programmatic builders (the generated corpus) that already hold a
/// manifest as a structured [`Value`] can attach it as a `Doc` instead: it
/// renders exactly as `ij_yaml::to_string` of the document would, and since
/// the emitter round-trips (`parse(to_string(v)) == v`), the compiled render
/// layer can hand the document straight to decoding without materializing
/// the text at all.
#[derive(Debug, Clone)]
pub enum TemplateSource {
    /// Helm-style template text, possibly containing actions.
    Text(String),
    /// A single pre-structured YAML document.
    Doc(Value),
}

impl TemplateSource {
    /// The raw template text, when this source is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            TemplateSource::Text(s) => Some(s),
            TemplateSource::Doc(_) => None,
        }
    }

    /// The structured document, when this source is one.
    pub fn as_doc(&self) -> Option<&Value> {
        match self {
            TemplateSource::Text(_) => None,
            TemplateSource::Doc(d) => Some(d),
        }
    }
}

impl From<&str> for TemplateSource {
    fn from(s: &str) -> Self {
        TemplateSource::Text(s.to_string())
    }
}

impl From<String> for TemplateSource {
    fn from(s: String) -> Self {
        TemplateSource::Text(s)
    }
}

/// A dependency entry: a subchart plus an optional enable condition.
#[derive(Debug, Clone)]
pub struct Dependency {
    /// The dependent chart.
    pub chart: Chart,
    /// Dotted path into the *parent's* merged values (e.g.
    /// `postgresql.enabled`); when present and falsy the subchart is skipped.
    pub condition: Option<String>,
}

/// Installation parameters: release identity plus user value overrides.
#[derive(Debug, Clone)]
pub struct Release {
    /// Release name, usually interpolated into object names.
    pub name: String,
    /// Target namespace, stamped onto objects that do not set one.
    pub namespace: String,
    /// User-supplied values overlaid onto chart defaults.
    pub overrides: Value,
}

impl Release {
    /// A release with no value overrides.
    pub fn new(name: impl Into<String>, namespace: impl Into<String>) -> Self {
        Release {
            name: name.into(),
            namespace: namespace.into(),
            overrides: Value::Map(Map::new()),
        }
    }

    /// Builder-style override attachment (must be a mapping).
    pub fn with_values(mut self, overrides: Value) -> Self {
        self.overrides = overrides;
        self
    }

    /// Parses override YAML and attaches it.
    pub fn with_values_yaml(self, yaml: &str) -> Result<Self> {
        let v = ij_yaml::parse(yaml).map_err(|e| Error::Values(e.to_string()))?;
        Ok(self.with_values(v))
    }
}

/// The outcome of rendering a chart for a release.
#[derive(Debug, Clone)]
pub struct RenderedRelease {
    /// Release name.
    pub release_name: String,
    /// Release namespace.
    pub namespace: String,
    /// Root chart name.
    pub chart_name: String,
    /// All decoded objects (root chart first, then dependencies in order).
    pub objects: Vec<Object>,
}

impl RenderedRelease {
    /// Objects of a given kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Object> {
        self.objects.iter().filter(move |o| o.kind() == kind)
    }
}

impl Chart {
    /// Starts a builder.
    pub fn builder(name: impl Into<String>) -> ChartBuilder {
        ChartBuilder {
            chart: Chart {
                name: name.into(),
                version: "0.1.0".to_string(),
                description: String::new(),
                values: Value::Map(Map::new()),
                templates: Vec::new(),
                dependencies: Vec::new(),
            },
        }
    }

    /// Renders the chart (and enabled dependencies) into typed objects.
    pub fn render(&self, release: &Release) -> Result<RenderedRelease> {
        let merged = merge_values(&self.values, &release.overrides)?;
        let mut objects = Vec::new();
        self.render_into(release, &merged, &mut objects)?;
        Ok(RenderedRelease {
            release_name: release.name.clone(),
            namespace: release.namespace.clone(),
            chart_name: self.name.clone(),
            objects,
        })
    }

    /// Compiles this chart for render-many workloads: every template file
    /// (including dependencies) is lexed and parsed exactly once, and
    /// action-free files are decoded to objects ahead of time. See
    /// [`CompiledChart`](crate::CompiledChart).
    pub fn compile(&self) -> Result<crate::CompiledChart> {
        crate::CompiledChart::compile(self)
    }

    /// Renders this chart with pre-merged `values`, appending objects.
    fn render_into(
        &self,
        release: &Release,
        values: &Value,
        objects: &mut Vec<Object>,
    ) -> Result<()> {
        // Two passes, like Helm: first collect every file's named partials
        // (so `_helpers.tpl` definitions are visible chart-wide), then
        // render the non-partial files against the shared set. The shared
        // set borrows the parsed partials and the root dot is built once
        // per chart level, so per-file work is evaluation only.
        let mut parsed = Vec::with_capacity(self.templates.len());
        for (tpl_name, source) in &self.templates {
            // Doc sources carry no actions or partials; they are emitted to
            // text below so the oracle path still exercises the full
            // emit → parse → decode round trip.
            let template = match source {
                TemplateSource::Text(src) => Some(parse_template(tpl_name, src)?),
                TemplateSource::Doc(_) => None,
            };
            parsed.push((tpl_name.as_str(), template));
        }
        let shared = shared_defines(parsed.iter().filter_map(|(_, t)| t.as_ref()));
        let root = build_root(
            values.clone(),
            &release.name,
            &release.namespace,
            &self.name,
            &self.version,
        );
        for (idx, (tpl_name, template)) in parsed.iter().enumerate() {
            // Underscore files only contribute partials.
            if is_partial_file(tpl_name) {
                continue;
            }
            let rendered = match template {
                Some(template) => render_file(tpl_name, template, &shared, &root)?,
                None => {
                    let doc = self.templates[idx].1.as_doc().expect("doc source");
                    ij_yaml::to_string(doc)
                }
            };
            decode_rendered(tpl_name, &rendered, &release.namespace, objects)?;
        }
        for dep in &self.dependencies {
            if let Some(cond) = &dep.condition {
                let path: Vec<&str> = cond.split('.').collect();
                let enabled = values.path(&path).map(Value::truthy).unwrap_or(false);
                if !enabled {
                    continue;
                }
            }
            // The subchart sees its own defaults overlaid with the parent's
            // values scoped under the subchart's name.
            let scoped = values
                .get(&dep.chart.name)
                .cloned()
                .unwrap_or(Value::Map(Map::new()));
            let sub_values = merge_values(&dep.chart.values, &scoped)?;
            dep.chart.render_into(release, &sub_values, objects)?;
        }
        Ok(())
    }
}

/// Whether a template file only contributes partials (Helm's convention:
/// the *basename* starts with `_`, wherever the file sits in `templates/`).
pub(crate) fn is_partial_file(tpl_name: &str) -> bool {
    tpl_name
        .rsplit('/')
        .next()
        .is_some_and(|base| base.starts_with('_'))
}

/// Parses a rendered template's text into typed objects, stamping the
/// release namespace onto namespaced objects that do not set one (Helm's
/// behaviour). Shared by the per-render path and the compiled render layer.
pub(crate) fn decode_rendered(
    tpl_name: &str,
    rendered: &str,
    release_namespace: &str,
    objects: &mut Vec<Object>,
) -> Result<()> {
    if rendered.trim().is_empty() {
        return Ok(());
    }
    let docs = ij_yaml::parse_all(rendered).map_err(|e| Error::RenderedYaml {
        template: tpl_name.to_string(),
        source: e,
        rendered: rendered.to_string(),
    })?;
    for doc in docs.iter().filter(|d| !d.is_null()) {
        let mut obj = Object::decode(doc).map_err(|e| Error::Decode {
            template: tpl_name.to_string(),
            message: e.to_string(),
        })?;
        stamp_namespace(&mut obj, release_namespace);
        objects.push(obj);
    }
    Ok(())
}

/// Helm stamps the release namespace onto namespaced objects that do not
/// set one themselves. Public so differential harnesses can reproduce the
/// render pipeline's decode step from a [`CompiledChart::render_values`]
/// document stream (emit → parse → decode → `stamp_namespace` equals
/// [`Chart::render`] exactly).
///
/// [`CompiledChart::render_values`]: crate::CompiledChart::render_values
pub fn stamp_namespace(obj: &mut Object, release_namespace: &str) {
    if obj.kind() != "Namespace" && obj.meta().namespace == "default" {
        obj.meta_mut().namespace = release_namespace.to_string();
    }
}

/// Deep-merges `overlay` onto `base`; both must be mappings (or null).
pub(crate) fn merge_values(base: &Value, overlay: &Value) -> Result<Value> {
    let mut out = match base {
        Value::Map(m) => m.clone(),
        Value::Null => Map::new(),
        _ => return Err(Error::Values("chart values must be a mapping".into())),
    };
    match overlay {
        Value::Map(m) => out.deep_merge(m),
        Value::Null => {}
        _ => return Err(Error::Values("override values must be a mapping".into())),
    }
    Ok(Value::Map(out))
}

/// Fluent chart construction, used by the dataset generators and tests.
pub struct ChartBuilder {
    chart: Chart,
}

impl ChartBuilder {
    /// Sets the chart version.
    pub fn version(mut self, v: impl Into<String>) -> Self {
        self.chart.version = v.into();
        self
    }

    /// Sets the chart description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.chart.description = d.into();
        self
    }

    /// Sets default values from parsed YAML.
    pub fn values(mut self, values: Value) -> Self {
        self.chart.values = values;
        self
    }

    /// Sets default values from YAML text.
    pub fn values_yaml(mut self, yaml: &str) -> Result<Self> {
        self.chart.values = ij_yaml::parse(yaml).map_err(|e| Error::Values(e.to_string()))?;
        Ok(self)
    }

    /// Adds a template from Helm-style text.
    pub fn template(mut self, name: impl Into<String>, source: impl Into<String>) -> Self {
        self.chart
            .templates
            .push((name.into(), TemplateSource::Text(source.into())));
        self
    }

    /// Adds a template as a pre-structured document (one manifest per
    /// file). Equivalent to `template(name, ij_yaml::to_string(&doc))`, but
    /// lets the compiled render layer skip the text round trip entirely.
    pub fn template_doc(mut self, name: impl Into<String>, doc: Value) -> Self {
        self.chart
            .templates
            .push((name.into(), TemplateSource::Doc(doc)));
        self
    }

    /// Adds an unconditional dependency.
    pub fn dependency(mut self, chart: Chart) -> Self {
        self.chart.dependencies.push(Dependency {
            chart,
            condition: None,
        });
        self
    }

    /// Adds a dependency gated on a values path.
    pub fn dependency_if(mut self, chart: Chart, condition: impl Into<String>) -> Self {
        self.chart.dependencies.push(Dependency {
            chart,
            condition: Some(condition.into()),
        });
        self
    }

    /// Finishes the chart.
    pub fn build(self) -> Chart {
        self.chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_model::Object;

    fn web_chart() -> Chart {
        Chart::builder("web")
            .version("1.2.3")
            .values_yaml(
                "\
replicaCount: 2
service:
  port: 80
networkPolicy:
  enabled: false
",
            )
            .unwrap()
            .template(
                "deployment.yaml",
                "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-web
spec:
  replicas: {{ .Values.replicaCount }}
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
        - name: web
          image: nginx:{{ .Chart.Version }}
          ports:
            - containerPort: 8080
",
            )
            .template(
                "service.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-web
spec:
  selector:
    app: web
  ports:
    - port: {{ .Values.service.port }}
      targetPort: 8080
",
            )
            .template(
                "netpol.yaml",
                "\
{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ .Release.Name }}-web
spec:
  podSelector:
    matchLabels:
      app: web
  policyTypes:
    - Ingress
  ingress:
    - ports:
        - port: 8080
{{- end }}
",
            )
            .build()
    }

    #[test]
    fn renders_objects_with_defaults() {
        let r = web_chart().render(&Release::new("demo", "apps")).unwrap();
        assert_eq!(r.objects.len(), 2, "netpol disabled by default");
        let dep = r.of_kind("Deployment").next().unwrap();
        assert_eq!(dep.meta().name, "demo-web");
        assert_eq!(dep.meta().namespace, "apps");
        if let Object::Workload(w) = dep {
            assert_eq!(w.replicas, 2);
            assert_eq!(w.template.spec.containers[0].image, "nginx:1.2.3");
        } else {
            panic!("expected workload");
        }
    }

    #[test]
    fn overrides_enable_optional_resources() {
        let rel = Release::new("demo", "apps")
            .with_values_yaml("networkPolicy:\n  enabled: true\nreplicaCount: 5\n")
            .unwrap();
        let r = web_chart().render(&rel).unwrap();
        assert_eq!(r.objects.len(), 3);
        assert_eq!(r.of_kind("NetworkPolicy").count(), 1);
        if let Object::Workload(w) = r.of_kind("Deployment").next().unwrap() {
            assert_eq!(w.replicas, 5);
        };
    }

    #[test]
    fn dependency_scoping_and_conditions() {
        let db = Chart::builder("db")
            .values_yaml("port: 5432\n")
            .unwrap()
            .template(
                "svc.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-db
spec:
  selector:
    app: db
  ports:
    - port: {{ .Values.port }}
",
            )
            .build();
        let app = Chart::builder("app")
            .values_yaml("db:\n  enabled: true\n  port: 6543\n")
            .unwrap()
            .dependency_if(db, "db.enabled")
            .build();

        let r = app.render(&Release::new("x", "default")).unwrap();
        assert_eq!(r.objects.len(), 1);
        if let Object::Service(s) = &r.objects[0] {
            // Parent override (6543) wins over subchart default (5432).
            assert_eq!(s.spec.ports[0].port, 6543);
        } else {
            panic!("expected service");
        }

        let rel = Release::new("x", "default")
            .with_values_yaml("db:\n  enabled: false\n")
            .unwrap();
        let r = app.render(&rel).unwrap();
        assert!(r.objects.is_empty());
    }

    #[test]
    fn invalid_rendered_yaml_is_reported_with_template_name() {
        let chart = Chart::builder("bad")
            .template(
                "broken.yaml",
                "kind: Service\nmetadata:\n name: x\n  nope: 1\n",
            )
            .build();
        let err = chart.render(&Release::new("r", "default")).unwrap_err();
        match err {
            Error::RenderedYaml { template, .. } => assert_eq!(template, "broken.yaml"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn explicit_namespace_is_preserved() {
        let chart = Chart::builder("ns")
            .template(
                "svc.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: pinned
  namespace: kube-system
spec:
  selector:
    app: pinned
  ports:
    - port: 1
",
            )
            .build();
        let r = chart.render(&Release::new("r", "apps")).unwrap();
        assert_eq!(r.objects[0].meta().namespace, "kube-system");
    }

    #[test]
    fn helpers_file_partials_available_chart_wide() {
        let chart = Chart::builder("helm-style")
            .template(
                "_helpers.tpl",
                "{{ define \"app.labels\" }}app.kubernetes.io/name: {{ .Release.Name }}\napp.kubernetes.io/managed-by: helm{{ end }}",
            )
            .template(
                "deploy.yaml",
                "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}
spec:
  selector:
    matchLabels:{{ include \"app.labels\" . | nindent 6 }}
  template:
    metadata:
      labels:{{ include \"app.labels\" . | nindent 8 }}
    spec:
      containers:
        - name: app
          image: img/app
",
            )
            .template(
                "svc.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}
spec:
  selector:{{ include \"app.labels\" . | nindent 4 }}
  ports:
    - port: 80
",
            )
            .build();
        let rendered = chart.render(&Release::new("prod", "default")).unwrap();
        // The _helpers.tpl file itself renders nothing.
        assert_eq!(rendered.objects.len(), 2);
        let svc = rendered.of_kind("Service").next().unwrap();
        if let Object::Service(s) = svc {
            assert_eq!(s.spec.selector.get("app.kubernetes.io/name"), Some("prod"));
            assert_eq!(
                s.spec.selector.get("app.kubernetes.io/managed-by"),
                Some("helm")
            );
        } else {
            panic!("expected service");
        }
        let deploy = rendered.of_kind("Deployment").next().unwrap();
        if let Object::Workload(w) = deploy {
            assert!(w.selector_matches_template());
            assert_eq!(w.template.labels.len(), 2);
        } else {
            panic!("expected workload");
        }
    }

    #[test]
    fn empty_rendering_produces_no_objects() {
        let chart = Chart::builder("empty")
            .template("none.yaml", "{{ if .Values.never }}kind: Pod\n{{ end }}")
            .build();
        let r = chart.render(&Release::new("r", "default")).unwrap();
        assert!(r.objects.is_empty());
    }
}
