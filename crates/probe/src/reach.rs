//! Reachability probing: which endpoints can a vantage pod actually reach?
//!
//! This is the measurement behind the paper's §4.3.2: after force-enabling a
//! chart's own NetworkPolicies, how many *misconfigured* endpoints remain
//! reachable from an unrelated pod in the cluster?

use crate::matrix::ReachMatrix;
use ij_cluster::Cluster;
use ij_model::Protocol;

/// One endpoint reachable from the vantage pod.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachableEndpoint {
    /// Destination pod qualified name.
    pub pod: String,
    /// Destination port.
    pub port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

/// Probes every open socket of every other pod from `src` and returns the
/// endpoints where a connection would succeed.
///
/// One call computes a [`ReachMatrix`] column set over the cluster's cached
/// policy index; probing several vantage pods is cheaper still via
/// [`ReachMatrix::reachable_from`] on one shared matrix.
pub fn reachable_pod_endpoints(cluster: &Cluster, src: &str) -> Vec<ReachableEndpoint> {
    ReachMatrix::compute(cluster).reachable_from(src)
}

/// Probes every service port from `src`, returning `(service qualified
/// name, port)` pairs for which at least one backend would answer.
pub fn reachable_service_ports(cluster: &Cluster, src: &str) -> Vec<(String, u16)> {
    let mut out = Vec::new();
    for svc in cluster.services() {
        for sp in &svc.spec.ports {
            if !cluster
                .send_to_service(src, &svc.meta.namespace, &svc.meta.name, sp.port)
                .is_empty()
            {
                out.push((svc.meta.qualified_name(), sp.port));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig};
    use ij_model::{
        Container, ContainerPort, LabelSelector, Labels, NetworkPolicy, Object, ObjectMeta, Pod,
        PodSpec, Service, ServicePort,
    };

    fn base_cluster() -> Cluster {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            seed: 5,
            behaviors: BehaviorRegistry::new(),
        });
        for (name, port) in [("db", 5432u16), ("cache", 6379u16)] {
            let pod = Pod::new(
                ObjectMeta::named(name).with_labels(Labels::from_pairs([("app", name)])),
                PodSpec {
                    containers: vec![Container::new(name, format!("img/{name}"))
                        .with_ports(vec![ContainerPort::tcp(port)])],
                    ..Default::default()
                },
            );
            cluster.apply(Object::Pod(pod)).unwrap();
        }
        let attacker = Pod::new(
            ObjectMeta::named("attacker"),
            PodSpec {
                containers: vec![Container::new("sh", "alpine")],
                ..Default::default()
            },
        );
        cluster.apply(Object::Pod(attacker)).unwrap();
        cluster.reconcile();
        cluster
    }

    #[test]
    fn default_allow_everything_reachable() {
        let cluster = base_cluster();
        let reach = reachable_pod_endpoints(&cluster, "default/attacker");
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn policy_shrinks_reachability() {
        let mut cluster = base_cluster();
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                ObjectMeta::named("lock-db"),
                LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
            )))
            .unwrap();
        let reach = reachable_pod_endpoints(&cluster, "default/attacker");
        assert_eq!(reach.len(), 1);
        assert_eq!(reach[0].pod, "default/cache");
    }

    #[test]
    fn service_reachability() {
        let mut cluster = base_cluster();
        cluster
            .apply(Object::Service(Service::cluster_ip(
                ObjectMeta::named("db"),
                Labels::from_pairs([("app", "db")]),
                vec![ServicePort::tcp(5432)],
            )))
            .unwrap();
        // A service targeting a port nobody opens: unreachable (M5A symptom).
        cluster
            .apply(Object::Service(Service::cluster_ip(
                ObjectMeta::named("db-broken"),
                Labels::from_pairs([("app", "db")]),
                vec![ServicePort::tcp_to(5433, 9999)],
            )))
            .unwrap();
        let reach = reachable_service_ports(&cluster, "default/attacker");
        assert_eq!(reach, vec![("default/db".to_string(), 5432)]);
    }
}
