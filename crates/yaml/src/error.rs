//! Parse errors with source positions.

use std::fmt;

/// Result alias for YAML operations.
pub type Result<T> = std::result::Result<T, Error>;

/// A YAML parse error, pointing at the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Error {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "yaml parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for Error {}
