//! The incremental-audit equivalence property: for *any* seeded churn
//! stream — installs, uninstalls, label flips, policy additions, scale
//! events over any scenario profile — the [`IncrementalAuditor`]'s finding
//! set and deltas are byte-identical to a full re-analysis after every
//! single mutation. The incremental path is an optimization, never a
//! different answer.

use inside_job::cluster::{BehaviorRegistry, Cluster, ClusterConfig};
use inside_job::datasets::{
    apply_mutation, ChurnMutation, ChurnSession, CorpusGenerator, CorpusProfile,
};
use inside_job::guard::IncrementalAuditor;
use proptest::prelude::*;

const PROFILES: [&str; 6] = [
    "baseline",
    "mesh-heavy",
    "monolith-heavy",
    "pipeline-heavy",
    "legacy",
    "policy-mature",
];

fn harness(profile: &str, seed: u64) -> (Cluster, ChurnSession) {
    let generator = CorpusGenerator::new(
        CorpusProfile::named(profile)
            .expect("known profile")
            .with_apps(64)
            .with_seed(seed),
    );
    let cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed,
        behaviors: BehaviorRegistry::new(),
    });
    (cluster, ChurnSession::new(generator))
}

/// Feeds the auditor the M6 "chart defines policies" bit the serve engine
/// would provide.
fn register_spec(auditors: &mut [&mut IncrementalAuditor], mutation: &ChurnMutation) {
    if let ChurnMutation::Install { spec } | ChurnMutation::LabelFlip { spec, .. } = mutation {
        for auditor in auditors.iter_mut() {
            auditor.set_chart_defines_policies(&spec.name, spec.plan.netpol.defines_policy());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: after every mutation of a random stream, the
    /// incremental tick and a from-scratch full tick agree on the complete
    /// finding list and on every delta component.
    #[test]
    fn incremental_audit_equals_full_recompute(
        seed in 0u64..1_000_000,
        steps in 1usize..16,
        profile_idx in 0usize..PROFILES.len(),
    ) {
        let (mut cluster, mut session) = harness(PROFILES[profile_idx], seed);
        let mut incremental = IncrementalAuditor::new();
        let mut oracle = IncrementalAuditor::new();

        for _ in 0..steps {
            let mutation = session.next_mutation();
            register_spec(&mut [&mut incremental, &mut oracle], &mutation);
            apply_mutation(&mut cluster, &mutation).expect("churn mutations apply");

            let delta = incremental.tick(&cluster);
            let full = oracle.full_tick(&cluster);
            prop_assert_eq!(
                incremental.current(), oracle.current(),
                "finding sets diverged after `{}` of `{}`", mutation.kind(), mutation.app()
            );
            prop_assert_eq!(&delta.introduced, &full.introduced);
            prop_assert_eq!(&delta.resolved, &full.resolved);
            prop_assert_eq!(&delta.persisting, &full.persisting);
        }
    }

    /// A tick with no intervening mutation is quiet: nothing recomputed,
    /// nothing introduced or resolved, the previous findings persist.
    #[test]
    fn no_op_rounds_tick_quietly(
        seed in 0u64..1_000_000,
        steps in 1usize..8,
        profile_idx in 0usize..PROFILES.len(),
    ) {
        let (mut cluster, mut session) = harness(PROFILES[profile_idx], seed);
        let mut auditor = IncrementalAuditor::new();
        for _ in 0..steps {
            let mutation = session.next_mutation();
            register_spec(&mut [&mut auditor], &mutation);
            apply_mutation(&mut cluster, &mutation).expect("churn mutations apply");
            auditor.tick(&cluster);
        }
        let before = auditor.current().to_vec();
        let quiet = auditor.tick(&cluster);
        prop_assert!(quiet.is_quiet());
        prop_assert_eq!(&quiet.persisting, &before);
        prop_assert_eq!(auditor.current(), before.as_slice());
    }

    /// The whole engine is deterministic: replaying the same stream against
    /// a fresh cluster and auditor reproduces every delta byte-for-byte.
    #[test]
    fn audit_streams_are_deterministic(
        seed in 0u64..1_000_000,
        steps in 1usize..10,
        profile_idx in 0usize..PROFILES.len(),
    ) {
        let profile = PROFILES[profile_idx];
        let mut runs = Vec::new();
        for _ in 0..2 {
            let (mut cluster, mut session) = harness(profile, seed);
            let mut auditor = IncrementalAuditor::new();
            let mut deltas = Vec::new();
            for _ in 0..steps {
                let mutation = session.next_mutation();
                register_spec(&mut [&mut auditor], &mutation);
                apply_mutation(&mut cluster, &mutation).expect("churn mutations apply");
                let delta = auditor.tick(&cluster);
                deltas.push((mutation, delta.introduced, delta.resolved));
            }
            runs.push(deltas);
        }
        let second = runs.pop().expect("two runs");
        let first = runs.pop().expect("two runs");
        prop_assert_eq!(first, second);
    }
}
