//! The organization archetypes of the procedural corpus.
//!
//! Each archetype is a recognizable deployment style: it fixes the
//! *structural* envelope of a generated application (component count,
//! server replicas) and biases the *misconfiguration propensity* per rule
//! family. The rates themselves live in a
//! [`MisconfigMix`](crate::MisconfigMix); the archetype only scales them,
//! so one mix can drive very different populations.

use ij_core::MisconfigId;
use rand::{rngs::StdRng, Rng};

use crate::spec::Plan;

/// A deployment style the generator can synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Archetype {
    /// Many small, well-formed services around a replicated entry point —
    /// prone to label/selector mistakes (M4, M5) as the service mesh grows.
    MicroserviceMesh,
    /// One heavyweight server plus a couple of sidecars — prone to port
    /// drift between declaration and runtime (M1, M3).
    Monolith,
    /// A staged processing chain with transient workers — prone to
    /// OS-assigned dynamic ports (M2) and stale service targets.
    DataPipeline,
    /// A legacy estate of node agents on `hostNetwork: true` (M7), usually
    /// without any NetworkPolicy story.
    HostNetworkLegacy,
    /// A policy-mature organization: NetworkPolicies enabled and tight by
    /// default, very low misconfiguration rates across the board.
    PolicyMature,
}

impl Archetype {
    /// Every archetype, in generation order.
    pub const ALL: [Archetype; 5] = [
        Archetype::MicroserviceMesh,
        Archetype::Monolith,
        Archetype::DataPipeline,
        Archetype::HostNetworkLegacy,
        Archetype::PolicyMature,
    ];

    /// Short machine name (used as the generated chart-name prefix and in
    /// the population summary).
    pub fn slug(&self) -> &'static str {
        match self {
            Archetype::MicroserviceMesh => "mesh",
            Archetype::Monolith => "monolith",
            Archetype::DataPipeline => "pipeline",
            Archetype::HostNetworkLegacy => "legacy",
            Archetype::PolicyMature => "mature",
        }
    }

    /// Human-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Archetype::MicroserviceMesh => "microservice mesh",
            Archetype::Monolith => "monolith + sidecars",
            Archetype::DataPipeline => "data pipeline",
            Archetype::HostNetworkLegacy => "hostNetwork-heavy legacy",
            Archetype::PolicyMature => "policy-mature",
        }
    }

    /// Looks an archetype up by [`slug`](Self::slug).
    pub fn from_slug(slug: &str) -> Option<Archetype> {
        Archetype::ALL.into_iter().find(|a| a.slug() == slug)
    }

    /// The structural envelope: a finding-free base plan whose component
    /// count and replica spread match the deployment style. Injections are
    /// layered on top by [`MisconfigMix::sample_into`](crate::MisconfigMix).
    pub(crate) fn base_plan(&self, rng: &mut StdRng) -> Plan {
        let (replicas, clean) = match self {
            Archetype::MicroserviceMesh => (rng.gen_range(2u32..=5), rng.gen_range(3usize..=8)),
            Archetype::Monolith => (rng.gen_range(1u32..=2), rng.gen_range(0usize..=2)),
            Archetype::DataPipeline => (rng.gen_range(1u32..=3), rng.gen_range(2usize..=5)),
            Archetype::HostNetworkLegacy => (rng.gen_range(1u32..=2), rng.gen_range(0usize..=3)),
            Archetype::PolicyMature => (rng.gen_range(1u32..=4), rng.gen_range(1usize..=4)),
        };
        Plan {
            server_replicas: replicas,
            clean_components: clean,
            ..Default::default()
        }
    }

    /// Per-rule propensity multiplier applied to the profile's mix rates.
    pub fn scale(&self, id: MisconfigId) -> f64 {
        use MisconfigId::*;
        match self {
            Archetype::MicroserviceMesh => match id {
                M4A | M4B | M4C | M4Star => 2.0,
                M5A | M5B | M5C | M5D => 1.8,
                M2 => 0.5,
                _ => 1.0,
            },
            Archetype::Monolith => match id {
                M1 | M3 => 1.6,
                M4A | M4B | M4C | M4Star => 0.4,
                M5A | M5B | M5C | M5D => 0.6,
                _ => 1.0,
            },
            Archetype::DataPipeline => match id {
                M2 => 3.0,
                M5B | M5C => 1.5,
                _ => 1.0,
            },
            Archetype::HostNetworkLegacy => match id {
                M7 => 10.0,
                M1 => 1.4,
                M6 => 1.15,
                _ => 1.0,
            },
            Archetype::PolicyMature => match id {
                M6 => 0.08,
                _ => 0.25,
            },
        }
    }

    /// Probability that a *defined* policy is of the allow-everything
    /// flavour (the §4.3.2 "false sense of security" posture).
    pub(crate) fn loose_bias(&self) -> f64 {
        match self {
            Archetype::HostNetworkLegacy => 0.6,
            Archetype::PolicyMature => 0.1,
            _ => 0.3,
        }
    }
}

impl std::fmt::Display for Archetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn slugs_round_trip() {
        for a in Archetype::ALL {
            assert_eq!(Archetype::from_slug(a.slug()), Some(a));
        }
        assert_eq!(Archetype::from_slug("nope"), None);
    }

    #[test]
    fn base_plans_are_finding_free() {
        let mut rng = StdRng::seed_from_u64(7);
        for a in Archetype::ALL {
            for _ in 0..32 {
                let plan = a.base_plan(&mut rng);
                assert_eq!(
                    plan.expected_local_findings() - usize::from(plan.netpol.yields_m6()),
                    0
                );
                assert!(plan.server_replicas >= 1);
            }
        }
    }

    #[test]
    fn policy_mature_damps_every_rule() {
        for id in MisconfigId::ALL {
            assert!(Archetype::PolicyMature.scale(id) < 1.0, "{id}");
        }
    }
}
