//! The built-in rule pack against the native rules, end to end: loading
//! `packs/builtin.rules` must not change a byte of any census — same
//! findings, same order, same per-rule precision/recall — across every
//! scenario profile and thread count, and the committed pack must be
//! reproduced verbatim in `docs/RULES.md`.

use inside_job::core::{MisconfigId, RulePack, BUILTIN_PACK_SOURCE};
use inside_job::datasets::{score_corpus, CensusPipeline, CorpusGenerator, CorpusProfile};
use std::path::Path;

fn pipeline(seed: u64, threads: usize, pack: Option<&RulePack>) -> CensusPipeline {
    let mut builder = CensusPipeline::builder().seed(seed).threads(threads);
    if let Some(pack) = pack {
        builder = builder
            .rule_pack(pack)
            .expect("the built-in pack registers against the standard registry");
    }
    builder.build()
}

/// The tentpole acceptance bar: for every scenario profile, the census run
/// with the built-in pack (pack m1/m2/m6/m7 shadowing the natives, native
/// m5 disabled, pack m5a–m5d in its place) is **byte-identical** to the
/// native census — and stays identical when the pack run is parallelized.
#[test]
fn pack_census_is_byte_identical_to_native_for_every_profile() {
    let pack = RulePack::builtin();
    for profile in CorpusProfile::scenario_matrix() {
        let name = profile.name().to_string();
        let generator = CorpusGenerator::new(profile.with_apps(40).with_seed(11));
        let native = pipeline(11, 1, None)
            .run_generated(&generator)
            .expect("native census runs");
        for threads in [1, 2, 8] {
            let packed = pipeline(11, threads, Some(&pack))
                .run_generated(&generator)
                .expect("pack census runs");
            assert_eq!(
                native.apps, packed.apps,
                "{name}: pack census diverged from native at --threads {threads}"
            );
        }
    }
}

/// The pack detects exactly the injected ground truth: per-rule precision
/// and recall of 1.0 on a population large enough that every class fires.
#[test]
fn pack_rules_score_perfect_precision_and_recall() {
    let generator = CorpusGenerator::new(
        CorpusProfile::named("baseline")
            .expect("baseline profile")
            .with_apps(200)
            .with_seed(5),
    );
    let census = pipeline(5, 2, Some(&RulePack::builtin()))
        .run_generated(&generator)
        .expect("pack census runs");
    let specs: Vec<_> = generator.iter().collect();
    let report = score_corpus(
        specs
            .iter()
            .zip(&census.apps)
            .map(|(spec, app)| (spec, app.findings.as_slice())),
    );
    for id in MisconfigId::ALL {
        if id == MisconfigId::M4Star {
            continue; // attributed cluster-wide, not per-app
        }
        let class = report.class(id);
        assert_eq!(class.precision(), 1.0, "{id} precision: {class:?}");
        assert_eq!(class.recall(), 1.0, "{id} recall: {class:?}");
    }
    let overall = report.overall();
    assert_eq!(overall.false_positives, 0);
    assert_eq!(overall.false_negatives, 0);
    assert!(
        overall.true_positives > 100,
        "population too quiet to prove anything: {overall:?}"
    );
}

/// The committed pack file, the compiled-in source, and the documentation
/// agree: `packs/builtin.rules` is what `RulePack::builtin()` compiles,
/// and `docs/RULES.md` quotes it verbatim.
#[test]
fn builtin_pack_file_and_docs_stay_in_sync() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let on_disk = std::fs::read_to_string(root.join("packs/builtin.rules"))
        .expect("packs/builtin.rules readable");
    assert_eq!(
        on_disk, BUILTIN_PACK_SOURCE,
        "packs/builtin.rules and the compiled-in pack source diverged"
    );
    let docs = std::fs::read_to_string(root.join("docs/RULES.md")).expect("docs/RULES.md readable");
    assert!(
        docs.contains(BUILTIN_PACK_SOURCE),
        "docs/RULES.md must quote the built-in pack verbatim"
    );
}
