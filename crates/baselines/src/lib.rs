//! # ij-baselines — state-of-the-art tool emulators (Table 3)
//!
//! The paper compares its solution against eleven security tools. Each tool
//! is emulated here by its *capability envelope*: what evidence it can see
//! (manifests only, the API server, or runtime state) and which checks it
//! actually ships. The emulators run real logic over the same rendered
//! objects and simulated cluster the analyzer sees — the point being that
//! the misses in Table 3 are *structural* (a single-resource linter cannot
//! join services to pods; an API-reading scanner never inspects sockets),
//! not arbitrary.
//!
//! | tool | type | mechanism emulated |
//! |---|---|---|
//! | Checkov | static | per-resource IaC rules (hostNetwork, missing policy) |
//! | Kubeaudit | static | per-resource audits + namespace policy audit |
//! | KubeLinter | static | per-resource lints + dangling-service lint |
//! | Kube-score | static | per-resource score + dangling-service + policy check |
//! | Kubesec | static | per-resource risk scoring (hostNetwork) |
//! | SLI-KUBE | static | manifest rule set (hostNetwork) |
//! | Kube-bench | runtime | CIS node checks via the API (hostNetwork) |
//! | Kubescape | hybrid | API + manifests; generic duplicate-label hint |
//! | Trivy | hybrid | manifest + API misconfiguration scan (hostNetwork) |
//! | NeuVector | platform | runtime protection; reports hostNetwork exposure |
//! | StackRox | platform | policy engine over API state (hostNetwork) |

mod compare;
mod tools;

pub use compare::{run_comparison, ComparisonRow, Detection, ToolInput};
pub use tools::{all_tools, Tool, ToolKind};
