//! The evaluation harness: per-application fresh-cluster analysis (§4.2),
//! the cluster-wide pass, and the §4.3.2 policy-impact experiment.

use crate::builder::{build_app, BuiltApp};
use crate::spec::AppSpec;
use ij_chart::Release;
use ij_cluster::{Cluster, ClusterConfig, ConnectOutcome};
use ij_core::{chart_defines_network_policies, Analyzer, AppReport, Census, Finding, StaticModel};
use ij_model::{Container, Object, ObjectMeta, Pod, PodSpec};
use ij_probe::{HostBaseline, ProbeConfig, RuntimeAnalyzer};

/// Options for a corpus run.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Base seed; each application derives its own from this and its name.
    pub seed: u64,
    /// Probe configuration (noise injection, filters, double run).
    pub probe: ProbeConfig,
    /// Analyzer configuration (hybrid / static-only / runtime-only).
    pub analyzer: Analyzer,
    /// Worker nodes per ephemeral cluster.
    pub nodes: usize,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            seed: 42,
            probe: ProbeConfig::default(),
            analyzer: Analyzer::hybrid(),
            nodes: 3,
        }
    }
}

impl CorpusOptions {
    fn app_seed(&self, name: &str) -> u64 {
        // FNV-1a over the name, mixed with the base seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ self.seed
    }
}

/// The outcome of analyzing one application.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    /// Application name.
    pub app: String,
    /// Per-application findings (no M4\*).
    pub findings: Vec<Finding>,
    /// Static model, kept for the cluster-wide pass.
    pub statics: StaticModel,
}

/// Installs one built application into a fresh cluster and analyzes it,
/// following the paper's methodology: baseline → install → double-pass
/// runtime analysis → rule evaluation.
pub fn analyze_one(built: &BuiltApp, opts: &CorpusOptions) -> AppAnalysis {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: opts.nodes,
        seed: opts.app_seed(&built.spec.name),
        behaviors: built.registry(),
    });
    let baseline = HostBaseline::capture(&cluster);
    let rendered = built
        .chart
        .render(&Release::new(&built.spec.name, "default"))
        .unwrap_or_else(|e| panic!("chart {} failed to render: {e}", built.spec.name));
    cluster
        .install(&rendered)
        .unwrap_or_else(|e| panic!("chart {} failed to install: {e}", built.spec.name));
    let mut probe_cfg = opts.probe.clone();
    probe_cfg.seed = opts.app_seed(&built.spec.name).rotate_left(17);
    let runtime = RuntimeAnalyzer::new(probe_cfg).analyze(&mut cluster, &baseline);
    let findings = opts.analyzer.analyze_app(
        &built.spec.name,
        &rendered.objects,
        &cluster,
        Some(&runtime),
        chart_defines_network_policies(&built.chart),
    );
    AppAnalysis {
        app: built.spec.name.clone(),
        findings,
        statics: StaticModel::from_objects(&rendered.objects),
    }
}

/// Runs the full evaluation over a set of specifications: every application
/// in its own cluster, then the cluster-wide M4\* pass, producing the census
/// behind Table 2 and Figures 3–4.
pub fn run_census(specs: &[AppSpec], opts: &CorpusOptions) -> Census {
    let mut reports = Vec::with_capacity(specs.len());
    let mut statics = Vec::with_capacity(specs.len());
    for app_spec in specs {
        let built = build_app(app_spec);
        let analysis = analyze_one(&built, opts);
        statics.push((app_spec.name.clone(), analysis.statics));
        reports.push(AppReport {
            app: app_spec.name.clone(),
            dataset: app_spec.org.as_str().to_string(),
            version: app_spec.version.clone(),
            findings: analysis.findings,
        });
    }
    for finding in opts.analyzer.analyze_global(&statics) {
        if let Some(report) = reports.iter_mut().find(|r| r.app == finding.app) {
            report.findings.push(finding);
        }
    }
    Census { apps: reports }
}

/// One dataset row of the §4.3.2 policy-impact study (Figure 4b).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyImpact {
    /// Dataset name.
    pub dataset: String,
    /// Charts that define NetworkPolicies (force-enabled for the study).
    pub enabled: usize,
    /// Of those, charts where misconfigured endpoints stayed reachable.
    pub affected: usize,
    /// Pods with at least one reachable misconfigured port.
    pub reachable_pods: usize,
    /// Of those, pods whose reachable misconfigured port is dynamic.
    pub reachable_dynamic_pods: usize,
    /// Services that still forward to a misconfigured (undeclared) port.
    pub reachable_services: usize,
}

/// Force-enables each policy-defining chart's policies and measures which
/// misconfigured endpoints remain reachable from an unrelated attacker pod.
pub fn policy_impact(specs: &[AppSpec], opts: &CorpusOptions) -> Vec<PolicyImpact> {
    let mut rows: Vec<PolicyImpact> = Vec::new();
    for app_spec in specs {
        if !app_spec.plan.netpol.defines_policy() {
            continue;
        }
        let row = match rows.iter_mut().find(|r| r.dataset == app_spec.org.as_str()) {
            Some(r) => r,
            None => {
                rows.push(PolicyImpact {
                    dataset: app_spec.org.as_str().to_string(),
                    ..Default::default()
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.enabled += 1;

        let built = build_app(app_spec);
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: opts.nodes,
            seed: opts.app_seed(&app_spec.name),
            behaviors: built.registry(),
        });
        let release = Release::new(&app_spec.name, "default")
            .with_values_yaml("networkPolicy:\n  enabled: true\n")
            .expect("static override");
        let rendered = built.chart.render(&release).expect("corpus charts render");
        cluster.install(&rendered).expect("no admission configured");
        // Vantage point: an unrelated attacker pod in the same cluster.
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named("ij-attacker"),
                PodSpec {
                    containers: vec![Container::new("sh", "attacker/recon")],
                    ..Default::default()
                },
            )))
            .expect("no admission configured");
        cluster.reconcile();

        let statics = StaticModel::from_objects(&rendered.objects);
        let declares = |owner: &Option<String>, pod_name: &str, port: u16, proto| {
            let unit_name = owner.clone().unwrap_or_else(|| pod_name.to_string());
            statics
                .unit(&unit_name)
                .map(|u| u.declares(port, proto))
                .unwrap_or(true)
        };

        let mut pods_hit = 0usize;
        let mut dynamic_hit = 0usize;
        for rp in cluster.pods() {
            let name = rp.qualified_name();
            if name.ends_with("/ij-attacker") {
                continue;
            }
            let mut hit = false;
            let mut dynamic = false;
            for socket in &rp.sockets {
                if socket.loopback_only {
                    continue;
                }
                let misconfigured =
                    socket.ephemeral || !declares(&rp.owner, &name, socket.port, socket.protocol);
                if !misconfigured {
                    continue;
                }
                if cluster.connect("default/ij-attacker", &name, socket.port, socket.protocol)
                    == Some(ConnectOutcome::Connected)
                {
                    hit = true;
                    dynamic |= socket.ephemeral;
                }
            }
            if hit {
                pods_hit += 1;
                row.reachable_pods += 1;
                if dynamic {
                    dynamic_hit += 1;
                    row.reachable_dynamic_pods += 1;
                }
            }
        }

        // Services that still forward to an undeclared target port.
        let mut services_hit = 0usize;
        for ep in cluster.endpoints() {
            let svc_ns = ep.meta.namespace.clone();
            let svc_name = ep.meta.name.clone();
            let mut svc_hit = false;
            for addr in &ep.addresses {
                let Some(dst) = cluster.pod(&addr.pod) else {
                    continue;
                };
                if declares(&dst.owner, &addr.pod, addr.port, addr.protocol) {
                    continue;
                }
                if !dst.listens_on(addr.port, addr.protocol) {
                    continue;
                }
                let svc = cluster
                    .services()
                    .find(|s| s.meta.namespace == svc_ns && s.meta.name == svc_name);
                if let Some(svc) = svc {
                    for sp in &svc.spec.ports {
                        if sp.name == addr.port_name
                            && !cluster
                                .send_to_service("default/ij-attacker", &svc_ns, &svc_name, sp.port)
                                .is_empty()
                        {
                            svc_hit = true;
                        }
                    }
                }
            }
            if svc_hit {
                services_hit += 1;
                row.reachable_services += 1;
            }
        }

        if pods_hit > 0 || dynamic_hit > 0 || services_hit > 0 {
            row.affected += 1;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{NetpolSpec, Org, Plan};
    use ij_core::MisconfigId;

    fn analyze_plan(plan: Plan) -> Vec<Finding> {
        let app_spec = AppSpec::new("probe-app", Org::Cncf, "1.0.0", plan);
        let built = build_app(&app_spec);
        analyze_one(&built, &CorpusOptions::default()).findings
    }

    fn count(findings: &[Finding], id: MisconfigId) -> usize {
        findings.iter().filter(|f| f.id == id).count()
    }

    #[test]
    fn injected_plan_detected_exactly() {
        let plan = Plan {
            m1: 3,
            m2: 2,
            m3: 2,
            m4a: 1,
            m4b: 1,
            m4c: 1,
            m5a: 1,
            m5b: 2,
            m5c: 1,
            m5d: 1,
            m7: 2,
            netpol: NetpolSpec::Missing,
            ..Default::default()
        };
        let findings = analyze_plan(plan.clone());
        for id in MisconfigId::ALL {
            assert_eq!(
                count(&findings, id),
                plan.expected_of(id),
                "{id}: findings {findings:#?}"
            );
        }
        assert_eq!(findings.len(), plan.expected_local_findings());
    }

    #[test]
    fn clean_plan_yields_nothing() {
        let findings = analyze_plan(Plan::clean());
        assert!(findings.is_empty(), "unexpected: {findings:#?}");
    }

    #[test]
    fn disabled_policy_yields_single_m6() {
        let findings = analyze_plan(Plan {
            netpol: NetpolSpec::DefinedDisabled { loose: false },
            ..Default::default()
        });
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].id, MisconfigId::M6);
        assert!(findings[0].detail.contains("not enabled"));
    }

    #[test]
    fn census_over_small_slice() {
        let specs = vec![
            AppSpec::new(
                "alpha",
                Org::Cncf,
                "1.0.0",
                Plan {
                    m1: 1,
                    m4star_tokens: vec!["shared"],
                    ..Default::default()
                },
            ),
            AppSpec::new(
                "beta",
                Org::Cncf,
                "1.0.0",
                Plan {
                    m4star_tokens: vec!["shared"],
                    netpol: NetpolSpec::Enabled { loose: false },
                    ..Default::default()
                },
            ),
        ];
        let census = run_census(&specs, &CorpusOptions::default());
        assert_eq!(census.apps.len(), 2);
        // alpha: M1 + M6 + the global M4* (attributed to the first app).
        let alpha = &census.apps[0];
        assert_eq!(alpha.count_of(MisconfigId::M1), 1);
        assert_eq!(alpha.count_of(MisconfigId::M6), 1);
        assert_eq!(alpha.count_of(MisconfigId::M4Star), 1);
        // beta: policies enabled, clean except for its role as partner.
        assert_eq!(census.apps[1].total(), 0);
        assert_eq!(census.total_misconfigurations(), 3);
    }

    #[test]
    fn policy_impact_loose_vs_tight() {
        let specs = vec![
            AppSpec::new(
                "tight-app",
                Org::Eea,
                "1.0.0",
                Plan {
                    m1: 2,
                    netpol: NetpolSpec::Enabled { loose: false },
                    ..Default::default()
                },
            ),
            AppSpec::new(
                "loose-app",
                Org::Eea,
                "1.0.0",
                Plan {
                    m1: 2,
                    server_replicas: 2,
                    netpol: NetpolSpec::Enabled { loose: true },
                    ..Default::default()
                },
            ),
        ];
        let rows = policy_impact(&specs, &CorpusOptions::default());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.enabled, 2);
        assert_eq!(row.affected, 1, "only the loose chart stays reachable");
        assert_eq!(row.reachable_pods, 2, "both replicas of the loose server");
        assert_eq!(row.reachable_services, 0);
    }

    /// Reference FNV-1a (64-bit), independent of the implementation inside
    /// `CorpusOptions::app_seed`, so a silent constant change fails here.
    fn fnv1a(name: &str) -> u64 {
        name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
        })
    }

    #[test]
    fn app_seed_is_fnv1a_mixed_with_base_seed() {
        let opts = CorpusOptions {
            seed: 0xABCD,
            ..Default::default()
        };
        for name in ["redis", "kube-prometheus-stack", "a", ""] {
            assert_eq!(opts.app_seed(name), fnv1a(name) ^ 0xABCD, "name {name:?}");
        }
    }

    #[test]
    fn app_seed_is_stable_across_instances() {
        let a = CorpusOptions::default();
        let b = CorpusOptions::default();
        for name in ["redis", "harbor", "metallb"] {
            assert_eq!(a.app_seed(name), a.app_seed(name));
            assert_eq!(a.app_seed(name), b.app_seed(name));
        }
    }

    #[test]
    fn distinct_apps_get_distinct_seeds() {
        use std::collections::BTreeSet;
        let opts = CorpusOptions::default();
        let names: BTreeSet<String> = crate::corpus().into_iter().map(|a| a.name).collect();
        let seeds: BTreeSet<u64> = names.iter().map(|n| opts.app_seed(n)).collect();
        assert_eq!(
            seeds.len(),
            names.len(),
            "FNV-1a collision among corpus app names"
        );
    }

    #[test]
    fn base_seed_shifts_every_app_seed() {
        let a = CorpusOptions {
            seed: 1,
            ..Default::default()
        };
        let b = CorpusOptions {
            seed: 2,
            ..Default::default()
        };
        for app in crate::corpus() {
            assert_ne!(a.app_seed(&app.name), b.app_seed(&app.name), "{}", app.name);
        }
    }
}
