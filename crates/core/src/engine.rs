//! The analysis engine: combines static extraction and runtime observation
//! and evaluates the rules (§4.2.1) by iterating the [`RuleRegistry`].

use crate::finding::{sort_canonical, Finding};
use crate::model::StaticModel;
use crate::registry::{RuleRegistry, RuleScope};
use crate::rules::RuleContext;
use ij_chart::Chart;
use ij_cluster::Cluster;
use ij_model::Object;
use ij_probe::RuntimeReport;

/// Which halves of the hybrid pipeline run — the Table 3 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzerOptions {
    /// Evaluate rules over the rendered configuration (M4, M5B/M5D, M6, M7,
    /// and the static half of M5A/M5C).
    pub static_rules: bool,
    /// Evaluate rules over runtime observations (M1, M2, M3, and the
    /// runtime half of M5A/M5C).
    pub runtime_rules: bool,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        AnalyzerOptions {
            static_rules: true,
            runtime_rules: true,
        }
    }
}

/// The misconfiguration analyzer.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    /// Enabled rule groups.
    pub options: AnalyzerOptions,
    /// The rules to evaluate. Defaults to [`RuleRegistry::standard`];
    /// disable or replace entries for per-rule ablations and custom rules.
    pub registry: RuleRegistry,
}

impl Analyzer {
    /// The full hybrid analyzer (the paper's solution).
    pub fn hybrid() -> Self {
        Analyzer::default()
    }

    /// Static-only, like manifest linters.
    pub fn static_only() -> Self {
        Analyzer {
            options: AnalyzerOptions {
                static_rules: true,
                runtime_rules: false,
            },
            ..Analyzer::default()
        }
    }

    /// Runtime-only, like cluster scanners that never parse charts.
    pub fn runtime_only() -> Self {
        Analyzer {
            options: AnalyzerOptions {
                static_rules: false,
                runtime_rules: true,
            },
            ..Analyzer::default()
        }
    }

    /// Replaces the rule registry (builder style).
    pub fn with_registry(mut self, registry: RuleRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Disables one named rule (builder style); unknown names are ignored.
    pub fn without_rule(mut self, name: &str) -> Self {
        self.registry.disable(name);
        self
    }

    /// Analyzes one installed application.
    ///
    /// * `objects` — the rendered objects of the application (for the
    ///   per-app methodology this is everything in the cluster);
    /// * `cluster` — the cluster the application runs in (pod ownership);
    /// * `runtime` — the probe's report, or `None` in static-only mode;
    /// * `chart_defines_policies` — whether the chart's template set defines
    ///   NetworkPolicy resources (see [`chart_defines_network_policies`]).
    pub fn analyze_app(
        &self,
        app: &str,
        objects: &[Object],
        cluster: &Cluster,
        runtime: Option<&RuntimeReport>,
        chart_defines_policies: bool,
    ) -> Vec<Finding> {
        let statics = StaticModel::from_objects(objects);
        let ownership: Vec<(String, String)> = cluster
            .pods()
            .iter()
            .map(|p| {
                let name = p.qualified_name();
                (name.clone(), p.owner.clone().unwrap_or(name))
            })
            .collect();
        let ctx = RuleContext {
            app,
            statics: &statics,
            runtime: if self.options.runtime_rules {
                runtime
            } else {
                None
            },
            ownership: &ownership,
            chart_defines_policies,
        };

        let mut findings = Vec::new();
        for entry in self.registry.entries() {
            if !entry.is_enabled() || entry.is_global() {
                continue;
            }
            let runnable = match entry.scope() {
                RuleScope::Runtime => self.options.runtime_rules && runtime.is_some(),
                RuleScope::Static => self.options.static_rules,
            };
            if runnable {
                findings.extend(entry.run_app(&ctx));
            }
        }
        sort_canonical(&mut findings);
        findings
    }

    /// The cluster-wide pass (§4.2.1): after every application has been
    /// analyzed individually, check labels and selectors *across*
    /// applications — the registry's global rules (M4\* collisions).
    pub fn analyze_global(&self, apps: &[(String, StaticModel)]) -> Vec<Finding> {
        if !self.options.static_rules {
            return Vec::new();
        }
        let mut findings = Vec::new();
        for entry in self.registry.entries() {
            if entry.is_enabled() && entry.is_global() {
                findings.extend(entry.run_global(apps));
            }
        }
        findings
    }
}

/// True when the chart (or any dependency) has a template that can render a
/// NetworkPolicy — the signal that separates "policies not defined" from
/// "policies defined but not enabled" in M6.
pub fn chart_defines_network_policies(chart: &Chart) -> bool {
    chart.templates.iter().any(|(_, src)| match src {
        ij_chart::TemplateSource::Text(s) => s.contains("kind: NetworkPolicy"),
        ij_chart::TemplateSource::Doc(d) => {
            d.get("kind").and_then(ij_yaml::Value::as_str) == Some("NetworkPolicy")
        }
    }) || chart
        .dependencies
        .iter()
        .any(|d| chart_defines_network_policies(&d.chart))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::MisconfigId;
    use ij_chart::Release;
    use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig, ContainerBehavior, ListenerSpec};
    use ij_probe::{HostBaseline, RuntimeAnalyzer};

    /// A deliberately misconfigured application exercising most rules:
    /// * container declares 6124 (never opened, untargeted → M3) and 6121
    ///   (never opened but service-targeted → M5A, not M3), omits 9249
    ///   (opened → M1), plus an ephemeral listener (→ M2);
    /// * two services hit the same workload (→ M4B) and one of them targets
    ///   the declared-but-closed 6121 (→ M5A);
    /// * another service has a selector matching nothing (→ M5D);
    /// * no NetworkPolicy (→ M6);
    /// * a hostNetwork exporter (→ M7).
    fn bad_chart() -> Chart {
        Chart::builder("badapp")
            .template(
                "deploy.yaml",
                "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: flink
spec:
  selector:
    matchLabels:
      app: flink
  template:
    metadata:
      labels:
        app: flink
    spec:
      containers:
        - name: flink
          image: sim/flink
          ports:
            - containerPort: 6121
            - containerPort: 6123
            - containerPort: 6124
            - containerPort: 8081
",
            )
            .template(
                "exporter.yaml",
                "\
apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: exporter
spec:
  selector:
    matchLabels:
      app: exporter
  template:
    metadata:
      labels:
        app: exporter
    spec:
      hostNetwork: true
      containers:
        - name: exporter
          image: sim/exporter
          ports:
            - containerPort: 9100
",
            )
            .template(
                "svc.yaml",
                "\
apiVersion: v1
kind: Service
metadata:
  name: flink
spec:
  selector:
    app: flink
  ports:
    - port: 8081
---
apiVersion: v1
kind: Service
metadata:
  name: flink-admin
spec:
  selector:
    app: flink
  ports:
    - port: 6121
---
apiVersion: v1
kind: Service
metadata:
  name: ghost
spec:
  selector:
    app: nothing-matches
  ports:
    - port: 80
",
            )
            .build()
    }

    fn behaviors() -> BehaviorRegistry {
        let mut reg = BehaviorRegistry::new();
        // Flink opens 6123/8081 (declared), 9249 (undeclared), an ephemeral
        // port, but never 6121.
        reg.register(
            "sim/flink",
            ContainerBehavior::Listeners(vec![
                ListenerSpec::tcp(6123),
                ListenerSpec::tcp(8081),
                ListenerSpec::tcp(9249),
                ListenerSpec::ephemeral(),
            ]),
        );
        reg
    }

    fn run_analysis(analyzer: Analyzer) -> Vec<Finding> {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            seed: 11,
            behaviors: behaviors(),
        });
        let baseline = HostBaseline::capture(&cluster);
        let rendered = bad_chart()
            .render(&Release::new("badapp", "default"))
            .unwrap();
        cluster.install(&rendered).unwrap();
        let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
        let objects: Vec<Object> = cluster.objects().to_vec();
        analyzer.analyze_app("badapp", &objects, &cluster, Some(&runtime), false)
    }

    fn ids(findings: &[Finding]) -> Vec<MisconfigId> {
        let mut v: Vec<MisconfigId> = findings.iter().map(|f| f.id).collect();
        v.dedup();
        v
    }

    #[test]
    fn hybrid_finds_all_injected_classes() {
        let findings = run_analysis(Analyzer::hybrid());
        let found = ids(&findings);
        for expect in [
            MisconfigId::M1,
            MisconfigId::M2,
            MisconfigId::M3,
            MisconfigId::M4B,
            MisconfigId::M5A,
            MisconfigId::M5D,
            MisconfigId::M6,
            MisconfigId::M7,
        ] {
            assert!(found.contains(&expect), "expected {expect} in {found:?}");
        }
        // The undeclared open port is exactly 9249.
        let m1: Vec<_> = findings
            .iter()
            .filter(|f| f.id == MisconfigId::M1)
            .collect();
        assert_eq!(m1.len(), 1);
        assert_eq!(m1[0].port, Some(9249));
        // The declared-but-closed *untargeted* port is exactly 6124; the
        // service-targeted 6121 is accounted as M5A instead (Table 2's
        // disjoint per-class counting).
        let m3: Vec<_> = findings
            .iter()
            .filter(|f| f.id == MisconfigId::M3)
            .collect();
        assert_eq!(m3.len(), 1);
        assert_eq!(m3[0].port, Some(6124));
        // M5A points at the service that targets 6121.
        let m5a: Vec<_> = findings
            .iter()
            .filter(|f| f.id == MisconfigId::M5A)
            .collect();
        assert_eq!(m5a.len(), 1);
        assert!(m5a[0].object.contains("flink-admin"));
    }

    #[test]
    fn static_only_misses_runtime_classes() {
        let findings = run_analysis(Analyzer::static_only());
        let found = ids(&findings);
        assert!(!found.contains(&MisconfigId::M1));
        assert!(!found.contains(&MisconfigId::M2));
        assert!(!found.contains(&MisconfigId::M3));
        assert!(!found.contains(&MisconfigId::M5A));
        assert!(found.contains(&MisconfigId::M4B));
        assert!(found.contains(&MisconfigId::M5D));
        assert!(found.contains(&MisconfigId::M6));
        assert!(found.contains(&MisconfigId::M7));
    }

    #[test]
    fn runtime_only_misses_relationship_classes() {
        let findings = run_analysis(Analyzer::runtime_only());
        let found = ids(&findings);
        assert!(found.contains(&MisconfigId::M1));
        assert!(found.contains(&MisconfigId::M2));
        assert!(found.contains(&MisconfigId::M3));
        assert!(!found.contains(&MisconfigId::M4B));
        assert!(!found.contains(&MisconfigId::M5D));
        assert!(!found.contains(&MisconfigId::M6));
        assert!(!found.contains(&MisconfigId::M7));
    }

    #[test]
    fn disabling_one_rule_drops_exactly_that_class() {
        let full = run_analysis(Analyzer::hybrid());
        let without = run_analysis(Analyzer::hybrid().without_rule("m7"));
        assert!(full.iter().any(|f| f.id == MisconfigId::M7));
        let expected: Vec<_> = full
            .iter()
            .filter(|f| f.id != MisconfigId::M7)
            .cloned()
            .collect();
        assert_eq!(
            without, expected,
            "disabling m7 must drop exactly the M7 findings"
        );
    }

    #[test]
    fn disabling_global_rule_silences_cluster_wide_pass() {
        let apps = vec![
            ("a".to_string(), StaticModel::default()),
            ("b".to_string(), StaticModel::default()),
        ];
        let analyzer = Analyzer::hybrid().without_rule("m4star");
        assert!(analyzer.analyze_global(&apps).is_empty());
    }

    #[test]
    fn m6_distinguishes_disabled_from_missing() {
        let chart_with_disabled_policy = Chart::builder("p")
            .values_yaml("networkPolicy:\n  enabled: false\n")
            .unwrap()
            .template(
                "np.yaml",
                "\
{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: lock
spec:
  podSelector: {}
{{- end }}
",
            )
            .template(
                "pod.yaml",
                "\
apiVersion: v1
kind: Pod
metadata:
  name: p
  labels:
    app: p
spec:
  containers:
    - name: p
      image: img/p
",
            )
            .build();
        assert!(chart_defines_network_policies(&chart_with_disabled_policy));

        let mut cluster = Cluster::new(ClusterConfig::default());
        let rendered = chart_with_disabled_policy
            .render(&Release::new("p", "default"))
            .unwrap();
        cluster.install(&rendered).unwrap();
        let objects: Vec<Object> = cluster.objects().to_vec();
        let findings = Analyzer::hybrid().analyze_app("p", &objects, &cluster, None, true);
        let m6: Vec<_> = findings
            .iter()
            .filter(|f| f.id == MisconfigId::M6)
            .collect();
        assert_eq!(m6.len(), 1);
        assert!(m6[0].detail.contains("not enabled"));
    }

    #[test]
    fn global_pass_detects_cross_app_collisions() {
        let mk_model = |app: &str| {
            let chart = Chart::builder(app)
                .template(
                    "pod.yaml",
                    "\
apiVersion: v1
kind: Pod
metadata:
  name: APP-pod
  labels:
    app.kubernetes.io/part-of: shared-stack
spec:
  containers:
    - name: c
      image: img
"
                    .replace("APP", app),
                )
                .build();
            let rendered = chart.render(&Release::new(app, "default")).unwrap();
            StaticModel::from_objects(&rendered.objects)
        };
        let apps = vec![
            ("alpha".to_string(), mk_model("alpha")),
            ("beta".to_string(), mk_model("beta")),
        ];
        let findings = Analyzer::hybrid().analyze_global(&apps);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].id, MisconfigId::M4Star);
        assert!(findings[0].detail.contains("alpha"));
        assert!(findings[0].detail.contains("beta"));
    }
}
