//! Interned, flat-memory findings and reports.
//!
//! A [`crate::Finding`] owns three `String`s; at corpus scale (10⁵–10⁶
//! applications) that is millions of small allocations holding heavily
//! repeated bytes. The compact representation stores every string once in a
//! [`SymbolTable`] and keys findings by [`Sym`] ids, which turns a finding
//! into a handful of integers and a whole census into one arena plus flat
//! vectors. Rendering resolves ids lazily at output time; identities hash
//! the *resolved* bytes, so continuous-audit multisets keyed by
//! [`crate::Finding::identity`] see no difference between the two
//! representations.
//!
//! The module also hosts the interned cluster-wide M4\* pass
//! ([`m4_global_collisions_compact`]): the string-keyed implementation that
//! used to live in `rules.rs` is now a thin wrapper that interns its input
//! and delegates here, so both entry points produce byte-identical findings
//! by construction.

use crate::finding::{identity_over, Finding, MisconfigId};
use crate::model::StaticModel;
use crate::report::{AppReport, Census, DatasetRow};
use crate::symtab::{Sym, SymbolTable};
use ij_cluster::PodSet;
use ij_model::Protocol;
use std::collections::BTreeMap;

/// A [`Finding`] with its string fields replaced by interned symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactFinding {
    /// Misconfiguration class.
    pub id: MisconfigId,
    /// Interned application name.
    pub app: Sym,
    /// Interned qualified object name.
    pub object: Sym,
    /// Interned detail text.
    pub detail: Sym,
    /// Port involved, when port-specific.
    pub port: Option<u16>,
    /// Protocol of that port.
    pub protocol: Option<Protocol>,
}

impl CompactFinding {
    /// Interns an owned finding.
    pub fn intern(f: &Finding, table: &mut SymbolTable) -> Self {
        CompactFinding {
            id: f.id,
            app: table.intern(&f.app),
            object: table.intern(&f.object),
            detail: table.intern(&f.detail),
            port: f.port,
            protocol: f.protocol,
        }
    }

    /// Materializes the owned representation.
    pub fn resolve(&self, table: &SymbolTable) -> Finding {
        Finding {
            id: self.id,
            app: table.resolve(self.app).to_string(),
            object: table.resolve(self.object).to_string(),
            detail: table.resolve(self.detail).to_string(),
            port: self.port,
            protocol: self.protocol,
        }
    }

    /// The identity hash over resolved bytes — byte-identical to
    /// [`Finding::identity`] of [`CompactFinding::resolve`] by construction
    /// (both delegate to the same hasher).
    pub fn identity(&self, table: &SymbolTable) -> u64 {
        identity_over(
            self.id,
            table.resolve(self.app),
            table.resolve(self.object),
            table.resolve(self.detail),
            self.port,
            self.protocol,
        )
    }

    /// Re-interns into another table.
    fn remap(&self, from: &SymbolTable, to: &mut SymbolTable) -> CompactFinding {
        CompactFinding {
            id: self.id,
            app: to.intern(from.resolve(self.app)),
            object: to.intern(from.resolve(self.object)),
            detail: to.intern(from.resolve(self.detail)),
            port: self.port,
            protocol: self.protocol,
        }
    }
}

/// Sorts compact findings into the canonical report order — the same
/// `(class, object, port)` stable sort as [`crate::sort_canonical`], keyed
/// on resolved strings so the order matches the owned path byte-for-byte.
pub fn sort_canonical_compact(findings: &mut [CompactFinding], table: &SymbolTable) {
    findings.sort_by(|a, b| {
        (a.id, table.resolve(a.object), a.port).cmp(&(b.id, table.resolve(b.object), b.port))
    });
}

/// An [`AppReport`] carrying interned symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactAppReport {
    /// Interned application name.
    pub app: Sym,
    /// Interned dataset / organization name.
    pub dataset: Sym,
    /// Interned chart version string.
    pub version: Sym,
    /// Findings of the per-app and cluster-wide passes.
    pub findings: Vec<CompactFinding>,
}

impl CompactAppReport {
    /// Interns an owned report.
    pub fn intern(report: &AppReport, table: &mut SymbolTable) -> Self {
        CompactAppReport {
            app: table.intern(&report.app),
            dataset: table.intern(&report.dataset),
            version: table.intern(&report.version),
            findings: report
                .findings
                .iter()
                .map(|f| CompactFinding::intern(f, table))
                .collect(),
        }
    }

    /// Materializes the owned representation.
    pub fn resolve(&self, table: &SymbolTable) -> AppReport {
        AppReport {
            app: table.resolve(self.app).to_string(),
            dataset: table.resolve(self.dataset).to_string(),
            version: table.resolve(self.version).to_string(),
            findings: self.findings.iter().map(|f| f.resolve(table)).collect(),
        }
    }

    /// Re-interns into another table.
    pub fn remap(&self, from: &SymbolTable, to: &mut SymbolTable) -> CompactAppReport {
        CompactAppReport {
            app: to.intern(from.resolve(self.app)),
            dataset: to.intern(from.resolve(self.dataset)),
            version: to.intern(from.resolve(self.version)),
            findings: self.findings.iter().map(|f| f.remap(from, to)).collect(),
        }
    }

    /// Total misconfiguration count.
    pub fn total(&self) -> usize {
        self.findings.len()
    }

    /// Count of one class.
    pub fn count_of(&self, id: MisconfigId) -> usize {
        self.findings.iter().filter(|f| f.id == id).count()
    }

    /// True when any finding exists.
    pub fn is_affected(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// A whole census in flat memory: one symbol table plus interned
/// per-application reports. Aggregations ([`CompactCensus::table2`],
/// totals) match [`Census`] exactly — interning is injective, so grouping
/// by symbol is grouping by string.
#[derive(Debug, Clone, Default)]
pub struct CompactCensus {
    table: SymbolTable,
    /// Per-application reports, in analysis order.
    pub apps: Vec<CompactAppReport>,
}

impl CompactCensus {
    /// Assembles a census from a table and its reports.
    pub fn new(table: SymbolTable, apps: Vec<CompactAppReport>) -> Self {
        CompactCensus { table, apps }
    }

    /// Interns an owned census.
    pub fn intern(census: &Census) -> Self {
        let mut table = SymbolTable::new();
        let apps = census
            .apps
            .iter()
            .map(|a| CompactAppReport::intern(a, &mut table))
            .collect();
        CompactCensus { table, apps }
    }

    /// The backing symbol table.
    pub fn table(&self) -> &SymbolTable {
        &self.table
    }

    /// Materializes the owned representation.
    pub fn resolve(&self) -> Census {
        Census {
            apps: self.apps.iter().map(|a| a.resolve(&self.table)).collect(),
        }
    }

    /// All Table 2 rows, identical to `self.resolve().table2()` without the
    /// materialization.
    pub fn table2(&self) -> Vec<DatasetRow> {
        // Dataset symbols in first-appearance order; datasets are few, so a
        // linear scan beats hashing.
        let mut order: Vec<Sym> = Vec::new();
        for a in &self.apps {
            if !order.contains(&a.dataset) {
                order.push(a.dataset);
            }
        }
        order
            .iter()
            .map(|&dataset| {
                let mut counts: BTreeMap<MisconfigId, usize> = BTreeMap::new();
                let mut affected = 0;
                let mut total_apps = 0;
                for a in self.apps.iter().filter(|a| a.dataset == dataset) {
                    total_apps += 1;
                    if a.is_affected() {
                        affected += 1;
                    }
                    for f in &a.findings {
                        *counts.entry(f.id).or_default() += 1;
                    }
                }
                DatasetRow {
                    dataset: self.table.resolve(dataset).to_string(),
                    affected,
                    total_apps,
                    counts,
                }
            })
            .collect()
    }

    /// Grand total of misconfigurations.
    pub fn total_misconfigurations(&self) -> usize {
        self.apps.iter().map(CompactAppReport::total).sum()
    }

    /// Applications affected / total.
    pub fn affected_apps(&self) -> (usize, usize) {
        (
            self.apps.iter().filter(|a| a.is_affected()).count(),
            self.apps.len(),
        )
    }
}

/// One compute unit of the interned cluster-wide model: just the fields the
/// M4\* pass reads, as symbols.
#[derive(Debug, Clone)]
pub struct GlobalUnit {
    /// Interned qualified name.
    pub name: Sym,
    /// Interned namespace.
    pub namespace: Sym,
    /// Interned `Labels` rendering (`k=v,...`), the collision-group key.
    pub labels_rendered: Sym,
    /// Interned label pairs, in key order.
    pub label_pairs: Vec<(Sym, Sym)>,
}

/// One service of the interned cluster-wide model.
#[derive(Debug, Clone)]
pub struct GlobalService {
    /// Interned qualified name.
    pub object: Sym,
    /// Interned namespace.
    pub namespace: Sym,
    /// Interned selector rendering (`k=v,...`).
    pub selector_rendered: Sym,
    /// Interned selector pairs, in key order.
    pub selector_pairs: Vec<(Sym, Sym)>,
}

/// Everything the cluster-wide M4\* pass needs from one application, with
/// every string interned. At corpus scale the pipeline keeps one of these
/// per streamed application instead of a full [`StaticModel`].
#[derive(Debug, Clone)]
pub struct GlobalAppModel {
    /// Interned application name.
    pub app: Sym,
    /// Compute units.
    pub units: Vec<GlobalUnit>,
    /// Services.
    pub services: Vec<GlobalService>,
}

impl GlobalAppModel {
    /// Interns the M4\*-relevant slice of a static model.
    pub fn intern(app: &str, model: &StaticModel, table: &mut SymbolTable) -> Self {
        GlobalAppModel {
            app: table.intern(app),
            units: model
                .units
                .iter()
                .map(|u| GlobalUnit {
                    name: table.intern(&u.name),
                    namespace: table.intern(&u.namespace),
                    labels_rendered: table.intern(&u.labels.to_string()),
                    label_pairs: u
                        .labels
                        .iter()
                        .map(|(k, v)| (table.intern(k), table.intern(v)))
                        .collect(),
                })
                .collect(),
            services: model
                .services
                .iter()
                .map(|s| GlobalService {
                    object: table.intern(&s.meta.qualified_name()),
                    namespace: table.intern(&s.meta.namespace),
                    selector_rendered: table.intern(&s.spec.selector.to_string()),
                    selector_pairs: s
                        .spec
                        .selector
                        .iter()
                        .map(|(k, v)| (table.intern(k), table.intern(v)))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Re-interns into another table.
    pub fn remap(&self, from: &SymbolTable, to: &mut SymbolTable) -> GlobalAppModel {
        let sym = |s: Sym, to: &mut SymbolTable| to.intern(from.resolve(s));
        GlobalAppModel {
            app: sym(self.app, to),
            units: self
                .units
                .iter()
                .map(|u| GlobalUnit {
                    name: sym(u.name, to),
                    namespace: sym(u.namespace, to),
                    labels_rendered: sym(u.labels_rendered, to),
                    label_pairs: u
                        .label_pairs
                        .iter()
                        .map(|&(k, v)| (sym(k, to), sym(v, to)))
                        .collect(),
                })
                .collect(),
            services: self
                .services
                .iter()
                .map(|s| GlobalService {
                    object: sym(s.object, to),
                    namespace: sym(s.namespace, to),
                    selector_rendered: sym(s.selector_rendered, to),
                    selector_pairs: s
                        .selector_pairs
                        .iter()
                        .map(|&(k, v)| (sym(k, to), sym(v, to)))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// The cluster-wide M4\* pass over interned models. Produces the same
/// findings, in the same order, as the historical string-keyed pass in
/// `rules.rs` (which now wraps this function):
///
/// * **Unit ↔ unit collisions** group units by `(namespace, rendered label
///   set)`. Grouping happens on symbol ids (cheap integer sort); the
///   qualifying groups are then ordered by their resolved strings, which
///   reproduces the old `BTreeMap<(String, String), _>` iteration order.
/// * **Service ↔ foreign-unit captures** probe an inverted index on
///   `(namespace, label key, label value)` symbol triples. A selector with
///   several pairs intersects the posting ranges block-at-a-time through
///   [`PodSet`] kernels instead of calling `contains_all` per candidate —
///   membership in every pair's posting list *is* the subset check, since
///   the namespace is part of the key.
pub fn m4_global_collisions_compact(apps: &[GlobalAppModel], table: &SymbolTable) -> Vec<Finding> {
    let mut findings = Vec::new();

    // --- Unit ↔ unit collisions spanning at least two applications. ---
    // One flat row per labelled unit: group key as symbol ids plus a global
    // sequence number that encodes (application, unit) order.
    let mut rows: Vec<(Sym, Sym, u32, usize)> = Vec::new(); // (ns, labels, app, seq)
    let mut names: Vec<Sym> = Vec::new();
    for (idx, model) in apps.iter().enumerate() {
        for u in &model.units {
            if u.label_pairs.is_empty() {
                continue;
            }
            rows.push((u.namespace, u.labels_rendered, idx as u32, names.len()));
            names.push(u.name);
        }
    }
    rows.sort_unstable();
    let mut groups: Vec<&[(Sym, Sym, u32, usize)]> = Vec::new();
    let mut start = 0;
    for end in 1..=rows.len() {
        if end == rows.len() || (rows[end].0, rows[end].1) != (rows[start].0, rows[start].1) {
            // Sequence numbers ascend with (app, unit), so the first and
            // last rows bracket the app range: distinct apps ≥ 2 iff they
            // differ.
            if rows[start].2 != rows[end - 1].2 {
                groups.push(&rows[start..end]);
            }
            start = end;
        }
    }
    // Resolve group keys to restore the historical string order.
    groups.sort_by_key(|g| (table.resolve(g[0].0), table.resolve(g[0].1)));
    for group in groups {
        let labels = table.resolve(group[0].1);
        let members: Vec<String> = group
            .iter()
            .map(|&(_, _, app, seq)| {
                format!(
                    "{} ({})",
                    table.resolve(names[seq]),
                    table.resolve(apps[app as usize].app)
                )
            })
            .collect();
        findings.push(Finding::new(
            MisconfigId::M4Star,
            table.resolve(apps[group[0].2 as usize].app),
            members[0].clone(),
            format!(
                "label set `{labels}` collides across applications: {}",
                members.join(", ")
            ),
        ));
    }

    // --- Service ↔ foreign-unit captures. ---
    // Inverted index: one posting per (namespace, key, value) label pair,
    // sorted so each triple's postings form a contiguous range in
    // (application, unit) order.
    // (namespace, key, value, sequence rank, app index, unit name)
    type Posting = (Sym, Sym, Sym, usize, u32, Sym);
    let mut postings: Vec<Posting> = Vec::new();
    let mut seq = 0usize; // (app, unit) rank
    for (idx, model) in apps.iter().enumerate() {
        for u in &model.units {
            for &(k, v) in &u.label_pairs {
                postings.push((u.namespace, k, v, seq, idx as u32, u.name));
            }
            seq += 1;
        }
    }
    postings.sort_unstable();
    let range_of = |ns: Sym, k: Sym, v: Sym| {
        let key = (ns, k, v);
        let lo = postings.partition_point(|p| (p.0, p.1, p.2) < key);
        let hi = postings.partition_point(|p| (p.0, p.1, p.2) <= key);
        &postings[lo..hi]
    };
    for (idx, model) in apps.iter().enumerate() {
        for svc in &model.services {
            if svc.selector_pairs.is_empty() {
                continue;
            }
            let ranges: Vec<&[Posting]> = svc
                .selector_pairs
                .iter()
                .map(|&(k, v)| range_of(svc.namespace, k, v))
                .collect();
            // Probe on the selector's *rarest* pair (first minimum, as
            // `min_by_key` picked it before).
            let rarest_pos = ranges
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.len())
                .map(|(i, _)| i)
                .expect("non-empty selector");
            let rarest = ranges[rarest_pos];
            if rarest.is_empty() {
                continue;
            }
            // A candidate matches the full selector exactly when it appears
            // in every pair's posting range. Mark each range's hits over
            // the rarest range's positions and intersect block-at-a-time.
            let mut hits = PodSet::full(rarest.len());
            for (i, range) in ranges.iter().enumerate() {
                if i == rarest_pos {
                    continue;
                }
                let mut mark = PodSet::empty(rarest.len());
                if range.len() / 8 <= rarest.len() {
                    // Comparable sizes: one linear merge over both ranges.
                    let mut it = range.iter().peekable();
                    for (pos, cand) in rarest.iter().enumerate() {
                        while it.next_if(|p| p.3 < cand.3).is_some() {}
                        if it.peek().is_some_and(|p| p.3 == cand.3) {
                            mark.insert(pos);
                        }
                    }
                } else {
                    // Corpus-wide label pairs make `range` O(apps); walking
                    // it per service would be quadratic in the population.
                    // Probe per candidate instead (postings within a range
                    // ascend by sequence number, so binary search applies).
                    for (pos, cand) in rarest.iter().enumerate() {
                        if range.binary_search_by_key(&cand.3, |p| p.3).is_ok() {
                            mark.insert(pos);
                        }
                    }
                }
                hits.intersect_with(&mark);
                if hits.count() == 0 {
                    break;
                }
            }
            for pos in hits.ones() {
                let &(_, _, _, _, other_idx, unit_name) = &rarest[pos];
                if other_idx as usize == idx {
                    continue;
                }
                findings.push(Finding::new(
                    MisconfigId::M4Star,
                    table.resolve(model.app),
                    table.resolve(svc.object),
                    format!(
                        "service selector `{}` captures unit {} of application {}",
                        table.resolve(svc.selector_rendered),
                        table.resolve(unit_name),
                        table.resolve(apps[other_idx as usize].app)
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ComputeUnit;
    use ij_model::decode_manifests;
    use std::collections::{BTreeSet, HashMap};

    fn statics(src: &str) -> StaticModel {
        StaticModel::from_objects(&decode_manifests(src).unwrap())
    }

    /// The seed's string-keyed M4\* pass, kept verbatim as the oracle the
    /// interned kernel must reproduce byte-for-byte (including ordering and
    /// attribution ties).
    fn oracle(apps: &[(String, StaticModel)]) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut by_labels: BTreeMap<(String, String), Vec<(usize, &ComputeUnit)>> = BTreeMap::new();
        for (idx, (_, model)) in apps.iter().enumerate() {
            for u in &model.units {
                if u.labels.is_empty() {
                    continue;
                }
                by_labels
                    .entry((u.namespace.clone(), u.labels.to_string()))
                    .or_default()
                    .push((idx, u));
            }
        }
        for ((_, labels), group) in by_labels {
            let distinct_apps: BTreeSet<usize> = group.iter().map(|(i, _)| *i).collect();
            if distinct_apps.len() < 2 {
                continue;
            }
            let members: Vec<String> = group
                .iter()
                .map(|(i, u)| format!("{} ({})", u.name, apps[*i].0))
                .collect();
            findings.push(Finding::new(
                MisconfigId::M4Star,
                &apps[*distinct_apps.iter().next().expect("non-empty")].0,
                members[0].clone(),
                format!(
                    "label set `{labels}` collides across applications: {}",
                    members.join(", ")
                ),
            ));
        }
        type PairIndex<'a> = HashMap<(&'a str, &'a str, &'a str), Vec<(usize, usize)>>;
        let mut by_pair: PairIndex<'_> = HashMap::new();
        for (idx, (_, model)) in apps.iter().enumerate() {
            for (unit_pos, u) in model.units.iter().enumerate() {
                for (key, value) in u.labels.iter() {
                    by_pair
                        .entry((u.namespace.as_str(), key, value))
                        .or_default()
                        .push((idx, unit_pos));
                }
            }
        }
        for (idx, (app, model)) in apps.iter().enumerate() {
            for svc in &model.services {
                if svc.spec.selector.is_empty() {
                    continue;
                }
                let candidates = svc
                    .spec
                    .selector
                    .iter()
                    .map(|(key, value)| {
                        by_pair
                            .get(&(svc.meta.namespace.as_str(), key, value))
                            .map(Vec::as_slice)
                            .unwrap_or(&[])
                    })
                    .min_by_key(|candidates| candidates.len())
                    .unwrap_or(&[]);
                for &(other_idx, unit_pos) in candidates {
                    if other_idx == idx {
                        continue;
                    }
                    let (other_app, other_model) = &apps[other_idx];
                    let unit = &other_model.units[unit_pos];
                    if unit.labels.contains_all(&svc.spec.selector) {
                        findings.push(Finding::new(
                            MisconfigId::M4Star,
                            app,
                            svc.meta.qualified_name(),
                            format!(
                                "service selector `{}` captures unit {} of application {other_app}",
                                svc.spec.selector, unit.name
                            ),
                        ));
                    }
                }
            }
        }
        findings
    }

    /// A deterministic pseudo-random corpus with heavy label overlap so
    /// both halves of the pass (unit collisions, service captures) fire on
    /// many apps, across two namespaces and selectors of 1–2 pairs.
    fn pseudo_random_corpus(seed: u64, apps: usize) -> Vec<(String, StaticModel)> {
        let mut state = seed.max(1);
        let mut next = move |bound: u64| {
            // xorshift64: deterministic, no external RNG.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        let keys = ["app", "tier", "part"];
        let values = ["web", "db", "shared", "cache"];
        let namespaces = ["default", "other"];
        (0..apps)
            .map(|a| {
                let name = format!("gen-{a}");
                let mut manifests = String::new();
                for p in 0..1 + next(3) {
                    let ns = namespaces[next(2) as usize];
                    // Deduped through a map: YAML rejects repeated keys.
                    let mut pairs = BTreeMap::new();
                    for _ in 0..1 + next(2) {
                        pairs.insert(keys[next(3) as usize], values[next(4) as usize]);
                    }
                    let labels: String = pairs
                        .iter()
                        .map(|(k, v)| format!("    {k}: {v}\n"))
                        .collect();
                    manifests.push_str(&format!(
                        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}-p{p}\n  \
                         namespace: {ns}\n  labels:\n{labels}spec:\n  containers:\n    \
                         - name: c\n      image: img\n---\n"
                    ));
                }
                for s in 0..next(3) {
                    let ns = namespaces[next(2) as usize];
                    let mut pairs = BTreeMap::new();
                    for _ in 0..1 + next(2) {
                        pairs.insert(keys[next(3) as usize], values[next(4) as usize]);
                    }
                    let selector: String = pairs
                        .iter()
                        .map(|(k, v)| format!("    {k}: {v}\n"))
                        .collect();
                    manifests.push_str(&format!(
                        "apiVersion: v1\nkind: Service\nmetadata:\n  name: {name}-s{s}\n  \
                         namespace: {ns}\nspec:\n  selector:\n{selector}  ports:\n    \
                         - port: 80\n---\n"
                    ));
                }
                (name, statics(&manifests))
            })
            .collect()
    }

    #[test]
    fn interned_m4star_matches_the_string_keyed_oracle() {
        for seed in [1, 7, 42, 1234] {
            let apps = pseudo_random_corpus(seed, 10);
            let expected = oracle(&apps);
            let mut table = SymbolTable::new();
            let models: Vec<GlobalAppModel> = apps
                .iter()
                .map(|(app, model)| GlobalAppModel::intern(app, model, &mut table))
                .collect();
            let got = m4_global_collisions_compact(&models, &table);
            assert!(
                !expected.is_empty(),
                "seed {seed} produced no collisions — corpus too tame to test anything"
            );
            assert_eq!(got, expected, "seed {seed} diverged from the oracle");
        }
    }

    #[test]
    fn compact_identity_matches_owned_identity() {
        use ij_model::Protocol;
        let findings = [
            Finding::new(MisconfigId::M1, "app-a", "default/web", "declared, closed"),
            Finding::new(MisconfigId::M2, "app-a", "default/web", "open, undeclared")
                .with_port(8080, Protocol::Tcp),
            Finding::new(MisconfigId::M5D, "app-b", "default/svc", "dangling target")
                .with_port(53, Protocol::Udp),
        ];
        let mut table = SymbolTable::new();
        for f in &findings {
            let compact = CompactFinding::intern(f, &mut table);
            assert_eq!(compact.identity(&table), f.identity());
            assert_eq!(compact.resolve(&table), *f);
        }
    }

    #[test]
    fn remap_preserves_resolved_reports() {
        let mut from = SymbolTable::new();
        let report = AppReport {
            app: "remap-app".into(),
            dataset: "cncf".into(),
            version: "1.2.3".into(),
            findings: vec![Finding::new(
                MisconfigId::M6,
                "remap-app",
                "remap-app",
                "no NetworkPolicy",
            )],
        };
        let compact = CompactAppReport::intern(&report, &mut from);
        // Salt the destination so remapped ids differ from the source ids.
        let mut to = SymbolTable::new();
        to.intern("unrelated");
        let remapped = compact.remap(&from, &mut to);
        assert_ne!(compact.app, remapped.app);
        assert_eq!(remapped.resolve(&to), report);
    }
}
