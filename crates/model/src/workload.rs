//! Workload resources ("compute units"): the objects that template pods.

use crate::codec;
use crate::error::{Error, Result};
use crate::meta::{LabelSelector, Labels, ObjectMeta};
use crate::pod::PodSpec;
use ij_yaml::{Map, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The workload kinds the simulator reconciles into pods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Stateless replicated workload.
    Deployment,
    /// Ordered, stable-identity replicated workload.
    StatefulSet,
    /// One pod per node.
    DaemonSet,
    /// Low-level replica controller (normally owned by a Deployment).
    ReplicaSet,
    /// Run-to-completion workload.
    Job,
}

impl WorkloadKind {
    /// Kubernetes `kind` spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkloadKind::Deployment => "Deployment",
            WorkloadKind::StatefulSet => "StatefulSet",
            WorkloadKind::DaemonSet => "DaemonSet",
            WorkloadKind::ReplicaSet => "ReplicaSet",
            WorkloadKind::Job => "Job",
        }
    }

    /// Parses a `kind` field; `None` for non-workload kinds.
    pub fn from_kind(kind: &str) -> Option<WorkloadKind> {
        Some(match kind {
            "Deployment" => WorkloadKind::Deployment,
            "StatefulSet" => WorkloadKind::StatefulSet,
            "DaemonSet" => WorkloadKind::DaemonSet,
            "ReplicaSet" => WorkloadKind::ReplicaSet,
            "Job" => WorkloadKind::Job,
            _ => return None,
        })
    }

    /// `apiVersion` the kind is served under.
    pub fn api_version(&self) -> &'static str {
        match self {
            WorkloadKind::Job => "batch/v1",
            _ => "apps/v1",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The pod template embedded in a workload spec.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PodTemplate {
    /// Labels stamped onto every pod the workload creates. These are what
    /// services and policies select — and what collides in M4.
    pub labels: Labels,
    /// The pod specification to instantiate.
    pub spec: PodSpec,
}

/// A workload resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Which controller owns this shape of workload.
    pub kind: WorkloadKind,
    /// Metadata of the workload object itself.
    pub meta: ObjectMeta,
    /// Desired replica count (`1` for DaemonSet/Job semantics here; the
    /// simulator expands DaemonSets to one pod per node regardless).
    pub replicas: u32,
    /// Selector that must match the template labels.
    pub selector: LabelSelector,
    /// The pod template.
    pub template: PodTemplate,
}

impl Workload {
    /// Creates a single-replica Deployment whose selector equals its
    /// template labels — the common well-formed case.
    pub fn deployment(meta: ObjectMeta, labels: Labels, spec: PodSpec) -> Self {
        Workload {
            kind: WorkloadKind::Deployment,
            meta,
            replicas: 1,
            selector: LabelSelector::from_labels(labels.clone()),
            template: PodTemplate { labels, spec },
        }
    }

    /// Builder-style kind override.
    pub fn with_kind(mut self, kind: WorkloadKind) -> Self {
        self.kind = kind;
        self
    }

    /// Builder-style replica count.
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas;
        self
    }

    /// True when the selector actually matches the pod template labels.
    /// Kubernetes validates this for Deployments at admission; violations in
    /// hand-written ReplicaSets produce orphan pods.
    pub fn selector_matches_template(&self) -> bool {
        self.selector.matches(&self.template.labels)
    }

    pub(crate) fn decode(kind: WorkloadKind, root: &Map) -> Result<Workload> {
        let meta = ObjectMeta::decode(root)?;
        let spec = codec::opt_map(root, "spec", "workload")?
            .ok_or_else(|| Error::malformed("missing workload `spec`"))?;
        let replicas = codec::opt_int(spec, "replicas", "spec")?
            .unwrap_or(1)
            .max(0) as u32;
        let selector = match codec::opt_map(spec, "selector", "spec")? {
            Some(m) => LabelSelector::decode(m, "spec.selector")?,
            None => LabelSelector::everything(),
        };
        let template = codec::opt_map(spec, "template", "spec")?
            .ok_or_else(|| Error::malformed("missing `spec.template`"))?;
        let tpl_labels = match codec::opt_map(template, "metadata", "spec.template")? {
            Some(tm) => match codec::opt_map(tm, "labels", "spec.template.metadata")? {
                Some(lm) => Labels::decode(lm, "spec.template.metadata.labels")?,
                None => Labels::new(),
            },
            None => Labels::new(),
        };
        let pod_spec = match codec::opt_map(template, "spec", "spec.template")? {
            Some(m) => PodSpec::decode(m, "spec.template.spec")?,
            None => PodSpec::default(),
        };
        Ok(Workload {
            kind,
            meta,
            replicas,
            selector,
            template: PodTemplate {
                labels: tpl_labels,
                spec: pod_spec,
            },
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut tpl_meta = Map::with_capacity(1);
        if !self.template.labels.is_empty() {
            tpl_meta.push_unchecked("labels", self.template.labels.encode());
        }
        let mut tpl = Map::with_capacity(2);
        tpl.push_unchecked("metadata", Value::Map(tpl_meta));
        tpl.push_unchecked("spec", self.template.spec.encode());

        let mut spec = Map::with_capacity(3);
        if self.kind != WorkloadKind::DaemonSet && self.kind != WorkloadKind::Job {
            spec.push_unchecked("replicas", Value::Int(self.replicas as i64));
        }
        if !self.selector.is_empty() {
            spec.push_unchecked("selector", self.selector.encode());
        }
        spec.push_unchecked("template", Value::Map(tpl));

        let mut m = Map::with_capacity(4);
        m.push_unchecked("apiVersion", Value::str(self.kind.api_version()));
        m.push_unchecked("kind", Value::str(self.kind.as_str()));
        m.push_unchecked("metadata", self.meta.encode());
        m.push_unchecked("spec", Value::Map(spec));
        Value::Map(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::{Container, ContainerPort};

    #[test]
    fn decode_deployment() {
        let src = "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 3
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
        - name: web
          image: nginx
          ports:
            - containerPort: 80
";
        let v = ij_yaml::parse(src).unwrap();
        let w = Workload::decode(WorkloadKind::Deployment, v.as_map().unwrap()).unwrap();
        assert_eq!(w.replicas, 3);
        assert!(w.selector_matches_template());
        assert_eq!(w.template.spec.containers[0].ports[0].container_port, 80);
    }

    #[test]
    fn mismatched_selector_detected() {
        let mut w = Workload::deployment(
            ObjectMeta::named("web"),
            Labels::from_pairs([("app", "web")]),
            PodSpec::default(),
        );
        w.selector = LabelSelector::from_labels(Labels::from_pairs([("app", "other")]));
        assert!(!w.selector_matches_template());
    }

    #[test]
    fn encode_round_trip() {
        let w = Workload::deployment(
            ObjectMeta::named("exporter").in_namespace("monitoring"),
            Labels::from_pairs([("app.kubernetes.io/name", "node-exporter")]),
            PodSpec {
                containers: vec![Container::new("exporter", "prom/node-exporter")
                    .with_ports(vec![ContainerPort::named("metrics", 9100)])],
                host_network: true,
                node_name: None,
            },
        )
        .with_kind(WorkloadKind::DaemonSet);
        let v = w.encode();
        let back = Workload::decode(WorkloadKind::DaemonSet, v.as_map().unwrap()).unwrap();
        assert_eq!(back.meta, w.meta);
        assert_eq!(back.template, w.template);
        assert_eq!(back.selector, w.selector);
    }

    #[test]
    fn kind_parsing() {
        assert_eq!(
            WorkloadKind::from_kind("StatefulSet"),
            Some(WorkloadKind::StatefulSet)
        );
        assert_eq!(WorkloadKind::from_kind("Service"), None);
        assert_eq!(WorkloadKind::Job.api_version(), "batch/v1");
    }
}
