//! Recursive-descent parser producing the untyped, span-carrying AST.
//!
//! Grammar (precedence low → high, `!` binding tightest — the HEL
//! convention):
//!
//! ```text
//! expr       := or
//! or         := and ( "||" and )*
//! and        := comparison ( "&&" comparison )*
//! comparison := unary ( ("==" | "!=" | "<" | "<=" | ">" | ">=" |
//!                        "CONTAINS" | "IN") unary )?
//! unary      := "!" unary | primary
//! primary    := "true" | "false" | NUMBER | STRING
//!             | "[" ( expr ( "," expr )* )? "]"
//!             | PATH | PATH "(" ( expr ( "," expr )* )? ")"
//!             | "(" expr ")"
//! PATH       := IDENT ( "." IDENT )*
//! ```
//!
//! Comparisons do not chain (`a == b == c` is a parse error), matching the
//! boolean-expression character of the language.

use super::lex::{end_span, tokenize, LangError, Span, Tok, Token};

/// Comparison operators, including the two membership forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparator {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `CONTAINS` — list ∋ element, or string ⊇ substring.
    Contains,
    /// `IN` — element ∈ list.
    In,
}

impl Comparator {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Comparator::Eq => "==",
            Comparator::Ne => "!=",
            Comparator::Lt => "<",
            Comparator::Le => "<=",
            Comparator::Gt => ">",
            Comparator::Ge => ">=",
            Comparator::Contains => "CONTAINS",
            Comparator::In => "IN",
        }
    }
}

/// One parsed expression node with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// Source region the node covers.
    pub span: Span,
}

/// The untyped AST. Every compound carries boxed children; `Attribute` and
/// `FunctionCall` keep their dotted paths as segments until the type-check
/// pass resolves them against the schema / builtins registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `true` / `false`.
    Bool(bool),
    /// Numeric literal.
    Number(f64),
    /// String literal (escapes already decoded).
    String(String),
    /// Dotted attribute reference, e.g. `socket.port`.
    Attribute(Vec<String>),
    /// `[a, b, c]`.
    ListLiteral(Vec<Expr>),
    /// Namespaced call, e.g. `core.len(x)`.
    FunctionCall {
        /// Dotted function path (`["core", "len"]`).
        path: Vec<String>,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// Binary comparison.
    Comparison {
        /// The operator.
        op: Comparator,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs && rhs`.
    And(Box<Expr>, Box<Expr>),
    /// `lhs || rhs`.
    Or(Box<Expr>, Box<Expr>),
    /// `!inner`.
    Not(Box<Expr>),
}

/// Nesting bound: parentheses, list literals, call arguments and `!` chains
/// all recurse, and fuzzed inputs like `((((…` must fail cleanly instead of
/// overflowing the stack.
const MAX_DEPTH: u32 = 64;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    end: Span,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Token> {
        let tok = self.toks.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Span, LangError> {
        match self.bump() {
            Some(tok) if tok.kind == *want => Ok(tok.span),
            Some(tok) => Err(LangError::new(
                format!("expected {what}, found {}", tok.kind.describe()),
                tok.span,
            )),
            None => Err(LangError::new(
                format!("expected {what}, found end of expression"),
                self.end,
            )),
        }
    }

    fn enter(&mut self, span: Span) -> Result<(), LangError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(LangError::new(
                format!("expression nests deeper than {MAX_DEPTH} levels"),
                span,
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and()?;
        while matches!(self.peek(), Some(Tok::OrOr)) {
            self.bump();
            let rhs = self.and()?;
            let span = lhs.span.through(rhs.span);
            lhs = Expr {
                kind: ExprKind::Or(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.comparison()?;
        while matches!(self.peek(), Some(Tok::AndAnd)) {
            self.bump();
            let rhs = self.comparison()?;
            let span = lhs.span.through(rhs.span);
            lhs = Expr {
                kind: ExprKind::And(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, LangError> {
        let lhs = self.unary()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Comparator::Eq,
            Some(Tok::NotEq) => Comparator::Ne,
            Some(Tok::Lt) => Comparator::Lt,
            Some(Tok::LtEq) => Comparator::Le,
            Some(Tok::Gt) => Comparator::Gt,
            Some(Tok::GtEq) => Comparator::Ge,
            Some(Tok::Contains) => Comparator::Contains,
            Some(Tok::In) => Comparator::In,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.unary()?;
        let span = lhs.span.through(rhs.span);
        Ok(Expr {
            kind: ExprKind::Comparison {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        })
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if matches!(self.peek(), Some(Tok::Not)) {
            let bang = self.bump().expect("peeked").span;
            self.enter(bang)?;
            let inner = self.unary();
            self.leave();
            let inner = inner?;
            let span = bang.through(inner.span);
            return Ok(Expr {
                kind: ExprKind::Not(Box::new(inner)),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let Some(tok) = self.bump() else {
            return Err(LangError::new(
                "expected an expression, found end of expression",
                self.end,
            ));
        };
        match tok.kind {
            Tok::True => Ok(Expr {
                kind: ExprKind::Bool(true),
                span: tok.span,
            }),
            Tok::False => Ok(Expr {
                kind: ExprKind::Bool(false),
                span: tok.span,
            }),
            Tok::Number(n) => Ok(Expr {
                kind: ExprKind::Number(n),
                span: tok.span,
            }),
            Tok::Str(s) => Ok(Expr {
                kind: ExprKind::String(s),
                span: tok.span,
            }),
            Tok::LParen => {
                self.enter(tok.span)?;
                let inner = self.or();
                self.leave();
                let inner = inner?;
                let close = self.expect(&Tok::RParen, "`)`")?;
                Ok(Expr {
                    kind: inner.kind,
                    span: tok.span.through(close),
                })
            }
            Tok::LBracket => {
                self.enter(tok.span)?;
                let items = self.comma_separated(&Tok::RBracket, "`]`");
                self.leave();
                let (items, close) = items?;
                Ok(Expr {
                    kind: ExprKind::ListLiteral(items),
                    span: tok.span.through(close),
                })
            }
            Tok::Ident(first) => {
                let mut path = vec![first];
                let mut span = tok.span;
                while matches!(self.peek(), Some(Tok::Dot)) {
                    self.bump();
                    match self.bump() {
                        Some(Token {
                            kind: Tok::Ident(seg),
                            span: seg_span,
                        }) => {
                            path.push(seg);
                            span = span.through(seg_span);
                        }
                        Some(other) => {
                            return Err(LangError::new(
                                format!(
                                    "expected an identifier after `.`, found {}",
                                    other.kind.describe()
                                ),
                                other.span,
                            ))
                        }
                        None => {
                            return Err(LangError::new(
                                "expected an identifier after `.`, found end of expression",
                                self.end,
                            ))
                        }
                    }
                }
                if matches!(self.peek(), Some(Tok::LParen)) {
                    let open = self.bump().expect("peeked").span;
                    self.enter(open)?;
                    let args = self.comma_separated(&Tok::RParen, "`)`");
                    self.leave();
                    let (args, close) = args?;
                    return Ok(Expr {
                        kind: ExprKind::FunctionCall { path, args },
                        span: span.through(close),
                    });
                }
                Ok(Expr {
                    kind: ExprKind::Attribute(path),
                    span,
                })
            }
            other => Err(LangError::new(
                format!("expected an expression, found {}", other.describe()),
                tok.span,
            )),
        }
    }

    /// Parses `expr ("," expr)*` up to (and including) `close`. Returns the
    /// items and the span of the closing token.
    fn comma_separated(&mut self, close: &Tok, what: &str) -> Result<(Vec<Expr>, Span), LangError> {
        let mut items = Vec::new();
        if self.peek() == Some(close) {
            let span = self.bump().expect("peeked").span;
            return Ok((items, span));
        }
        loop {
            items.push(self.or()?);
            match self.bump() {
                Some(tok) if tok.kind == *close => return Ok((items, tok.span)),
                Some(tok) if tok.kind == Tok::Comma => continue,
                Some(tok) => {
                    return Err(LangError::new(
                        format!("expected `,` or {what}, found {}", tok.kind.describe()),
                        tok.span,
                    ))
                }
                None => {
                    return Err(LangError::new(
                        format!("expected `,` or {what}, found end of expression"),
                        self.end,
                    ))
                }
            }
        }
    }
}

/// Parses one expression; the whole input must be consumed.
pub fn parse(src: &str) -> Result<Expr, LangError> {
    let toks = tokenize(src)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        end: end_span(src),
        depth: 0,
    };
    let expr = parser.or()?;
    if let Some(extra) = parser.toks.get(parser.pos) {
        return Err(LangError::new(
            format!("unexpected {} after the expression", extra.kind.describe()),
            extra.span,
        ));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_not_over_comparison_over_and_over_or() {
        // !a && b == c || d  parses as  ((!a) && (b == c)) || d
        let e = parse("!a && b == c || d").unwrap();
        let ExprKind::Or(lhs, rhs) = e.kind else {
            panic!("top must be Or")
        };
        assert!(matches!(rhs.kind, ExprKind::Attribute(_)));
        let ExprKind::And(l, r) = lhs.kind else {
            panic!("lhs must be And")
        };
        assert!(matches!(l.kind, ExprKind::Not(_)));
        assert!(matches!(
            r.kind,
            ExprKind::Comparison {
                op: Comparator::Eq,
                ..
            }
        ));
    }

    #[test]
    fn calls_lists_and_membership() {
        let e = parse("core.len([1, 2, 3]) > 2 && socket.port IN [80, 443]").unwrap();
        assert!(matches!(e.kind, ExprKind::And(..)));
        let e = parse("labels.get(\"app\") CONTAINS \"web\"").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Comparison {
                op: Comparator::Contains,
                ..
            }
        ));
    }

    #[test]
    fn spans_cover_whole_nodes() {
        let src = "a.b == core.len(x)";
        let e = parse(src).unwrap();
        assert_eq!(e.span.slice(src), src);
    }

    #[test]
    fn chained_comparison_is_an_error() {
        let err = parse("1 == 2 == 3").unwrap_err();
        assert!(err.message.contains("unexpected"), "{err}");
        assert_eq!(err.span.column, 8);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let src = "(".repeat(500) + "true" + &")".repeat(500);
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nests deeper"), "{err}");
        let bangs = "!".repeat(500) + "true";
        assert!(parse(&bangs).is_err());
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let err = parse("a &&").unwrap_err();
        assert_eq!(err.span.column, 5);
        let err = parse("a . 3").unwrap_err();
        assert_eq!(err.span.column, 5);
        assert!(err.message.contains("after `.`"));
    }
}
