//! Property tests: the emitter and parser are exact inverses over the
//! supported value domain.

use ij_yaml::{parse, to_string, Map, Value};
use proptest::prelude::*;

/// Floats whose `Display` form stays in plain decimal notation (the subset
/// the scalar grammar covers; scientific notation would round-trip as a
/// string, which is fine for manifests but out of scope here).
fn arb_float() -> impl Strategy<Value = f64> {
    (-1_000_000i64..1_000_000i64, 0u8..4u8)
        .prop_map(|(n, scale)| n as f64 / 10f64.powi(scale as i32))
}

fn arb_key() -> impl Strategy<Value = String> {
    prop::string::string_regex("[a-zA-Z][a-zA-Z0-9_./-]{0,18}").expect("valid regex")
}

fn arb_string() -> impl Strategy<Value = String> {
    prop::string::string_regex("[ -~\\n\\t]{0,40}").expect("valid regex")
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        arb_float().prop_map(Value::Float),
        arb_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            prop::collection::vec((arb_key(), inner), 0..4).prop_map(|entries| {
                let mut m = Map::new();
                for (k, v) in entries {
                    m.insert(k, v);
                }
                Value::Map(m)
            }),
        ]
    })
}

proptest! {
    #[test]
    fn emit_parse_round_trip(v in arb_value()) {
        let text = to_string(&v);
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- emitted ---\n{text}"));
        prop_assert_eq!(back, v, "emitted:\n{}", text);
    }

    #[test]
    fn parse_never_panics_on_ascii(src in "[ -~\\n]{0,200}") {
        let _ = parse(&src);
    }

    #[test]
    fn scalar_strings_survive_quoting(s in arb_string()) {
        let mut m = Map::new();
        m.insert("value", Value::Str(s.clone()));
        let text = to_string(&Value::Map(m));
        let back = parse(&text).expect("reparse");
        prop_assert_eq!(back.path(&["value"]).and_then(Value::as_str), Some(s.as_str()));
    }

    #[test]
    fn deep_merge_is_idempotent(v in arb_value()) {
        if let Value::Map(m) = v {
            let mut once = m.clone();
            once.deep_merge(&m);
            prop_assert_eq!(&once, &m, "merging a map onto itself changes nothing");
        }
    }
}
