//! The unified census pipeline: a builder-configured front door to the
//! paper's evaluation (baseline → install → double-pass probe → rule
//! evaluation → cluster-wide pass) with typed errors and deterministic
//! parallel execution.
//!
//! ```
//! use ij_datasets::{corpus, CensusPipeline, Org};
//!
//! let specs: Vec<_> = corpus()
//!     .into_iter()
//!     .filter(|a| a.org == Org::Cncf)
//!     .collect();
//! let census = CensusPipeline::builder()
//!     .seed(42)
//!     .threads(4)
//!     .build()
//!     .run(&specs)
//!     .expect("the synthetic corpus renders and installs");
//! assert_eq!(census.apps.len(), specs.len());
//! ```
//!
//! Determinism: every application owns its seed (derived from the base
//! seed and its name) and its own fresh cluster, so per-app analyses are
//! independent. The worker pool hands indices out through an atomic
//! counter, streams results back over the vendored crossbeam channel, and
//! the collector slots them by index — a `threads(4)` census is therefore
//! byte-identical to the sequential run (enforced by `tests/smoke.rs` and
//! `tests/determinism.rs`).

use crate::builder::{build_app, BuiltApp};
use crate::gen::CorpusGenerator;
use crate::runner::{AppAnalysis, CorpusOptions, PolicyImpact};
use crate::spec::AppSpec;
use ij_chart::{CompiledChart, Release, RenderScratch, RenderedRelease};
use ij_cluster::{Cluster, ClusterConfig, InstallError};
use ij_core::{
    chart_defines_network_policies, m4_global_collisions_compact, sort_canonical,
    sort_canonical_compact, Analyzer, AppReport, Census, CompactAppReport, CompactCensus,
    CompactFinding, GlobalAppModel, RuleEntry, RulePack, StaticModel, Sym, SymbolTable,
    UnknownRule,
};
use ij_model::{Container, Object, ObjectMeta, Pod, PodSpec};
use ij_probe::{HostBaseline, ProbeConfig, ReachMatrix, RuntimeAnalyzer};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A failure on the corpus path, in the order the pipeline stages run.
/// Replaces the seed's `panic!`/`expect` calls on render and install.
#[derive(Debug)]
pub enum CensusError {
    /// The chart failed to render (template error, bad values, undecodable
    /// manifest).
    Render {
        /// Application whose chart failed.
        app: String,
        /// The underlying chart error.
        source: ij_chart::Error,
    },
    /// The cluster rejected the rendered objects at install time (e.g. an
    /// admission controller denied an object).
    Install {
        /// Application whose install failed.
        app: String,
        /// The underlying cluster error.
        source: InstallError,
    },
    /// The analysis could not produce a result for the application — a
    /// panic inside the probe or rule evaluation (e.g. from a custom
    /// registry rule) caught by the worker pool.
    Probe {
        /// Application whose probe failed.
        app: String,
        /// What went wrong.
        message: String,
    },
}

impl CensusError {
    /// The application the failure belongs to.
    pub fn app(&self) -> &str {
        match self {
            CensusError::Render { app, .. }
            | CensusError::Install { app, .. }
            | CensusError::Probe { app, .. } => app,
        }
    }
}

impl fmt::Display for CensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CensusError::Render { app, source } => {
                write!(f, "chart {app} failed to render: {source}")
            }
            CensusError::Install { app, source } => {
                write!(f, "chart {app} failed to install: {source}")
            }
            CensusError::Probe { app, message } => {
                write!(f, "probe failed for {app}: {message}")
            }
        }
    }
}

impl std::error::Error for CensusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CensusError::Render { source, .. } => Some(source),
            CensusError::Install { source, .. } => Some(source),
            CensusError::Probe { .. } => None,
        }
    }
}

/// One progress tick of a census run, delivered to the observer hook as
/// each application's analysis completes. Under parallel execution the
/// *completion order* follows worker scheduling (only the final census is
/// deterministic), so `completed / total` is the reliable signal here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusProgress {
    /// Application that just finished.
    pub app: String,
    /// Analyses completed so far, including this one.
    pub completed: usize,
    /// Total applications in the run.
    pub total: usize,
}

/// The observer hook: shared so the pipeline stays cheap to clone and the
/// callback can be invoked from the collector regardless of thread count.
pub type CensusObserver = Arc<dyn Fn(&CensusProgress) + Send + Sync>;

/// Wall-clock accumulators for the census phases, shared across worker
/// threads. Attach via [`CensusPipelineBuilder::timings`], read with
/// [`snapshot`](Self::snapshot) after the run (`ij census --timings` prints
/// it). Counters accumulate across runs of the same pipeline; phases
/// overlap under `threads(n)`, so the numbers are summed per-phase CPU
/// wall time, not elapsed time.
#[derive(Debug, Default)]
pub struct PhaseTimings {
    build_ns: AtomicU64,
    render_ns: AtomicU64,
    install_ns: AtomicU64,
    probe_ns: AtomicU64,
    analyze_ns: AtomicU64,
}

impl PhaseTimings {
    /// The accumulated per-phase durations so far.
    pub fn snapshot(&self) -> PhaseReport {
        let load = |a: &AtomicU64| Duration::from_nanos(a.load(Ordering::Relaxed));
        PhaseReport {
            build: load(&self.build_ns),
            render: load(&self.render_ns),
            install: load(&self.install_ns),
            probe: load(&self.probe_ns),
            analyze: load(&self.analyze_ns),
        }
    }

    /// Merges one worker's local accumulators in. Workers batch into plain
    /// `u64`s ([`LocalTimings`]) and flush here once per worker, so shard
    /// and thread counts change atomic traffic, not the totals: a sharded
    /// run's report is the same per-phase sum a sequential run produces.
    fn merge_local(&self, local: &LocalTimings) {
        let add = |slot: &AtomicU64, v: u64| {
            if v > 0 {
                slot.fetch_add(v, Ordering::Relaxed);
            }
        };
        add(&self.build_ns, local.build);
        add(&self.render_ns, local.render);
        add(&self.install_ns, local.install);
        add(&self.probe_ns, local.probe);
        add(&self.analyze_ns, local.analyze);
    }
}

/// Worker-local phase accumulators: plain counters a single worker owns,
/// merged into the shared [`PhaseTimings`] when the worker finishes.
#[derive(Debug, Default)]
struct LocalTimings {
    build: u64,
    render: u64,
    install: u64,
    probe: u64,
    analyze: u64,
}

/// Adds `start`'s elapsed time (when timing is on) to a local counter.
fn record_local(slot: &mut u64, start: Option<Instant>) {
    if let Some(start) = start {
        *slot += start.elapsed().as_nanos() as u64;
    }
}

/// One [`PhaseTimings`] reading: summed wall time per census phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseReport {
    /// Spec → chart construction (`build_app`), including template
    /// compilation on the streamed path.
    pub build: Duration,
    /// Chart rendering (cache hits included, at their observed cost).
    pub render: Duration,
    /// Cluster construction and object installation.
    pub install: Duration,
    /// Host baseline capture and the double-pass runtime probe.
    pub probe: Duration,
    /// Rule evaluation over the rendered objects and probe results.
    pub analyze: Duration,
}

impl PhaseReport {
    /// Sum of the five phases.
    pub fn total(&self) -> Duration {
        self.build + self.render + self.install + self.probe + self.analyze
    }
}

/// Reusable per-worker state for the census hot path: the staging vec
/// renders land in, the chart render scratch (emit/output buffers), and the
/// worker's local phase timings. One scratch lives per analysis worker (or
/// per sequential run) and is cleared between apps — steady state, the
/// render → install leg stops allocating.
#[derive(Debug, Default)]
struct WorkerScratch {
    objects: Vec<Object>,
    render: RenderScratch,
    timings: LocalTimings,
}

impl WorkerScratch {
    /// Flushes the local timing counters into the shared report.
    fn flush(&mut self, timings: Option<&PhaseTimings>) {
        if let Some(t) = timings {
            t.merge_local(&self.timings);
        }
        self.timings = LocalTimings::default();
    }
}

/// A built app held by value or through the build cache, so `analyze_spec`
/// times `build_app` uniformly on both paths. The owned variant stays
/// unboxed on purpose: the value lives for one stack frame and the
/// streamed census takes this path once per app, so the indirection would
/// be a per-app heap allocation with nothing amortizing it.
#[allow(clippy::large_enum_variant)]
enum BuiltRef {
    Shared(Arc<BuiltApp>),
    Owned(BuiltApp),
}

impl BuiltRef {
    fn as_ref(&self) -> &BuiltApp {
        match self {
            BuiltRef::Shared(b) => b,
            BuiltRef::Owned(b) => b,
        }
    }
}

/// Per-pipeline memoization: built apps keyed by their spec, and rendered
/// releases keyed by compiled-chart identity plus release fingerprint. Both
/// are semantically transparent (`build_app` and rendering are pure
/// functions), so hits change wall-clock only — byte-identity of the census
/// is enforced by the determinism suites.
#[derive(Default)]
struct PipelineCaches {
    builds: Mutex<HashMap<String, Arc<BuiltApp>>>,
    renders: Mutex<HashMap<RenderKey, CachedRender>>,
}

/// Compiled-chart identity plus release fingerprint.
type RenderKey = (usize, String);

/// The cached render keeps a compiled-chart handle alive so the
/// pointer-based identity key can never be reused by a later compilation.
type CachedRender = (CompiledChart, Arc<RenderedRelease>);

/// Converts a caught worker panic (e.g. from a custom registry rule) into
/// the deterministic [`CensusError::Probe`] the sequential path would have
/// surfaced, so no worker ever unwinds through `std::thread::scope`.
fn panic_probe_error(app: &str, payload: Box<dyn std::any::Any + Send>) -> CensusError {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "analysis panicked".to_string());
    CensusError::Probe {
        app: app.to_string(),
        message: format!("analysis panicked: {message}"),
    }
}

/// The cache key half describing a release: everything `render` reads.
fn release_fingerprint(release: &Release) -> String {
    format!(
        "{}\u{1}{}\u{1}{:?}",
        release.name, release.namespace, release.overrides
    )
}

/// Where a run's specifications come from: a caller-owned slice, or a
/// procedural [`CorpusGenerator`] that synthesizes each spec on demand
/// inside the worker that analyzes it — a generated population is streamed,
/// never materialized up front.
#[derive(Clone, Copy)]
enum SpecSource<'a> {
    Slice(&'a [AppSpec]),
    Generator(&'a CorpusGenerator),
}

impl<'a> SpecSource<'a> {
    fn len(&self) -> usize {
        match self {
            SpecSource::Slice(specs) => specs.len(),
            SpecSource::Generator(generator) => generator.len(),
        }
    }

    fn spec(&self, index: usize) -> Cow<'a, AppSpec> {
        match self {
            SpecSource::Slice(specs) => Cow::Borrowed(&specs[index]),
            SpecSource::Generator(generator) => Cow::Owned(generator.spec(index)),
        }
    }

    /// Slice runs memoize builds and renders so a census and a following
    /// policy-impact pass share one compiled chart per app. Generated runs
    /// analyze each app exactly once, so caching would only pin every
    /// compiled chart and rendered release in memory for no reuse.
    fn cache(&self) -> bool {
        matches!(self, SpecSource::Slice(_))
    }
}

/// One partition of the streamed compact census: a shard-local symbol
/// table plus an index-slotted store for the apps the shard owns. Workers
/// lock a shard only for the (cheap) interning step, never for the
/// analysis itself.
struct ShardState {
    table: SymbolTable,
    slots: Vec<Option<ShardSlot>>,
}

/// What one analyzed app contributes to its shard: the interned report,
/// plus its interned static shape when the cluster-wide pass will run.
struct ShardSlot {
    report: CompactAppReport,
    globals: Option<GlobalAppModel>,
}

/// Builder for [`CensusPipeline`]. Obtained via [`CensusPipeline::builder`];
/// every knob has the same default as [`CorpusOptions::default`], one
/// worker thread, and no observer.
#[derive(Clone, Default)]
pub struct CensusPipelineBuilder {
    opts: CorpusOptions,
    threads: usize,
    shards: usize,
    observer: Option<CensusObserver>,
    timings: Option<Arc<PhaseTimings>>,
}

impl CensusPipelineBuilder {
    /// Replaces the whole option block at once (the migration path from
    /// code that already owns a [`CorpusOptions`]).
    pub fn options(mut self, opts: CorpusOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Base seed; each application derives its own from this and its name.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Worker nodes per ephemeral cluster.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.opts.nodes = nodes;
        self
    }

    /// Probe configuration (noise injection, filters, double run).
    pub fn probe(mut self, probe: ProbeConfig) -> Self {
        self.opts.probe = probe;
        self
    }

    /// Analyzer configuration (hybrid / static-only / runtime-only, rule
    /// registry).
    pub fn analyzer(mut self, analyzer: Analyzer) -> Self {
        self.opts.analyzer = analyzer;
        self
    }

    /// Applies a [`RulePack`] to the analyzer's registry: pack rules
    /// register (shadowing natives of the same name), then the pack's
    /// `disable` directives run. Fails with the pack's own
    /// [`UnknownRule`] when a directive names a rule the registry does
    /// not have, so typos surface at configuration time rather than as a
    /// silently unchanged census.
    pub fn rule_pack(mut self, pack: &RulePack) -> Result<Self, UnknownRule> {
        pack.register_into(&mut self.opts.analyzer.registry)?;
        Ok(self)
    }

    /// Number of analysis workers. `0` and `1` both mean sequential; the
    /// census is byte-identical for every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of independent partitions the streamed generated census
    /// ([`CensusPipeline::run_generated_compact`]) accumulates into. Each
    /// shard owns its own symbol table; a deterministic symbol-remapping
    /// reduce merges them in spec order, so — exactly like
    /// [`threads`](Self::threads) — the census is byte-identical for every
    /// value. `0` and `1` both mean a single partition.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Installs a progress observer, called once per completed application.
    pub fn observer(mut self, observer: impl Fn(&CensusProgress) + Send + Sync + 'static) -> Self {
        self.observer = Some(Arc::new(observer));
        self
    }

    /// Attaches shared phase-timing accumulators; the caller keeps its
    /// `Arc` and reads a [`PhaseReport`] snapshot after the run.
    pub fn timings(mut self, timings: Arc<PhaseTimings>) -> Self {
        self.timings = Some(timings);
        self
    }

    /// Finalizes the pipeline.
    pub fn build(self) -> CensusPipeline {
        CensusPipeline {
            opts: self.opts,
            // Stored raw; normalization to ≥ 1 lives in
            // `CensusPipeline::threads` so `Default` (threads: 0) follows
            // the same rule as `threads(0)`; `shards` works the same way.
            threads: self.threads,
            shards: self.shards,
            observer: self.observer,
            timings: self.timings,
            caches: Arc::default(),
        }
    }
}

/// The configured evaluation pipeline: baseline → install → double-pass
/// probe → rule evaluation → cluster-wide pass, with typed errors and a
/// deterministic parallel path. Construct via [`CensusPipeline::builder`].
///
/// ```
/// use ij_datasets::{CensusPipeline, CorpusGenerator, CorpusProfile};
///
/// // A procedural eight-app population, streamed through two workers.
/// let generator = CorpusGenerator::new(
///     CorpusProfile::named("baseline").unwrap().with_apps(8).with_seed(7),
/// );
/// let census = CensusPipeline::builder()
///     .seed(7)
///     .threads(2) // byte-identical to the sequential run
///     .build()
///     .run_generated(&generator)
///     .expect("generated charts render and install");
/// assert_eq!(census.apps.len(), 8);
///
/// // The analyzer found exactly what the generator injected.
/// let expected = generator.describe();
/// assert_eq!(census.total_misconfigurations(), expected.expected_total());
/// ```
#[derive(Clone, Default)]
pub struct CensusPipeline {
    opts: CorpusOptions,
    threads: usize,
    shards: usize,
    observer: Option<CensusObserver>,
    timings: Option<Arc<PhaseTimings>>,
    // Clones share the caches: a cloned pipeline is the same run.
    caches: Arc<PipelineCaches>,
}

impl fmt::Debug for CensusPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CensusPipeline")
            .field("opts", &self.opts)
            .field("threads", &self.threads())
            .field("shards", &self.shards())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl CensusPipeline {
    /// Starts configuring a pipeline.
    pub fn builder() -> CensusPipelineBuilder {
        CensusPipelineBuilder::default()
    }

    /// The options the pipeline runs with.
    pub fn options(&self) -> &CorpusOptions {
        &self.opts
    }

    /// The number of analysis workers (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// The number of streamed-census partitions (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards.max(1)
    }

    /// Installs one built application into a fresh cluster and analyzes it,
    /// following §4.2: baseline → install → double-pass runtime analysis →
    /// rule evaluation. Rendering goes through the compiled chart and the
    /// pipeline's render cache, so re-analyzing an app (or following a
    /// census with [`policy_impact`](Self::policy_impact)) never re-parses
    /// or re-renders what this pipeline already produced.
    pub fn analyze_one(&self, built: &BuiltApp) -> Result<AppAnalysis, CensusError> {
        let mut scratch = WorkerScratch::default();
        let result = self.analyze_built(built, true, &mut scratch);
        scratch.flush(self.timings.as_deref());
        result
    }

    /// [`analyze_one`](Self::analyze_one) with the render cache optional:
    /// generated (streamed) runs render each app exactly once, so caching
    /// the release would only pin it in memory — they render straight into
    /// the worker's staging vec instead, so no `RenderedRelease` (or its
    /// object vec) is allocated at all.
    fn analyze_built(
        &self,
        built: &BuiltApp,
        cache: bool,
        scratch: &mut WorkerScratch,
    ) -> Result<AppAnalysis, CensusError> {
        let opts = &self.opts;
        let app = &built.spec.name;
        let timed = self.timings.is_some();
        let WorkerScratch {
            objects: staged,
            render: render_scratch,
            timings: local,
        } = scratch;

        let mut start = timed.then(Instant::now);
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: opts.nodes,
            seed: opts.app_seed(app),
            behaviors: built.registry(),
        });
        record_local(&mut local.install, start);

        start = timed.then(Instant::now);
        let release = Release::new(app, "default");
        let render_err = |source| CensusError::Render {
            app: app.clone(),
            source,
        };
        // `objects` borrows either the cached release or the scratch vec.
        let cached;
        let objects: &[Object] = if cache {
            cached = self.render_app(built, &release)?;
            &cached.objects
        } else {
            let compiled = built.compiled().map_err(render_err)?;
            staged.clear();
            compiled
                .render_objects_into(&release, render_scratch, staged)
                .map_err(render_err)?;
            staged
        };
        record_local(&mut local.render, start);

        start = timed.then(Instant::now);
        let baseline = HostBaseline::capture(&cluster);
        record_local(&mut local.probe, start);

        start = timed.then(Instant::now);
        cluster
            .install_objects(app, objects)
            .map_err(|source| CensusError::Install {
                app: app.clone(),
                source,
            })?;
        record_local(&mut local.install, start);

        start = timed.then(Instant::now);
        let mut probe_cfg = opts.probe.clone();
        probe_cfg.seed = opts.app_seed(app).rotate_left(17);
        let runtime = RuntimeAnalyzer::new(probe_cfg).analyze(&mut cluster, &baseline);
        record_local(&mut local.probe, start);

        start = timed.then(Instant::now);
        let findings = opts.analyzer.analyze_app(
            app,
            objects,
            &cluster,
            Some(&runtime),
            chart_defines_network_policies(built.chart()),
        );
        let analysis = AppAnalysis {
            app: app.clone(),
            findings,
            statics: StaticModel::from_objects(objects),
        };
        record_local(&mut local.analyze, start);
        Ok(analysis)
    }

    /// Renders `built` for `release` through the compiled chart, memoized
    /// per `(compiled chart, release)` for the life of this pipeline (and
    /// its clones). The first call compiles and renders; replays are a
    /// shared handle. Semantically identical to `built.chart().render`.
    pub fn render_app(
        &self,
        built: &BuiltApp,
        release: &Release,
    ) -> Result<Arc<RenderedRelease>, CensusError> {
        let render_err = |source| CensusError::Render {
            app: built.spec.name.clone(),
            source,
        };
        let compiled = built.compiled().map_err(render_err)?;
        let key = (compiled.instance_key(), release_fingerprint(release));
        if let Some((_, hit)) = self.caches.renders.lock().expect("render cache").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let rendered = Arc::new(compiled.render(release).map_err(render_err)?);
        self.caches
            .renders
            .lock()
            .expect("render cache")
            .entry(key)
            .or_insert_with(|| (compiled.clone(), Arc::clone(&rendered)));
        Ok(rendered)
    }

    /// The built (chart + behaviours) form of `spec`, memoized per spec for
    /// the life of this pipeline so census and policy-impact passes share
    /// one compiled chart per application.
    fn built_for(&self, spec: &AppSpec) -> Arc<BuiltApp> {
        let key = format!("{spec:?}");
        if let Some(hit) = self.caches.builds.lock().expect("build cache").get(&key) {
            return Arc::clone(hit);
        }
        // Built outside the lock: a racing worker may build the same app
        // twice, but every worker ends up sharing whichever insert won.
        let built = Arc::new(build_app(spec));
        Arc::clone(
            self.caches
                .builds
                .lock()
                .expect("build cache")
                .entry(key)
                .or_insert(built),
        )
    }

    /// Runs the full evaluation over a set of specifications: every
    /// application in its own cluster (in parallel when
    /// [`threads`](CensusPipelineBuilder::threads) > 1), then the
    /// cluster-wide M4\* pass, producing the census behind Table 2 and
    /// Figures 3–4.
    pub fn run(&self, specs: &[AppSpec]) -> Result<Census, CensusError> {
        self.run_source(SpecSource::Slice(specs))
    }

    /// [`run`](Self::run) over a procedural population: each worker asks
    /// the generator for spec `i` as it claims the index, so the population
    /// is **streamed** — no `Vec<AppSpec>` of the whole corpus ever exists,
    /// and neither the build nor the render cache retains the generated
    /// charts. Byte-identical across thread and shard counts, exactly like
    /// `run`. This is [`run_generated_compact`](Self::run_generated_compact)
    /// plus a final materialization; corpus-scale callers should stay on
    /// the compact form and render from it lazily.
    pub fn run_generated(&self, generator: &CorpusGenerator) -> Result<Census, CensusError> {
        Ok(self.run_generated_compact(generator)?.resolve())
    }

    /// True when the registry's cluster-wide pass can be driven through the
    /// interned [`m4_global_collisions_compact`] kernel: either no global
    /// rule will run, or every enabled global entry is the built-in M4\*
    /// (whose body is that kernel behind a string adapter). A custom global
    /// rule needs real `StaticModel`s, so the streamed path falls back to
    /// the materializing pipeline for it.
    fn compact_global_capable(&self) -> bool {
        !self.opts.analyzer.options.static_rules
            || self
                .opts
                .analyzer
                .registry
                .entries()
                .iter()
                .filter(|e| e.is_enabled() && e.is_global())
                .all(RuleEntry::is_builtin_m4star)
    }

    /// The flat-memory generated census: streams every spec through the
    /// per-app analysis exactly like [`run_generated`](Self::run_generated),
    /// but interns each report into one of
    /// [`shards`](CensusPipelineBuilder::shards) partition-local symbol
    /// tables as it completes, keeping only [`CompactAppReport`]s plus (when
    /// the cluster-wide pass will run) [`GlobalAppModel`]s — never a
    /// materialized `Vec<AppSpec>`, `Vec<StaticModel>`, or owned-`String`
    /// census. Shards are merged by a deterministic symbol-remapping reduce
    /// in spec order, then the interned M4\* pass runs over the merged
    /// table, so the result is byte-identical across every
    /// `(shards, threads)` combination.
    pub fn run_generated_compact(
        &self,
        generator: &CorpusGenerator,
    ) -> Result<CompactCensus, CensusError> {
        if !self.compact_global_capable() {
            // A custom global rule consumes full static models: run the
            // materializing path and intern its census after the fact.
            let census = self.run_source(SpecSource::Generator(generator))?;
            return Ok(CompactCensus::intern(&census));
        }
        let total = generator.len();
        let shard_count = self.shards().min(total.max(1));
        let need_global = self.opts.analyzer.options.static_rules
            && self
                .opts
                .analyzer
                .registry
                .entries()
                .iter()
                .any(|e| e.is_enabled() && e.is_global());

        // Contiguous partitions: shard `s` owns specs
        // `bounds[s]..bounds[s + 1]`. Workers intern into the shard that
        // owns the spec's index, so shard contents never depend on worker
        // scheduling.
        let bounds: Vec<usize> = (0..=shard_count).map(|s| s * total / shard_count).collect();
        let shards: Vec<Mutex<ShardState>> = bounds
            .windows(2)
            .map(|w| {
                let mut slots = Vec::new();
                slots.resize_with(w[1] - w[0], || None);
                Mutex::new(ShardState {
                    table: SymbolTable::new(),
                    slots,
                })
            })
            .collect();
        let shard_of = |i: usize| bounds.partition_point(|&b| b <= i) - 1;
        // Analyze one spec and intern the outcome into its shard. The lock
        // is held only for the interning, not the analysis.
        let analyze_into_shard =
            |i: usize, spec: &AppSpec, scratch: &mut WorkerScratch| -> Result<(), CensusError> {
                let analysis = self.analyze_spec(spec, false, scratch)?;
                let s = shard_of(i);
                let mut state = shards[s].lock().expect("shard state");
                let ShardState { table, slots } = &mut *state;
                let report = CompactAppReport {
                    app: table.intern(&spec.name),
                    dataset: table.intern(spec.org.as_str()),
                    version: table.intern(&spec.version),
                    findings: analysis
                        .findings
                        .iter()
                        .map(|f| CompactFinding::intern(f, table))
                        .collect(),
                };
                let globals = need_global
                    .then(|| GlobalAppModel::intern(&spec.name, &analysis.statics, table));
                slots[i - bounds[s]] = Some(ShardSlot { report, globals });
                Ok(())
            };

        let workers = self.threads().min(total.max(1));
        if workers <= 1 {
            let mut scratch = WorkerScratch::default();
            for i in 0..total {
                let spec = generator.spec(i);
                let result = analyze_into_shard(i, &spec, &mut scratch);
                if result.is_err() {
                    self.flush_scratch(&mut scratch);
                    result?;
                }
                self.notify(&spec.name, i + 1, total);
            }
            self.flush_scratch(&mut scratch);
        } else {
            let next = AtomicUsize::new(0);
            let failed = AtomicBool::new(false);
            let (tx, rx) = crossbeam::channel::unbounded();
            let mut first_err: Option<(usize, CensusError)> = None;
            std::thread::scope(|scope| {
                let next = &next;
                let failed = &failed;
                let analyze_into_shard = &analyze_into_shard;
                for _ in 0..workers {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut scratch = WorkerScratch::default();
                        loop {
                            // Stop handing out work after the first failure;
                            // in-flight analyses still complete, so every
                            // index below the error stays filled (same
                            // contract as `analyze_source`).
                            if failed.load(Ordering::SeqCst) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::SeqCst);
                            if i >= total {
                                break;
                            }
                            let spec = generator.spec(i);
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    analyze_into_shard(i, &spec, &mut scratch)
                                }))
                                .unwrap_or_else(|payload| {
                                    Err(panic_probe_error(&spec.name, payload))
                                });
                            let result = result.map(|()| spec.name);
                            if result.is_err() {
                                failed.store(true, Ordering::SeqCst);
                            }
                            if tx.send((i, result)).is_err() {
                                break;
                            }
                        }
                        self.flush_scratch(&mut scratch);
                    });
                }
                drop(tx);
                let mut completed = 0usize;
                for (i, result) in rx {
                    completed += 1;
                    match result {
                        Ok(app) => self.notify(&app, completed, total),
                        Err(err) => {
                            self.notify(err.app(), completed, total);
                            // Indices are handed out in order and drained
                            // before the scope ends, so the minimum-index
                            // error is the one the sequential run would hit.
                            if first_err.as_ref().is_none_or(|(k, _)| i < *k) {
                                first_err = Some((i, err));
                            }
                        }
                    }
                }
            });
            if let Some((_, err)) = first_err {
                return Err(err);
            }
        }

        self.merge_shards(shards, &bounds, need_global, workers <= 1, generator, total)
    }

    /// The deterministic reduce: re-interns every shard's reports into one
    /// merged table *in spec order* — so the merged symbol assignment (and
    /// therefore the entire compact census) is invariant to both shard and
    /// thread counts — then runs the interned cluster-wide pass and
    /// attributes its findings.
    fn merge_shards(
        &self,
        shards: Vec<Mutex<ShardState>>,
        bounds: &[usize],
        need_global: bool,
        sequential: bool,
        generator: &CorpusGenerator,
        total: usize,
    ) -> Result<CompactCensus, CensusError> {
        let missing = |index: usize| CensusError::Probe {
            app: generator.spec(index).name,
            message: "analysis worker terminated before producing a result".into(),
        };
        let shard_count = shards.len();
        let mut apps: Vec<CompactAppReport> = Vec::with_capacity(total);
        let mut globals: Vec<GlobalAppModel> = Vec::new();
        let mut table;
        if shard_count == 1 && sequential {
            // The sequential single-shard run interned every spec in order
            // already: its table *is* the merged table, no remap copy
            // needed. (A parallel run interns in completion order, so even
            // one shard must go through the spec-order remap below to keep
            // symbol assignment scheduling-independent.)
            let state = shards
                .into_iter()
                .next()
                .expect("one shard")
                .into_inner()
                .expect("shard state");
            table = state.table;
            for (j, slot) in state.slots.into_iter().enumerate() {
                let Some(slot) = slot else {
                    return Err(missing(j));
                };
                apps.push(slot.report);
                globals.extend(slot.globals);
            }
        } else {
            table = SymbolTable::new();
            for (s, shard) in shards.into_iter().enumerate() {
                let state = shard.into_inner().expect("shard state");
                let shard_table = state.table;
                for (j, slot) in state.slots.into_iter().enumerate() {
                    let Some(slot) = slot else {
                        return Err(missing(bounds[s] + j));
                    };
                    apps.push(slot.report.remap(&shard_table, &mut table));
                    globals.extend(slot.globals.map(|g| g.remap(&shard_table, &mut table)));
                }
                // `shard_table` drops here: peak memory is the merged arena
                // plus one shard's, never the sum of every shard's.
            }
        }

        if need_global {
            let found = m4_global_collisions_compact(&globals, &table);
            drop(globals);
            if !found.is_empty() {
                let mut first_ix: HashMap<Sym, usize> = HashMap::new();
                for (i, a) in apps.iter().enumerate() {
                    first_ix.entry(a.app).or_insert(i);
                }
                let mut touched: Vec<usize> = Vec::new();
                for finding in found {
                    // Attribute to the first report of the named app, the
                    // order `run_source` resolves ties in.
                    let Some(&i) = table.lookup(&finding.app).and_then(|s| first_ix.get(&s)) else {
                        continue;
                    };
                    apps[i]
                        .findings
                        .push(CompactFinding::intern(&finding, &mut table));
                    touched.push(i);
                }
                touched.sort_unstable();
                touched.dedup();
                // Only touched reports need re-sorting: the per-app pass
                // already left every other report canonically ordered.
                for &i in &touched {
                    sort_canonical_compact(&mut apps[i].findings, &table);
                }
            }
        }
        Ok(CompactCensus::new(table, apps))
    }

    fn run_source(&self, source: SpecSource<'_>) -> Result<Census, CensusError> {
        let results = self.analyze_source(source)?;
        let mut reports = Vec::with_capacity(results.len());
        let mut statics = Vec::with_capacity(results.len());
        for (spec, analysis) in results {
            statics.push((spec.name.clone(), analysis.statics));
            reports.push(AppReport {
                app: spec.name,
                dataset: spec.org.as_str().to_string(),
                version: spec.version,
                findings: analysis.findings,
            });
        }
        for finding in self.opts.analyzer.analyze_global(&statics) {
            if let Some(report) = reports.iter_mut().find(|r| r.app == finding.app) {
                report.findings.push(finding);
            }
        }
        // The cluster-wide findings were appended after the per-app sort;
        // restore the canonical order so every report renders identically
        // however its findings were produced.
        for report in &mut reports {
            sort_canonical(&mut report.findings);
        }
        Ok(Census { apps: reports })
    }

    /// Analyzes every spec of the source, returning `(spec, analysis)`
    /// pairs in spec order. The parallel path is index-slotted so the
    /// output (and the first error, if any) never depends on worker
    /// scheduling.
    fn analyze_source(
        &self,
        source: SpecSource<'_>,
    ) -> Result<Vec<(AppSpec, AppAnalysis)>, CensusError> {
        let total = source.len();
        let workers = self.threads().min(total.max(1));
        if workers <= 1 {
            let mut out = Vec::with_capacity(total);
            let mut scratch = WorkerScratch::default();
            for i in 0..total {
                let spec = source.spec(i);
                match self.analyze_spec(&spec, source.cache(), &mut scratch) {
                    Ok(analysis) => {
                        self.notify(&spec.name, i + 1, total);
                        out.push((spec.into_owned(), analysis));
                    }
                    Err(err) => {
                        self.flush_scratch(&mut scratch);
                        return Err(err);
                    }
                }
            }
            self.flush_scratch(&mut scratch);
            return Ok(out);
        }

        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let (tx, rx) = crossbeam::channel::unbounded();
        let mut slots: Vec<Option<Result<(AppSpec, AppAnalysis), CensusError>>> = Vec::new();
        slots.resize_with(total, || None);
        std::thread::scope(|scope| {
            let next = &next;
            let failed = &failed;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::default();
                    loop {
                        // Match the sequential path's stop-at-first-failure
                        // behaviour: once any analysis errors, stop handing
                        // out new work (in-flight analyses still complete,
                        // keeping every slot below the error index filled).
                        if failed.load(Ordering::SeqCst) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= total {
                            break;
                        }
                        let spec = source.spec(i).into_owned();
                        let result = self
                            .analyze_spec_catching(&spec, source.cache(), &mut scratch)
                            .map(|analysis| (spec, analysis));
                        if result.is_err() {
                            failed.store(true, Ordering::SeqCst);
                        }
                        if tx.send((i, result)).is_err() {
                            break;
                        }
                    }
                    self.flush_scratch(&mut scratch);
                });
            }
            drop(tx);
            let mut completed = 0usize;
            for (i, result) in rx {
                completed += 1;
                let app = match &result {
                    Ok((spec, _)) => spec.name.as_str(),
                    Err(err) => err.app(),
                };
                self.notify(app, completed, total);
                slots[i] = Some(result);
            }
        });

        // Indices are handed out in order and in-flight work drains before
        // the scope ends, so every slot below the first error is filled;
        // scanning in spec order therefore yields a deterministic first
        // error. `None` slots only exist past an error (skipped work).
        let mut out = Vec::with_capacity(total);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(result) => out.push(result?),
                None => {
                    return Err(CensusError::Probe {
                        app: source.spec(i).name.clone(),
                        message: "analysis worker terminated before producing a result".into(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Analyzes one spec, memoizing the built app when `cache` is set
    /// (slice runs) and building it transiently otherwise (generated runs).
    fn analyze_spec(
        &self,
        spec: &AppSpec,
        cache: bool,
        scratch: &mut WorkerScratch,
    ) -> Result<AppAnalysis, CensusError> {
        let start = self.timings.is_some().then(Instant::now);
        let built = if cache {
            BuiltRef::Shared(self.built_for(spec))
        } else {
            BuiltRef::Owned(build_app(spec))
        };
        record_local(&mut scratch.timings.build, start);
        self.analyze_built(built.as_ref(), cache, scratch)
    }

    /// Builds and analyzes one spec, converting a panic inside the analysis
    /// (e.g. from a custom registry rule) into [`CensusError::Probe`] so a
    /// worker thread never unwinds through `std::thread::scope` and the
    /// pipeline's no-panic contract holds on every path.
    fn analyze_spec_catching(
        &self,
        spec: &AppSpec,
        cache: bool,
        scratch: &mut WorkerScratch,
    ) -> Result<AppAnalysis, CensusError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.analyze_spec(spec, cache, scratch)
        }))
        .unwrap_or_else(|payload| Err(panic_probe_error(&spec.name, payload)))
    }

    fn flush_scratch(&self, scratch: &mut WorkerScratch) {
        scratch.flush(self.timings.as_deref());
    }

    fn notify(&self, app: &str, completed: usize, total: usize) {
        if let Some(observer) = &self.observer {
            observer(&CensusProgress {
                app: app.to_string(),
                completed,
                total,
            });
        }
    }

    /// The §4.3.2 policy-impact study (Figure 4b): force-enables each
    /// policy-defining chart's policies and measures which misconfigured
    /// endpoints remain reachable from an unrelated attacker pod.
    pub fn policy_impact(&self, specs: &[AppSpec]) -> Result<Vec<PolicyImpact>, CensusError> {
        let opts = &self.opts;
        let mut rows: Vec<PolicyImpact> = Vec::new();
        for app_spec in specs {
            if !app_spec.plan.netpol.defines_policy() {
                continue;
            }
            let row_idx = match rows.iter().position(|r| r.dataset == app_spec.org.as_str()) {
                Some(i) => i,
                None => {
                    rows.push(PolicyImpact {
                        dataset: app_spec.org.as_str().to_string(),
                        ..Default::default()
                    });
                    rows.len() - 1
                }
            };
            let row = &mut rows[row_idx];
            row.enabled += 1;

            let built = self.built_for(app_spec);
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: opts.nodes,
                seed: opts.app_seed(&app_spec.name),
                behaviors: built.registry(),
            });
            let release = Release::new(&app_spec.name, "default")
                .with_values_yaml("networkPolicy:\n  enabled: true\n")
                .map_err(|source| CensusError::Render {
                    app: app_spec.name.clone(),
                    source,
                })?;
            let rendered = self.render_app(&built, &release)?;
            cluster
                .install(&rendered)
                .map_err(|source| CensusError::Install {
                    app: app_spec.name.clone(),
                    source,
                })?;
            // Vantage point: an unrelated attacker pod in the same cluster.
            cluster
                .apply(Object::Pod(Pod::new(
                    ObjectMeta::named("ij-attacker"),
                    PodSpec {
                        containers: vec![Container::new("sh", "attacker/recon")],
                        ..Default::default()
                    },
                )))
                .map_err(|source| CensusError::Install {
                    app: app_spec.name.clone(),
                    source,
                })?;
            cluster.reconcile();

            let statics = StaticModel::from_objects(&rendered.objects);
            let declares = |owner: &Option<String>, pod_name: &str, port: u16, proto| {
                let unit_name = owner.clone().unwrap_or_else(|| pod_name.to_string());
                statics
                    .unit(&unit_name)
                    .map(|u| u.declares(port, proto))
                    .unwrap_or(true)
            };

            // One reachability matrix per rendered chart: the batch pass
            // over the cluster's cached policy index replaces the per-pair
            // connect loop, and the same index snapshot then serves the
            // service leg below (`send_to_service` shares the cache).
            // A missing attacker pod degrades to "nothing reachable", the
            // same answer the per-pair probe gave (connect → None).
            let matrix = ReachMatrix::compute(&cluster);
            let attacker = matrix.pod_index("default/ij-attacker");

            let mut pods_hit = 0usize;
            let mut dynamic_hit = 0usize;
            for (dst, rp) in cluster.pods().iter().enumerate() {
                let name = rp.qualified_name();
                if name.ends_with("/ij-attacker") {
                    continue;
                }
                let mut hit = false;
                let mut dynamic = false;
                for socket in &rp.sockets {
                    if socket.loopback_only {
                        continue;
                    }
                    let misconfigured = socket.ephemeral
                        || !declares(&rp.owner, &name, socket.port, socket.protocol);
                    if !misconfigured {
                        continue;
                    }
                    if attacker
                        .is_some_and(|a| matrix.connected(a, dst, socket.port, socket.protocol))
                    {
                        hit = true;
                        dynamic |= socket.ephemeral;
                    }
                }
                if hit {
                    pods_hit += 1;
                    row.reachable_pods += 1;
                    if dynamic {
                        dynamic_hit += 1;
                        row.reachable_dynamic_pods += 1;
                    }
                }
            }

            // Services that still forward to an undeclared target port.
            let mut services_hit = 0usize;
            for ep in cluster.endpoints() {
                let svc_ns = ep.meta.namespace.clone();
                let svc_name = ep.meta.name.clone();
                let mut svc_hit = false;
                for addr in &ep.addresses {
                    let Some(dst) = cluster.pod(&addr.pod) else {
                        continue;
                    };
                    if declares(&dst.owner, &addr.pod, addr.port, addr.protocol) {
                        continue;
                    }
                    if !dst.listens_on(addr.port, addr.protocol) {
                        continue;
                    }
                    let svc = cluster
                        .services()
                        .find(|s| s.meta.namespace == svc_ns && s.meta.name == svc_name);
                    if let Some(svc) = svc {
                        for sp in &svc.spec.ports {
                            if sp.name == addr.port_name
                                && !cluster
                                    .send_to_service(
                                        "default/ij-attacker",
                                        &svc_ns,
                                        &svc_name,
                                        sp.port,
                                    )
                                    .is_empty()
                            {
                                svc_hit = true;
                            }
                        }
                    }
                }
                if svc_hit {
                    services_hit += 1;
                    row.reachable_services += 1;
                }
            }

            if pods_hit > 0 || dynamic_hit > 0 || services_hit > 0 {
                row.affected += 1;
            }
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{CorpusGenerator, CorpusProfile};
    use crate::spec::{NetpolSpec, Org, Plan};
    use std::sync::Mutex;

    fn specs() -> Vec<AppSpec> {
        vec![
            AppSpec::new(
                "pipe-alpha",
                Org::Cncf,
                "1.0.0",
                Plan {
                    m1: 2,
                    m2: 1,
                    m4a: 1,
                    m4star_tokens: vec!["pipe-shared"],
                    netpol: NetpolSpec::Missing,
                    ..Default::default()
                },
            ),
            AppSpec::new(
                "pipe-beta",
                Org::Cncf,
                "1.0.0",
                Plan {
                    m5b: 1,
                    m5d: 1,
                    m4star_tokens: vec!["pipe-shared"],
                    netpol: NetpolSpec::Enabled { loose: false },
                    ..Default::default()
                },
            ),
            AppSpec::new("pipe-gamma", Org::Wikimedia, "1.0.0", Plan::clean()),
            AppSpec::new(
                "pipe-delta",
                Org::Eea,
                "1.0.0",
                Plan {
                    m3: 1,
                    m7: 1,
                    ..Default::default()
                },
            ),
        ]
    }

    #[test]
    fn parallel_census_is_byte_identical_to_sequential() {
        let sequential = CensusPipeline::builder()
            .seed(11)
            .build()
            .run(&specs())
            .expect("sequential run");
        for threads in [2, 4, 16] {
            let parallel = CensusPipeline::builder()
                .seed(11)
                .threads(threads)
                .build()
                .run(&specs())
                .expect("parallel run");
            assert_eq!(
                format!("{sequential:#?}"),
                format!("{parallel:#?}"),
                "threads({threads}) diverged from the sequential census"
            );
        }
    }

    #[test]
    fn generated_census_streams_and_matches_across_thread_counts() {
        let generator = CorpusGenerator::new(
            CorpusProfile::named("baseline")
                .expect("baseline profile")
                .with_apps(24)
                .with_seed(7),
        );
        let sequential_pipeline = CensusPipeline::builder().seed(7).build();
        let sequential = sequential_pipeline
            .run_generated(&generator)
            .expect("generated census runs");
        assert_eq!(sequential.apps.len(), 24);
        // Streamed: the generated population must not be retained by the
        // pipeline's memoization layers.
        assert!(sequential_pipeline.caches.builds.lock().unwrap().is_empty());
        assert!(sequential_pipeline
            .caches
            .renders
            .lock()
            .unwrap()
            .is_empty());
        for threads in [2, 8] {
            let parallel = CensusPipeline::builder()
                .seed(7)
                .threads(threads)
                .build()
                .run_generated(&generator)
                .expect("generated parallel census runs");
            assert_eq!(
                format!("{sequential:#?}"),
                format!("{parallel:#?}"),
                "threads({threads}) diverged on the generated census"
            );
        }
    }

    #[test]
    fn generated_census_equals_the_materialized_equivalent() {
        // Streaming is an implementation detail: running the generator
        // through `run_generated` must produce the same census as
        // collecting the specs first and running the slice path.
        let generator = CorpusGenerator::new(
            CorpusProfile::named("legacy")
                .expect("legacy profile")
                .with_apps(12)
                .with_seed(3),
        );
        let streamed = CensusPipeline::builder()
            .seed(3)
            .build()
            .run_generated(&generator)
            .expect("streamed run");
        let materialized: Vec<_> = generator.iter().collect();
        let sliced = CensusPipeline::builder()
            .seed(3)
            .build()
            .run(&materialized)
            .expect("slice run");
        assert_eq!(format!("{streamed:#?}"), format!("{sliced:#?}"));
    }

    #[test]
    fn sharded_generated_census_is_byte_identical() {
        // The tentpole determinism contract: any (shards, threads)
        // combination produces the same compact census — same symbol
        // assignment, same reports — as the single-shard sequential run.
        let generator = CorpusGenerator::new(
            CorpusProfile::named("baseline")
                .expect("baseline profile")
                .with_apps(24)
                .with_seed(7),
        );
        let reference = CensusPipeline::builder()
            .seed(7)
            .build()
            .run_generated_compact(&generator)
            .expect("single-shard run");
        for shards in [1, 2, 8] {
            for threads in [1, 8] {
                let sharded = CensusPipeline::builder()
                    .seed(7)
                    .shards(shards)
                    .threads(threads)
                    .build()
                    .run_generated_compact(&generator)
                    .expect("sharded run");
                assert_eq!(
                    format!("{reference:#?}"),
                    format!("{sharded:#?}"),
                    "shards({shards}) x threads({threads}) diverged"
                );
            }
        }
    }

    #[test]
    fn compact_census_aggregations_match_the_owned_census() {
        let generator = CorpusGenerator::new(
            CorpusProfile::named("baseline")
                .expect("baseline profile")
                .with_apps(16)
                .with_seed(5),
        );
        let compact = CensusPipeline::builder()
            .seed(5)
            .shards(4)
            .threads(2)
            .build()
            .run_generated_compact(&generator)
            .expect("compact run");
        let owned = compact.resolve();
        assert_eq!(compact.table2(), owned.table2());
        assert_eq!(
            compact.total_misconfigurations(),
            owned.total_misconfigurations()
        );
        assert_eq!(compact.affected_apps(), owned.affected_apps());
        // Identities over the compact form match the owned findings: the
        // continuous-audit keyspace sees no representation change.
        for (ca, oa) in compact.apps.iter().zip(&owned.apps) {
            for (cf, of) in ca.findings.iter().zip(&oa.findings) {
                assert_eq!(cf.identity(compact.table()), of.identity());
            }
        }
    }

    #[test]
    fn custom_global_rule_falls_back_to_the_materializing_path() {
        fn quirky_global(apps: &[(String, ij_core::StaticModel)]) -> Vec<ij_core::Finding> {
            apps.iter()
                .map(|(app, _)| {
                    ij_core::Finding::new(ij_core::MisconfigId::M4Star, app, app, "quirky")
                })
                .collect()
        }
        let mut analyzer = Analyzer::hybrid();
        analyzer
            .registry
            .register_global_rule("quirky", &[], quirky_global);
        let generator = CorpusGenerator::new(
            CorpusProfile::named("baseline")
                .expect("baseline profile")
                .with_apps(6)
                .with_seed(9),
        );
        // A custom global rule needs real static models, so the compact
        // entry point must transparently take the materializing path...
        let compact = CensusPipeline::builder()
            .seed(9)
            .analyzer(analyzer.clone())
            .shards(3)
            .build()
            .run_generated_compact(&generator)
            .expect("fallback run");
        // ...and still agree with the owned pipeline byte-for-byte.
        let owned = CensusPipeline::builder()
            .seed(9)
            .analyzer(analyzer)
            .build()
            .run_generated(&generator)
            .expect("owned run");
        assert_eq!(format!("{:#?}", compact.resolve()), format!("{owned:#?}"));
        assert!(compact.apps.iter().all(|a| a
            .findings
            .iter()
            .any(|f| f.id == ij_core::MisconfigId::M4Star)));
    }

    #[test]
    fn panicking_rule_is_deterministic_under_sharded_parallelism() {
        fn exploding_rule(_: &ij_core::RuleContext<'_>) -> Vec<ij_core::Finding> {
            panic!("rule exploded")
        }
        let mut analyzer = Analyzer::hybrid();
        analyzer.registry.register_app_rule(
            "exploding",
            &[],
            ij_core::RuleScope::Static,
            exploding_rule,
        );
        let generator = CorpusGenerator::new(
            CorpusProfile::named("baseline")
                .expect("baseline profile")
                .with_apps(8)
                .with_seed(7),
        );
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = CensusPipeline::builder()
            .seed(7)
            .analyzer(analyzer)
            .shards(2)
            .threads(2)
            .build()
            .run_generated_compact(&generator);
        std::panic::set_hook(hook);
        let err = result.expect_err("the exploding rule must fail the census");
        match &err {
            CensusError::Probe { app, message } => {
                assert!(message.contains("rule exploded"), "{message}");
                // Minimum-index error: the first generated app, exactly what
                // the sequential run reports.
                assert_eq!(app, &generator.spec(0).name);
            }
            other => panic!("expected CensusError::Probe, got {other:?}"),
        }
    }

    #[test]
    fn zero_threads_means_sequential() {
        let pipeline = CensusPipeline::builder().threads(0).shards(0).build();
        assert_eq!(pipeline.threads(), 1);
        assert_eq!(pipeline.shards(), 1);
        pipeline.run(&specs()).expect("runs sequentially");
    }

    #[test]
    fn observer_sees_every_app_exactly_once() {
        let seen: Arc<Mutex<Vec<CensusProgress>>> = Arc::default();
        let sink = Arc::clone(&seen);
        CensusPipeline::builder()
            .threads(3)
            .observer(move |p: &CensusProgress| sink.lock().unwrap().push(p.clone()))
            .build()
            .run(&specs())
            .expect("observed run");
        let ticks = seen.lock().unwrap();
        assert_eq!(ticks.len(), specs().len());
        // Completion counters are contiguous even though app order is
        // scheduling-dependent under parallel execution.
        let mut counters: Vec<usize> = ticks.iter().map(|p| p.completed).collect();
        counters.sort_unstable();
        assert_eq!(counters, (1..=specs().len()).collect::<Vec<_>>());
        let mut apps: Vec<&str> = ticks.iter().map(|p| p.app.as_str()).collect();
        apps.sort_unstable();
        assert_eq!(
            apps,
            ["pipe-alpha", "pipe-beta", "pipe-delta", "pipe-gamma"]
        );
        assert!(ticks.iter().all(|p| p.total == specs().len()));
    }

    #[test]
    fn policy_impact_stable_across_repeats_and_threaded_runs() {
        // The §4.3.2 study rides on the per-chart cached policy index; its
        // output must not depend on how often the cache was rebuilt or on
        // an unrelated threaded census in between.
        let pipeline = CensusPipeline::builder().seed(11).build();
        let first = pipeline.policy_impact(&specs()).expect("first impact run");
        CensusPipeline::builder()
            .seed(11)
            .threads(4)
            .build()
            .run(&specs())
            .expect("threaded census");
        let second = pipeline.policy_impact(&specs()).expect("second impact run");
        assert_eq!(format!("{first:#?}"), format!("{second:#?}"));
    }

    #[test]
    fn builder_knobs_land_in_options() {
        let pipeline = CensusPipeline::builder()
            .seed(99)
            .nodes(5)
            .threads(8)
            .analyzer(Analyzer::static_only())
            .build();
        assert_eq!(pipeline.options().seed, 99);
        assert_eq!(pipeline.options().nodes, 5);
        assert_eq!(pipeline.threads(), 8);
        assert!(!pipeline.options().analyzer.options.runtime_rules);
        let debug = format!("{pipeline:?}");
        assert!(debug.contains("threads: 8"), "{debug}");
    }

    #[test]
    fn panicking_rule_surfaces_as_probe_error_not_a_panic() {
        fn exploding_rule(_: &ij_core::RuleContext<'_>) -> Vec<ij_core::Finding> {
            panic!("rule exploded")
        }
        let mut analyzer = Analyzer::hybrid();
        analyzer.registry.register_app_rule(
            "exploding",
            &[],
            ij_core::RuleScope::Static,
            exploding_rule,
        );
        // Silence the default panic hook for the duration: the panic is
        // expected and caught, the backtrace would only be noise.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = CensusPipeline::builder()
            .analyzer(analyzer)
            .threads(2)
            .build()
            .run(&specs());
        std::panic::set_hook(hook);
        let err = result.expect_err("the exploding rule must fail the census");
        match &err {
            CensusError::Probe { message, .. } => {
                assert!(message.contains("rule exploded"), "{message}")
            }
            other => panic!("expected CensusError::Probe, got {other:?}"),
        }
    }

    #[test]
    fn rule_ablation_flows_through_the_pipeline() {
        let full = CensusPipeline::builder()
            .build()
            .run(&specs())
            .expect("full run");
        let without_m4star = CensusPipeline::builder()
            .analyzer(Analyzer::hybrid().without_rule("m4star"))
            .build()
            .run(&specs())
            .expect("ablated run");
        let count = |census: &Census| {
            census
                .apps
                .iter()
                .map(|a| a.count_of(ij_core::MisconfigId::M4Star))
                .sum::<usize>()
        };
        assert!(count(&full) > 0);
        assert_eq!(count(&without_m4star), 0);
        // Everything else is untouched.
        assert_eq!(
            full.total_misconfigurations() - count(&full),
            without_m4star.total_misconfigurations()
        );
    }
}
