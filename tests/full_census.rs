//! End-to-end reproduction check: running the complete evaluation pipeline
//! over the full corpus must reproduce Table 2 of the paper exactly —
//! analyzer findings, not just injection plans.

use ij_core::MisconfigId;
use ij_datasets::{corpus, run_census, CorpusOptions};

/// Table 2, verbatim: affected, total, M1, M2, M3, M4A, M4B, M4C, M4*, M5A,
/// M5B, M5C, M5D, M6, M7.
const TABLE2: [(&str, [usize; 15]); 6] = [
    (
        "Banzai Cloud",
        [51, 51, 13, 2, 17, 8, 4, 0, 0, 0, 2, 0, 0, 51, 0],
    ),
    (
        "Bitnami",
        [158, 158, 106, 26, 40, 25, 10, 0, 5, 2, 14, 3, 0, 156, 7],
    ),
    ("CNCF", [7, 10, 10, 0, 4, 0, 0, 0, 0, 6, 0, 0, 0, 7, 0]),
    ("EEA", [8, 19, 7, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0]),
    (
        "Prometheus C.",
        [25, 25, 42, 4, 3, 0, 0, 0, 0, 1, 4, 0, 0, 25, 4],
    ),
    (
        "Wikimedia",
        [10, 27, 10, 3, 2, 2, 1, 1, 0, 2, 1, 0, 0, 2, 0],
    ),
];

const IDS: [MisconfigId; 13] = MisconfigId::ALL;

#[test]
fn full_pipeline_reproduces_table2() {
    let census = run_census(&corpus(), &CorpusOptions::default()).expect("the full corpus runs");
    assert_eq!(census.total_misconfigurations(), 634, "the paper's total");
    assert_eq!(census.affected_apps().0, 259, "the paper's affected count");
    for (dataset, row) in TABLE2 {
        let measured = census.dataset_row(dataset);
        assert_eq!(measured.affected, row[0], "{dataset}: affected");
        assert_eq!(measured.total_apps, row[1], "{dataset}: total");
        for (i, id) in IDS.iter().enumerate() {
            assert_eq!(
                measured.count(*id),
                row[i + 2],
                "{dataset}: {id} (findings: {:#?})",
                census
                    .apps
                    .iter()
                    .filter(|a| a.dataset == dataset)
                    .flat_map(|a| a.findings.iter().filter(|f| f.id == *id))
                    .collect::<Vec<_>>()
            );
        }
    }
}
