//! Fuzz-style hardening suite for the template engine and render pipeline.
//!
//! Charts arrive from the filesystem, so template text is attacker-adjacent
//! input: half-deleted `{{` markers, unbalanced `end`s, unknown functions,
//! absurd nesting. The contract: [`Chart::render`] and the compiled pipeline
//! never panic — every failure surfaces as a typed [`ij_chart::Error`] — and
//! whenever the naive render succeeds, compiling first changes nothing.

use ij_chart::{Chart, Release};
use proptest::prelude::*;

/// Template fragments assembled into hostile-but-plausible template text.
const TOKENS: &[&str] = &[
    "{{",
    "}}",
    "{{-",
    "-}}",
    " ",
    "\n",
    "if",
    "else",
    "end",
    "range",
    "include",
    "define",
    "template",
    ".Values.service.port",
    ".Values.missing",
    ".Release.Name",
    ".Chart.Name",
    "\"helpers\"",
    "quote",
    "default",
    "nindent 4",
    "toYaml",
    "|",
    "b64enc",
    "eq",
    "not",
    "$x",
    ":=",
    "kind: ConfigMap\n",
    "metadata:\n",
    "  name: x\n",
    "data:\n",
    "  a: 1\n",
    "- ",
    "port: 80\n",
];

/// Realistic templates to mutate — the shapes the fixture charts use.
const CORPUS: &[&str] = &[
    "apiVersion: v1\nkind: Service\nmetadata:\n  name: {{ .Release.Name }}-svc\nspec:\n  ports:\n    - port: {{ .Values.service.port }}\n",
    "{{- define \"app.labels\" }}\napp: {{ .Chart.Name }}\n{{- end }}\nkind: ConfigMap\nmetadata:\n  name: cfg\n  labels: {{- include \"app.labels\" . | nindent 4 }}\n",
    "{{- if .Values.enabled }}\nkind: NetworkPolicy\nmetadata:\n  name: {{ .Release.Name | quote }}\n{{- end }}\n",
    "kind: ConfigMap\ndata:\n{{- range .Values.ports }}\n  p{{ . }}: {{ . | quote }}\n{{- end }}\n",
];

const VALUES: &str = "enabled: true\nservice:\n  port: 8080\nports:\n  - 80\n  - 443\n";

fn arb_token_template() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(TOKENS.to_vec()), 0..40)
        .prop_map(|tokens| tokens.concat())
}

fn arb_mutated_template() -> impl Strategy<Value = String> {
    let mutation = (
        0usize..3,
        any::<u16>(),
        any::<u8>(),
        prop::sample::select(TOKENS.to_vec()),
    );
    (
        prop::sample::select(CORPUS.to_vec()),
        prop::collection::vec(mutation, 0..5),
    )
        .prop_map(|(base, mutations)| {
            let mut text = base.to_string();
            for (kind, pos, span, token) in mutations {
                if text.is_empty() {
                    text = token.to_string();
                    continue;
                }
                let mut at = pos as usize % text.len();
                while !text.is_char_boundary(at) {
                    at -= 1;
                }
                let mut end = (at + span as usize % 16).min(text.len());
                while !text.is_char_boundary(end) {
                    end -= 1;
                }
                match kind {
                    0 => text.insert_str(at, token),
                    1 => text.replace_range(at..end, ""),
                    _ => {
                        let dup = text[at..end].to_string();
                        text.insert_str(at, &dup);
                    }
                }
            }
            text
        })
}

/// Renders through both pipelines; neither may panic, and when the naive
/// render succeeds the compiled render must agree byte-for-byte.
fn render_both(template: &str) {
    let chart = Chart::builder("fuzz")
        .values_yaml(VALUES)
        .expect("static values parse")
        .template("t.yaml", template)
        .build();
    let release = Release::new("fuzz", "default");
    let naive = chart.render(&release);
    let compiled = chart.compile().and_then(|c| c.render(&release));
    match (naive, compiled) {
        (Ok(a), Ok(b)) => {
            let a: Vec<String> = a.objects.iter().map(|o| o.to_manifest()).collect();
            let b: Vec<String> = b.objects.iter().map(|o| o.to_manifest()).collect();
            assert_eq!(a, b, "compiled render diverged for template:\n{template}");
        }
        (Err(_), _) | (_, Err(_)) => {}
    }
}

proptest! {
    #[test]
    fn render_never_panics_on_token_templates(t in arb_token_template()) {
        render_both(&t);
    }

    #[test]
    fn render_never_panics_on_mutated_templates(t in arb_mutated_template()) {
        render_both(&t);
    }

    #[test]
    fn render_never_panics_on_arbitrary_text(t in "[ -~\\n\\t]{0,300}") {
        render_both(&t);
    }
}

#[test]
fn corpus_templates_render_identically() {
    for t in CORPUS {
        render_both(t);
    }
}

#[test]
fn unknown_function_is_a_typed_error() {
    let chart = Chart::builder("fuzz")
        .template(
            "t.yaml",
            "kind: ConfigMap\nmetadata:\n  name: {{ .Release.Name | b64enc }}\n",
        )
        .build();
    let err = chart
        .render(&Release::new("r", "default"))
        .expect_err("b64enc is unsupported");
    assert!(
        err.to_string().contains("b64enc"),
        "error should name the function: {err}"
    );
}

#[test]
fn runaway_include_recursion_is_a_typed_error() {
    let chart = Chart::builder("fuzz")
        .template(
            "_loop.tpl",
            "{{- define \"loop\" }}{{ include \"loop\" . }}{{- end }}",
        )
        .template(
            "t.yaml",
            "kind: ConfigMap\nmetadata:\n  name: {{ include \"loop\" . }}\n",
        )
        .build();
    let err = chart
        .render(&Release::new("r", "default"))
        .expect_err("self-including template must not recurse forever");
    let msg = err.to_string();
    assert!(
        msg.contains("depth") || msg.contains("recursion") || msg.contains("include"),
        "unexpected error: {msg}"
    );
}
