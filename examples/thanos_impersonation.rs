//! §2.1.2 proof of concept — "Service Impersonation: Thanos".
//!
//! ```sh
//! cargo run --example thanos_impersonation
//! ```
//!
//! `thanos-query-frontend` and `thanos-query` share one label, and both
//! services select it. An attacker pod carrying the same label joins the
//! services' backend sets and receives (or blackholes) user queries. The
//! example replays the impersonation, then shows the `ij-guard` admission
//! controller refusing the imposter at deploy time.

use inside_job::chart::Release;
use inside_job::cluster::{BehaviorRegistry, Cluster, ClusterConfig};
use inside_job::core::{Analyzer, MisconfigId};
use inside_job::datasets::{thanos_behaviors, thanos_chart};
use inside_job::guard::{GuardAdmission, GuardPolicy};
use inside_job::model::{Container, ContainerPort, Labels, Object, ObjectMeta, Pod, PodSpec};
use inside_job::probe::{HostBaseline, RuntimeAnalyzer};

fn imposter() -> Object {
    Object::Pod(Pod::new(
        ObjectMeta::named("imposter").with_labels(Labels::from_pairs([(
            "app.kubernetes.io/name",
            "thanos-query-frontend",
        )])),
        PodSpec {
            containers: vec![
                Container::new("listener", "attacker/listener").with_ports(vec![
                    ContainerPort::named("http", 9090),
                    ContainerPort::named("grpc", 10902),
                ]),
            ],
            ..Default::default()
        },
    ))
}

fn build_cluster() -> Cluster {
    let mut behaviors = BehaviorRegistry::new();
    for (image, b) in thanos_behaviors() {
        behaviors.register(image, b);
    }
    // The attacker's listener really listens on the impersonated ports.
    behaviors.register(
        "attacker/listener",
        inside_job::cluster::ContainerBehavior::DeclaredPorts,
    );
    Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 99,
        behaviors,
    })
}

fn main() {
    // --- Phase 1: the unguarded cluster -------------------------------
    let mut cluster = build_cluster();
    let baseline = HostBaseline::capture(&cluster);
    let rendered = thanos_chart()
        .render(&Release::new("th", "default"))
        .expect("chart renders");
    cluster.install(&rendered).expect("no admission configured");

    // A user pod that talks to the query-frontend service.
    cluster
        .apply(Object::Pod(Pod::new(
            ObjectMeta::named("grafana"),
            PodSpec {
                containers: vec![Container::new("g", "grafana/grafana")],
                ..Default::default()
            },
        )))
        .expect("apply client");
    cluster.reconcile();

    let before = cluster.send_to_service("default/grafana", "default", "th-query-frontend", 9090);
    println!("service backends before the attack: {before:?}");
    assert_eq!(before.len(), 1, "only the real frontend");

    // The attacker deploys a pod with the colliding label.
    cluster
        .apply(imposter())
        .expect("unguarded cluster accepts it");
    cluster.reconcile();
    let after = cluster.send_to_service("default/grafana", "default", "th-query-frontend", 9090);
    println!("service backends after the attack:  {after:?}");
    assert!(
        after.contains(&"default/imposter".to_string()),
        "the imposter now receives user queries"
    );

    // The analyzer had flagged the root cause all along.
    let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
    let findings = Analyzer::hybrid().analyze_app(
        "thanos",
        &rendered.objects,
        &cluster,
        Some(&runtime),
        false,
    );
    assert!(findings.iter().any(|f| f.id == MisconfigId::M4A));
    assert!(findings.iter().any(|f| f.id == MisconfigId::M4B));
    println!("\nanalyzer findings on the chart itself:");
    for f in findings
        .iter()
        .filter(|f| matches!(f.id, MisconfigId::M4A | MisconfigId::M4B))
    {
        println!("  {f}");
    }

    // --- Phase 2: the guarded cluster ----------------------------------
    let mut guarded = build_cluster();
    guarded.push_admission(Box::new(GuardAdmission::new(GuardPolicy::default())));
    // Note: the chart itself already collides internally, so a strictly
    // guarded cluster refuses the second colliding unit of the chart too.
    let err = guarded
        .install(&rendered)
        .expect_err("guard rejects the collision");
    println!("\nguarded cluster refused the chart: {err}");

    // With unique labels (the paper's mitigation) the application installs
    // fine — and the imposter is refused at admission.
    let fixed = rendered_with_unique_labels();
    let mut guarded = build_cluster();
    guarded.push_admission(Box::new(GuardAdmission::new(GuardPolicy::default())));
    guarded.install(&fixed).expect("fixed chart admitted");
    let denial = guarded.apply(imposter()).expect_err("imposter denied");
    println!("imposter admission denied: {denial}");
}

/// The mitigated chart: each component keeps its own label.
fn rendered_with_unique_labels() -> inside_job::chart::RenderedRelease {
    let chart = inside_job::chart::Chart::builder("thanos-fixed")
        .template(
            "frontend.yaml",
            r#"
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-query-frontend
spec:
  selector:
    matchLabels:
      app.kubernetes.io/name: thanos-query-frontend
  template:
    metadata:
      labels:
        app.kubernetes.io/name: thanos-query-frontend
    spec:
      containers:
        - name: qf
          image: sim/thanos/query-frontend
          ports:
            - name: http
              containerPort: 9090
---
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-query
spec:
  selector:
    matchLabels:
      app.kubernetes.io/name: thanos-query
  template:
    metadata:
      labels:
        app.kubernetes.io/name: thanos-query
    spec:
      containers:
        - name: q
          image: sim/thanos/query
          ports:
            - name: grpc
              containerPort: 10902
---
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-query-frontend
spec:
  selector:
    app.kubernetes.io/name: thanos-query-frontend
  ports:
    - name: http
      port: 9090
      targetPort: http
---
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-query
spec:
  selector:
    app.kubernetes.io/name: thanos-query
  ports:
    - name: grpc
      port: 10902
      targetPort: grpc
"#,
        )
        .build();
    chart
        .render(&Release::new("th", "default"))
        .expect("fixed chart renders")
}
