//! `ij serve` — the continuous-audit engine.
//!
//! Drives one or more simulated tenant clusters through a deterministic
//! churn workload (installs, uninstalls, label flips, policy additions,
//! scale events drawn from the synthetic scenario matrix) while an
//! [`IncrementalAuditor`] watches each cluster and reports finding deltas
//! per mutation. With [`ServeOptions::verify`] every incremental delta is
//! checked against a full-recompute oracle on a second auditor; any
//! divergence aborts the run with a [`ServeError::Divergence`].
//!
//! Memory stays bounded: the cluster's dirty ring is capped
//! ([`DIRTY_LOG_CAP`](ij_cluster::DIRTY_LOG_CAP)), and the auditor's caches
//! are proportional to the number of *installed* releases, not to the
//! number of mutations replayed.

use std::fmt;

use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig};
use ij_datasets::{
    apply_mutation, CensusError, ChurnMutation, ChurnSession, CorpusGenerator, CorpusProfile,
};
use ij_guard::IncrementalAuditor;

/// Configuration for a [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Number of tenant clusters driven round-robin.
    pub clusters: usize,
    /// Total mutations applied across all tenants.
    pub mutations: usize,
    /// Base seed; each tenant derives its own stream from it.
    pub seed: u64,
    /// Scenario profile name (see `CorpusProfile::NAMES`).
    pub profile: String,
    /// Nodes per tenant cluster.
    pub nodes: usize,
    /// Check every incremental delta against the full-recompute oracle.
    pub verify: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            clusters: 2,
            mutations: 100,
            seed: 42,
            profile: "baseline".to_string(),
            nodes: 3,
            verify: false,
        }
    }
}

/// A serve-run failure.
#[derive(Debug)]
pub enum ServeError {
    /// The options name an unknown scenario profile.
    UnknownProfile(String),
    /// The options are degenerate (zero clusters).
    NoClusters,
    /// A churn mutation failed to apply (render or install error).
    Apply {
        /// Tenant index.
        cluster: usize,
        /// The underlying pipeline error.
        source: CensusError,
    },
    /// Under `--verify`: the incremental auditor disagreed with the
    /// full-recompute oracle. This is a bug, never a workload property.
    Divergence {
        /// Tenant index.
        cluster: usize,
        /// 1-based mutation number within the run.
        step: usize,
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownProfile(name) => write!(
                f,
                "unknown profile `{name}`; expected one of: {}",
                CorpusProfile::NAMES.join(", ")
            ),
            ServeError::NoClusters => write!(f, "serve needs at least one cluster"),
            ServeError::Apply { cluster, source } => {
                write!(f, "cluster {cluster}: mutation failed to apply: {source}")
            }
            ServeError::Divergence {
                cluster,
                step,
                detail,
            } => write!(
                f,
                "cluster {cluster}, mutation {step}: incremental audit diverged from the \
                 full-recompute oracle: {detail}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-tenant counters accumulated over the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Mutations applied to this tenant.
    pub mutations: usize,
    /// Per-kind mutation counts, keyed like [`ChurnMutation::kind`].
    pub installs: usize,
    /// Uninstall mutations.
    pub uninstalls: usize,
    /// Label-flip (upgrade) mutations.
    pub label_flips: usize,
    /// Policy-addition mutations.
    pub policy_adds: usize,
    /// Scale mutations.
    pub scales: usize,
    /// Findings introduced across all ticks.
    pub introduced: usize,
    /// Findings resolved across all ticks.
    pub resolved: usize,
    /// Ticks whose delta was quiet (nothing introduced or resolved).
    pub quiet_ticks: usize,
    /// Findings outstanding after the final tick.
    pub open_findings: usize,
    /// Releases installed after the final mutation.
    pub tracked_apps: usize,
}

impl ClusterStats {
    fn record_kind(&mut self, mutation: &ChurnMutation) {
        self.mutations += 1;
        match mutation {
            ChurnMutation::Install { .. } => self.installs += 1,
            ChurnMutation::Uninstall { .. } => self.uninstalls += 1,
            ChurnMutation::LabelFlip { .. } => self.label_flips += 1,
            ChurnMutation::PolicyAdd { .. } => self.policy_adds += 1,
            ChurnMutation::Scale { .. } => self.scales += 1,
        }
    }
}

/// The outcome of a [`serve`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Per-tenant counters, indexed by cluster.
    pub clusters: Vec<ClusterStats>,
    /// Whether every tick was oracle-checked.
    pub verified: bool,
}

impl ServeReport {
    /// Total findings introduced across all tenants.
    pub fn introduced(&self) -> usize {
        self.clusters.iter().map(|c| c.introduced).sum()
    }

    /// Total findings resolved across all tenants.
    pub fn resolved(&self) -> usize {
        self.clusters.iter().map(|c| c.resolved).sum()
    }

    /// Total quiet ticks across all tenants.
    pub fn quiet_ticks(&self) -> usize {
        self.clusters.iter().map(|c| c.quiet_ticks).sum()
    }

    /// Total mutations applied.
    pub fn mutations(&self) -> usize {
        self.clusters.iter().map(|c| c.mutations).sum()
    }

    /// Renders the run summary. The final line is the machine-greppable
    /// contract the CI smoke step asserts on:
    /// `total: N mutation(s), X introduced, Y resolved, Z quiet tick(s)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<9} {:>4} {:>8} {:>9} {:>5} {:>7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5}\n",
            "cluster",
            "muts",
            "installs",
            "uninstall",
            "flips",
            "polices",
            "scales",
            "intro",
            "resolv",
            "quiet",
            "open",
            "apps"
        ));
        for (i, c) in self.clusters.iter().enumerate() {
            out.push_str(&format!(
                "{:<9} {:>4} {:>8} {:>9} {:>5} {:>7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5}\n",
                i,
                c.mutations,
                c.installs,
                c.uninstalls,
                c.label_flips,
                c.policy_adds,
                c.scales,
                c.introduced,
                c.resolved,
                c.quiet_ticks,
                c.open_findings,
                c.tracked_apps
            ));
        }
        if self.verified {
            out.push_str("every tick verified against the full-recompute oracle\n");
        }
        out.push_str(&format!(
            "total: {} mutation(s), {} introduced, {} resolved, {} quiet tick(s)\n",
            self.mutations(),
            self.introduced(),
            self.resolved(),
            self.quiet_ticks()
        ));
        out
    }
}

/// One tenant: a cluster, its churn stream, and its auditor(s).
struct Tenant {
    cluster: Cluster,
    session: ChurnSession,
    auditor: IncrementalAuditor,
    oracle: Option<IncrementalAuditor>,
    stats: ClusterStats,
}

/// One splitmix64 round — decorrelates per-tenant seeds derived from the
/// base seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runs the continuous-audit engine: `options.mutations` churn mutations
/// distributed round-robin over `options.clusters` tenant clusters, each
/// audited incrementally after every mutation. Deterministic: the report is
/// a pure function of the options.
pub fn serve(options: &ServeOptions) -> Result<ServeReport, ServeError> {
    if options.clusters == 0 {
        return Err(ServeError::NoClusters);
    }
    let base = CorpusProfile::named(&options.profile)
        .ok_or_else(|| ServeError::UnknownProfile(options.profile.clone()))?;
    // The app horizon caps concurrent installs per tenant; at one spec per
    // mutation it can never be exceeded.
    let horizon = options.mutations.max(8);
    let mut tenants: Vec<Tenant> = (0..options.clusters)
        .map(|i| {
            let profile = base
                .clone()
                .with_apps(horizon)
                .with_seed(mix(options.seed ^ (i as u64)));
            Tenant {
                cluster: Cluster::new(ClusterConfig {
                    nodes: options.nodes,
                    seed: mix(options.seed.wrapping_add(i as u64)),
                    behaviors: BehaviorRegistry::new(),
                }),
                session: ChurnSession::new(CorpusGenerator::new(profile)),
                auditor: IncrementalAuditor::new(),
                oracle: options.verify.then(IncrementalAuditor::new),
                stats: ClusterStats::default(),
            }
        })
        .collect();

    for step in 0..options.mutations {
        let idx = step % tenants.len();
        let tenant = &mut tenants[idx];
        let mutation = tenant.session.next_mutation();
        // The auditor needs the M6 "defined but disabled" bit before it
        // analyzes a release; the spec carries it.
        match &mutation {
            ChurnMutation::Install { spec } | ChurnMutation::LabelFlip { spec, .. } => {
                tenant
                    .auditor
                    .set_chart_defines_policies(&spec.name, spec.plan.netpol.defines_policy());
                if let Some(oracle) = &mut tenant.oracle {
                    oracle
                        .set_chart_defines_policies(&spec.name, spec.plan.netpol.defines_policy());
                }
            }
            _ => {}
        }
        apply_mutation(&mut tenant.cluster, &mutation).map_err(|source| ServeError::Apply {
            cluster: idx,
            source,
        })?;
        tenant.stats.record_kind(&mutation);

        let delta = tenant.auditor.tick(&tenant.cluster);
        if let Some(oracle) = &mut tenant.oracle {
            let full = oracle.full_tick(&tenant.cluster);
            if tenant.auditor.current() != oracle.current() {
                return Err(ServeError::Divergence {
                    cluster: idx,
                    step: step + 1,
                    detail: format!(
                        "finding sets differ after `{}` of `{}` ({} incremental vs {} full)",
                        mutation.kind(),
                        mutation.app(),
                        tenant.auditor.current().len(),
                        oracle.current().len()
                    ),
                });
            }
            if delta.introduced != full.introduced || delta.resolved != full.resolved {
                return Err(ServeError::Divergence {
                    cluster: idx,
                    step: step + 1,
                    detail: format!(
                        "deltas differ after `{}` of `{}`",
                        mutation.kind(),
                        mutation.app()
                    ),
                });
            }
        }
        tenant.stats.introduced += delta.introduced.len();
        tenant.stats.resolved += delta.resolved.len();
        if delta.is_quiet() {
            tenant.stats.quiet_ticks += 1;
        }
    }

    let clusters = tenants
        .into_iter()
        .map(|mut t| {
            t.stats.open_findings = t.auditor.current().len();
            t.stats.tracked_apps = t.auditor.tracked_apps();
            t.stats
        })
        .collect();
    Ok(ServeReport {
        clusters,
        verified: options.verify,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_is_deterministic() {
        let options = ServeOptions {
            clusters: 2,
            mutations: 40,
            seed: 7,
            ..ServeOptions::default()
        };
        let a = serve(&options).expect("serve run succeeds");
        let b = serve(&options).expect("serve run succeeds");
        assert_eq!(a, b);
        assert_eq!(a.mutations(), 40);
        assert!(a.introduced() > 0, "churn must surface findings");
    }

    #[test]
    fn verified_runs_agree_with_the_oracle() {
        let report = serve(&ServeOptions {
            clusters: 2,
            mutations: 60,
            seed: 11,
            verify: true,
            ..ServeOptions::default()
        })
        .expect("verified serve run stays oracle-equivalent");
        assert!(report.verified);
        let unverified = serve(&ServeOptions {
            clusters: 2,
            mutations: 60,
            seed: 11,
            verify: false,
            ..ServeOptions::default()
        })
        .expect("serve run succeeds");
        // Verification observes; it must not change the audit stream.
        assert_eq!(report.clusters, unverified.clusters);
    }

    #[test]
    fn degenerate_options_are_rejected() {
        assert!(matches!(
            serve(&ServeOptions {
                clusters: 0,
                ..ServeOptions::default()
            }),
            Err(ServeError::NoClusters)
        ));
        assert!(matches!(
            serve(&ServeOptions {
                profile: "nope".to_string(),
                ..ServeOptions::default()
            }),
            Err(ServeError::UnknownProfile(_))
        ));
    }
}
