//! # ij-cluster — a deterministic in-memory Kubernetes cluster
//!
//! The paper's runtime analysis installs each chart into a fresh Minikube
//! cluster and inspects what the containers actually do. This crate provides
//! that substrate without a container runtime: a discrete, single-threaded
//! simulation of the control plane and data plane with exactly the
//! abstractions the analyzer observes.
//!
//! * **API server** — typed object store with a pluggable admission chain
//!   (the hook the `ij-guard` defense attaches to).
//! * **Controller manager** — expands workloads into pods (Deployments,
//!   StatefulSets, DaemonSets, ReplicaSets, Jobs).
//! * **Scheduler + IPAM** — places pods on nodes round-robin and assigns
//!   cluster IPs from a flat `10.244.0.0/16` pod network; hostNetwork pods
//!   take their node's IP.
//! * **Container runtime behaviour models** — each image resolves to a
//!   [`ContainerBehavior`] describing which sockets it *really* opens:
//!   declared ports, undeclared extras, ephemeral ports re-drawn on every
//!   start, loopback-only listeners, env-conditional listeners.
//! * **Endpoints controller + kube-proxy** — computes service endpoints by
//!   label selection (including named target-port resolution) and routes
//!   service traffic to backends.
//! * **CNI / NetworkPolicy engine** — default-allow flat network; additive
//!   allow-list policies; hostNetwork bypass — exactly the semantics that
//!   make M6/M7 dangerous.
//! * **Compiled policy index** — [`Cluster::policy_index`] caches a
//!   [`PolicyIndex`] (interned selectors, per-policy matched-pod bitsets,
//!   per-rule peer bitsets) behind a generation counter, so the probe hot
//!   path evaluates policies with integer ops; the naive [`PolicyEngine`]
//!   remains the property-tested oracle.
//! * **Dirty-set tracking** — every mutation records which release it
//!   touched in a bounded ring; [`Cluster::dirty_since`] summarizes the
//!   changes after an audit cursor so incremental consumers re-analyze only
//!   dirtied applications (and fall back to a full recompute when the ring
//!   overflows).
//!
//! Everything is reproducible from a single seed: ephemeral port draws are
//! the only randomness.

pub mod admission;
pub mod behavior;
pub mod cluster;
pub mod dirty;
pub mod index;
pub mod netpol;
pub mod node;

pub use admission::{AdmissionController, AdmissionOutcome, AdmissionReview};
pub use behavior::{BehaviorRegistry, ContainerBehavior, ListenerSpec, PortSpec};
pub use cluster::{
    Cluster, ClusterConfig, ConnectOutcome, InstallError, OpenSocket, RunningPod, WatchEvent,
    RELEASE_ANNOTATION,
};
pub use dirty::{DirtyEntry, DirtyScope, DirtySummary, DIRTY_LOG_CAP};
pub use index::{PodSet, PolicyIndex};
pub use netpol::{ConnectionVerdict, PolicyEngine};
pub use node::Node;
