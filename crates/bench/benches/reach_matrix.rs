//! Naive vs indexed reachability census, at three cluster sizes.
//!
//! "Naive" is the seed behaviour: every probe rebuilds a [`PolicyEngine`]
//! from the object store and re-matches every selector (what
//! `Cluster::connect` did before the compiled index). "Indexed" is one
//! [`ReachMatrix`] pass over the cluster's cached
//! [`PolicyIndex`](ij_cluster::PolicyIndex). Both count the same reachable
//! (src, dst, socket) triples — asserted at setup — so the timings are an
//! apples-to-apples measure of the compiled-index speedup recorded in
//! `BENCH_reach.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ij_cluster::{Cluster, ClusterConfig, PolicyEngine};
use ij_model::{
    Container, ContainerPort, LabelSelector, Labels, NetworkPolicy, NetworkPolicyPeer, Object,
    ObjectMeta, Pod, PodSpec, PolicyPort,
};
use ij_probe::ReachMatrix;
use std::hint::black_box;

/// Builds a cluster of `apps` three-tier applications (web, api, db pod
/// each) locked down by per-tier NetworkPolicies, plus one hostNetwork
/// exporter per app — the §4.3.2 shape at a controllable size.
fn tiered_cluster(apps: usize) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 17,
        behaviors: Default::default(),
    });
    for a in 0..apps {
        for (tier, port) in [("web", 8080u16), ("api", 9090), ("db", 5432)] {
            let labels = Labels::from_pairs([("app", format!("a{a}")), ("tier", tier.to_string())]);
            cluster
                .apply(Object::Pod(Pod::new(
                    ObjectMeta::named(format!("a{a}-{tier}")).with_labels(labels),
                    PodSpec {
                        containers: vec![Container::new(tier, format!("img/{tier}"))
                            .with_ports(vec![ContainerPort::named("main", port)])],
                        ..Default::default()
                    },
                )))
                .expect("pod applies");
        }
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named(format!("a{a}-exporter"))
                    .with_labels(Labels::from_pairs([("app", format!("a{a}"))])),
                PodSpec {
                    containers: vec![Container::new("exp", "img/exporter")
                        .with_ports(vec![ContainerPort::tcp(9100)])],
                    host_network: true,
                    node_name: None,
                },
            )))
            .expect("exporter applies");
        // api may talk to db; web may talk to api; everything else is cut.
        for (tier, from, port) in [("db", "api", 5432u16), ("api", "web", 9090)] {
            cluster
                .apply(Object::NetworkPolicy(NetworkPolicy::allow_ingress(
                    ObjectMeta::named(format!("a{a}-lock-{tier}")),
                    LabelSelector::from_labels(Labels::from_pairs([
                        ("app", format!("a{a}")),
                        ("tier", tier.to_string()),
                    ])),
                    vec![NetworkPolicyPeer::pods(LabelSelector::from_labels(
                        Labels::from_pairs([("app", format!("a{a}")), ("tier", from.to_string())]),
                    ))],
                    vec![PolicyPort::tcp(port)],
                )))
                .expect("policy applies");
        }
    }
    cluster.reconcile();
    cluster
}

/// The seed-shaped census: rebuild the engine for every single probe.
fn naive_census(cluster: &Cluster) -> usize {
    let policies: Vec<NetworkPolicy> = cluster.network_policies().into_iter().cloned().collect();
    let mut reachable = 0usize;
    for src in cluster.pods() {
        for dst in cluster.pods() {
            if src.qualified_name() == dst.qualified_name() {
                continue;
            }
            for socket in &dst.sockets {
                if socket.loopback_only {
                    continue;
                }
                let engine = PolicyEngine::new(&policies, cluster.namespace_labels());
                if engine
                    .verdict(src, dst, socket.port, socket.protocol)
                    .is_allowed()
                {
                    reachable += 1;
                }
            }
        }
    }
    reachable
}

/// The indexed census: one matrix pass, then bit probes.
fn indexed_census(cluster: &Cluster) -> usize {
    let matrix = ReachMatrix::compute(cluster);
    let mut reachable = 0usize;
    for dst in 0..matrix.pod_count() {
        for k in 0..matrix.sockets(dst).len() {
            let column = matrix.allowed_sources(dst, k);
            reachable += column.count() - usize::from(column.contains(dst));
        }
    }
    reachable
}

fn bench_reach_matrix(c: &mut Criterion) {
    for (label, apps) in [("small", 3usize), ("medium", 12), ("large", 48)] {
        let cluster = tiered_cluster(apps);
        assert_eq!(
            naive_census(&cluster),
            indexed_census(&cluster),
            "naive and indexed censuses must count the same triples ({label})"
        );
        c.bench_function(&format!("reach_census_naive_{label}"), |b| {
            b.iter(|| black_box(naive_census(&cluster)))
        });
        c.bench_function(&format!("reach_census_indexed_{label}"), |b| {
            b.iter(|| {
                // A fresh matrix per iteration: the generation is unchanged,
                // so this times allowed_sources over the cached index — the
                // steady-state census path.
                black_box(indexed_census(&cluster))
            })
        });
    }
}

criterion_group!(reach, bench_reach_matrix);
criterion_main!(reach);
