//! Representative charts for the tool comparison (§4.4.2): one minimal case
//! per misconfiguration class, exhibiting that class and nothing else.

use crate::spec::{AppSpec, NetpolSpec, Org, Plan};
use ij_core::MisconfigId;

/// One comparison case: the class under test and the chart(s) that exhibit
/// it. M4\* needs two applications (the collision is cross-application);
/// every other case is a single chart.
#[derive(Debug, Clone)]
pub struct RepresentativeCase {
    /// The misconfiguration class the case exercises.
    pub id: MisconfigId,
    /// The chart specifications to install.
    pub apps: Vec<AppSpec>,
}

/// Builds the thirteen representative cases.
pub fn representative_charts() -> Vec<RepresentativeCase> {
    // A tight enabled policy suppresses M6 so each case stays pure.
    let quiet = NetpolSpec::Enabled { loose: false };
    let case = |id: MisconfigId, plan: Plan| RepresentativeCase {
        id,
        apps: vec![AppSpec::new(
            format!("rep-{}", id.as_str().to_lowercase().replace('*', "star")),
            Org::Cncf,
            "1.0.0",
            plan,
        )],
    };
    vec![
        case(
            MisconfigId::M1,
            Plan {
                m1: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(
            MisconfigId::M2,
            Plan {
                m2: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(
            MisconfigId::M3,
            Plan {
                m3: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(
            MisconfigId::M4A,
            Plan {
                m4a: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(
            MisconfigId::M4B,
            Plan {
                m4b: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(
            MisconfigId::M4C,
            Plan {
                m4c: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        RepresentativeCase {
            id: MisconfigId::M4Star,
            apps: vec![
                AppSpec::new(
                    "rep-m4star-a",
                    Org::Cncf,
                    "1.0.0",
                    Plan {
                        netpol: quiet,
                        m4star_tokens: vec!["rep-shared"],
                        ..Default::default()
                    },
                ),
                AppSpec::new(
                    "rep-m4star-b",
                    Org::Cncf,
                    "1.0.0",
                    Plan {
                        netpol: quiet,
                        m4star_tokens: vec!["rep-shared"],
                        ..Default::default()
                    },
                ),
            ],
        },
        case(
            MisconfigId::M5A,
            Plan {
                m5a: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(
            MisconfigId::M5B,
            Plan {
                m5b: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(
            MisconfigId::M5C,
            Plan {
                m5c: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(
            MisconfigId::M5D,
            Plan {
                m5d: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
        case(MisconfigId::M6, Plan::default()),
        case(
            MisconfigId::M7,
            Plan {
                m7: 1,
                netpol: quiet,
                ..Default::default()
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_app;
    use crate::runner::{analyze_one, run_census, CorpusOptions};

    #[test]
    fn thirteen_cases_one_per_class() {
        let cases = representative_charts();
        assert_eq!(cases.len(), 13);
        let ids: Vec<MisconfigId> = cases.iter().map(|c| c.id).collect();
        assert_eq!(ids, MisconfigId::ALL.to_vec());
    }

    #[test]
    fn each_case_exhibits_exactly_its_class() {
        for rep_case in representative_charts() {
            if rep_case.id == MisconfigId::M4Star {
                // Needs the cluster-wide pass over both apps.
                let census = run_census(&rep_case.apps, &CorpusOptions::default())
                    .expect("representative charts run");
                assert_eq!(census.total_misconfigurations(), 1);
                let finding = census
                    .apps
                    .iter()
                    .flat_map(|a| a.findings.iter())
                    .next()
                    .expect("one finding");
                assert_eq!(finding.id, MisconfigId::M4Star);
                continue;
            }
            let built = build_app(&rep_case.apps[0]);
            let analysis =
                analyze_one(&built, &CorpusOptions::default()).expect("corpus app analyzes");
            assert_eq!(
                analysis.findings.len(),
                1,
                "case {}: {:#?}",
                rep_case.id,
                analysis.findings
            );
            assert_eq!(analysis.findings[0].id, rep_case.id, "case {}", rep_case.id);
        }
    }
}
