//! Misconfiguration injectors: per-rule rates turned into concrete plans.
//!
//! A [`MisconfigMix`] holds one rate per Table-1 rule. For the counted
//! rules (M1–M5, M7) the rate is the *expected number of injections per
//! application*: `1.3` means "one guaranteed plus a 30% chance of a
//! second". M6 is the probability that the chart's NetworkPolicy posture
//! is degraded (missing or defined-but-disabled), and M4\* the probability
//! that the application joins one of the shared cross-application collision
//! token groups.
//!
//! Rates compose with the per-archetype propensity
//! [`scale`](crate::Archetype::scale), so one mix drives differently
//! shaped populations.

use ij_core::MisconfigId;
use rand::{rngs::StdRng, Rng};

use super::archetypes::Archetype;
use crate::spec::{NetpolSpec, Plan};

/// The fixed pool of cross-application collision tokens. Generated
/// applications that draw an M4\* injection pick one of these, so apps
/// sharing a token collide cluster-wide exactly like the hand-written
/// corpus pairs do. The pool is closed (ground truth counts token groups
/// with at least two members).
pub(crate) const SHARED_TOKENS: [&str; 16] = [
    "syn-ring-00",
    "syn-ring-01",
    "syn-ring-02",
    "syn-ring-03",
    "syn-ring-04",
    "syn-ring-05",
    "syn-ring-06",
    "syn-ring-07",
    "syn-ring-08",
    "syn-ring-09",
    "syn-ring-10",
    "syn-ring-11",
    "syn-ring-12",
    "syn-ring-13",
    "syn-ring-14",
    "syn-ring-15",
];

/// Hard cap on any single injected count, keeping generated charts bounded
/// (and every injector inside its reserved port range).
const MAX_PER_RULE: usize = 12;

/// A malformed mix specification (unknown rule name or unparsable rate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixError {
    /// What was wrong, suitable for CLI display.
    pub message: String,
}

impl std::fmt::Display for MixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for MixError {}

/// Per-rule injection rates for the corpus generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MisconfigMix {
    /// Expected undeclared-open ports per app.
    pub m1: f64,
    /// Expected ephemeral-listener workers per app.
    pub m2: f64,
    /// Expected declared-never-open ports per app.
    pub m3: f64,
    /// Expected identical-label pairs per app.
    pub m4a: f64,
    /// Expected double-serviced components per app.
    pub m4b: f64,
    /// Expected shared-subset service groups per app.
    pub m4c: f64,
    /// Probability of joining a cross-application collision token group.
    pub m4star: f64,
    /// Expected declared-but-closed service targets per app.
    pub m5a: f64,
    /// Expected undeclared service targets per app.
    pub m5b: f64,
    /// Expected dangling headless targets per app.
    pub m5c: f64,
    /// Expected selector-matches-nothing services per app.
    pub m5d: f64,
    /// Probability of a degraded NetworkPolicy posture (yields M6).
    pub m6: f64,
    /// Expected hostNetwork DaemonSet components per app.
    pub m7: f64,
}

impl Default for MisconfigMix {
    fn default() -> Self {
        MisconfigMix::baseline()
    }
}

impl MisconfigMix {
    /// Rates calibrated to the per-application averages of the paper's
    /// Table 2 (≈ 2.2 findings per application, M6 on ~83% of charts).
    pub fn baseline() -> Self {
        MisconfigMix {
            m1: 0.65,
            m2: 0.12,
            m3: 0.23,
            m4a: 0.12,
            m4b: 0.055,
            m4c: 0.01,
            m4star: 0.017,
            m5a: 0.04,
            m5b: 0.072,
            m5c: 0.01,
            m5d: 0.005,
            m6: 0.83,
            m7: 0.04,
        }
    }

    /// No injections at all: every generated chart is clean (and ships an
    /// enabled policy, since the M6 probability is zero).
    pub fn clean() -> Self {
        MisconfigMix {
            m1: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4a: 0.0,
            m4b: 0.0,
            m4c: 0.0,
            m4star: 0.0,
            m5a: 0.0,
            m5b: 0.0,
            m5c: 0.0,
            m5d: 0.0,
            m6: 0.0,
            m7: 0.0,
        }
    }

    /// Every rate multiplied by `factor` (probabilities are clamped to
    /// `[0, 1]` at sampling time). A cheap way to derive a quieter or
    /// noisier variant of an existing mix.
    pub fn scaled(mut self, factor: f64) -> Self {
        for slot in [
            &mut self.m1,
            &mut self.m2,
            &mut self.m3,
            &mut self.m4a,
            &mut self.m4b,
            &mut self.m4c,
            &mut self.m4star,
            &mut self.m5a,
            &mut self.m5b,
            &mut self.m5c,
            &mut self.m5d,
            &mut self.m6,
            &mut self.m7,
        ] {
            *slot = (*slot * factor).max(0.0);
        }
        self
    }

    /// Sets one rule's rate by its lowercase name (`m1`…`m7`, `m4a`,
    /// `m4star`, …). Rates must be finite and non-negative.
    pub fn set(&mut self, rule: &str, rate: f64) -> Result<(), MixError> {
        if !rate.is_finite() || rate < 0.0 {
            return Err(MixError {
                message: format!("rate for `{rule}` must be a non-negative number, got `{rate}`"),
            });
        }
        let slot = match rule {
            "m1" => &mut self.m1,
            "m2" => &mut self.m2,
            "m3" => &mut self.m3,
            "m4a" => &mut self.m4a,
            "m4b" => &mut self.m4b,
            "m4c" => &mut self.m4c,
            "m4star" | "m4*" => &mut self.m4star,
            "m5a" => &mut self.m5a,
            "m5b" => &mut self.m5b,
            "m5c" => &mut self.m5c,
            "m5d" => &mut self.m5d,
            "m6" => &mut self.m6,
            "m7" => &mut self.m7,
            other => {
                return Err(MixError {
                    message: format!(
                        "unknown rule `{other}`; expected one of m1, m2, m3, m4a, m4b, m4c, \
                         m4star, m5a, m5b, m5c, m5d, m6, m7"
                    ),
                })
            }
        };
        *slot = rate;
        Ok(())
    }

    /// The rate for one rule.
    pub fn rate(&self, id: MisconfigId) -> f64 {
        use MisconfigId::*;
        match id {
            M1 => self.m1,
            M2 => self.m2,
            M3 => self.m3,
            M4A => self.m4a,
            M4B => self.m4b,
            M4C => self.m4c,
            M4Star => self.m4star,
            M5A => self.m5a,
            M5B => self.m5b,
            M5C => self.m5c,
            M5D => self.m5d,
            M6 => self.m6,
            M7 => self.m7,
        }
    }

    /// Applies a comma-separated `rule=rate` override list (the CLI's
    /// `--mix m1=0.2,m7=0.05` syntax) on top of the current rates.
    pub fn apply_overrides(&mut self, spec: &str) -> Result<(), MixError> {
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let Some((rule, rate)) = entry.split_once('=') else {
                return Err(MixError {
                    message: format!("expected `rule=rate`, got `{entry}`"),
                });
            };
            let rate: f64 = rate.trim().parse().map_err(|_| MixError {
                message: format!("invalid rate `{}` for rule `{}`", rate.trim(), rule.trim()),
            })?;
            self.set(rule.trim(), rate)?;
        }
        Ok(())
    }

    /// [`baseline`](Self::baseline) with an override list applied.
    pub fn parse(spec: &str) -> Result<Self, MixError> {
        let mut mix = MisconfigMix::baseline();
        mix.apply_overrides(spec)?;
        Ok(mix)
    }

    /// Samples this mix (scaled by the archetype's propensities) into a
    /// plan: counted rules become injection counts, M6 becomes the policy
    /// posture, M4\* becomes a shared-token membership draw.
    pub(crate) fn sample_into(&self, plan: &mut Plan, archetype: Archetype, rng: &mut StdRng) {
        use MisconfigId::*;
        let count = |rng: &mut StdRng, id: MisconfigId| {
            sample_count(self.rate(id) * archetype.scale(id), rng)
        };
        plan.m1 = count(rng, M1);
        plan.m2 = count(rng, M2);
        plan.m3 = count(rng, M3);
        plan.m4a = count(rng, M4A);
        plan.m4b = count(rng, M4B);
        plan.m4c = count(rng, M4C);
        plan.m5a = count(rng, M5A);
        plan.m5b = count(rng, M5B);
        plan.m5c = count(rng, M5C);
        plan.m5d = count(rng, M5D);
        plan.m7 = count(rng, M7);

        let degraded = rng.gen_bool((self.m6 * archetype.scale(M6)).clamp(0.0, 1.0));
        let loose = rng.gen_bool(archetype.loose_bias());
        plan.netpol = if degraded {
            if rng.gen_bool(0.5) {
                NetpolSpec::Missing
            } else {
                NetpolSpec::DefinedDisabled { loose }
            }
        } else {
            NetpolSpec::Enabled { loose }
        };

        if rng.gen_bool((self.m4star * archetype.scale(M4Star)).clamp(0.0, 1.0)) {
            plan.m4star_tokens
                .push(SHARED_TOKENS[rng.gen_range(0..SHARED_TOKENS.len())]);
        }
    }
}

/// Turns a non-negative rate into a count: the integer part is guaranteed,
/// the fractional part is one Bernoulli draw. Capped at [`MAX_PER_RULE`].
fn sample_count(rate: f64, rng: &mut StdRng) -> usize {
    let rate = rate.max(0.0);
    let whole = rate.floor();
    let extra = usize::from(rng.gen_bool(rate - whole));
    (whole as usize + extra).min(MAX_PER_RULE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parse_overrides_known_rules() {
        let mix = MisconfigMix::parse("m1=0.2, m7=0.05,m4star=0.5").expect("valid mix");
        assert_eq!(mix.m1, 0.2);
        assert_eq!(mix.m7, 0.05);
        assert_eq!(mix.m4star, 0.5);
        // Untouched entries keep the baseline.
        assert_eq!(mix.m2, MisconfigMix::baseline().m2);
    }

    #[test]
    fn parse_rejects_unknown_rule_and_bad_rate() {
        assert!(MisconfigMix::parse("m9=1.0").is_err());
        assert!(MisconfigMix::parse("m1=lots").is_err());
        assert!(MisconfigMix::parse("m1").is_err());
        assert!(MisconfigMix::parse("m1=-0.5").is_err());
    }

    #[test]
    fn empty_override_list_is_baseline() {
        assert_eq!(
            MisconfigMix::parse("").expect("empty"),
            MisconfigMix::baseline()
        );
    }

    #[test]
    fn sample_count_brackets_the_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..64 {
            let c = sample_count(1.4, &mut rng);
            assert!(c == 1 || c == 2, "{c}");
        }
        assert_eq!(sample_count(0.0, &mut rng), 0);
        assert_eq!(sample_count(99.0, &mut rng), MAX_PER_RULE);
    }

    #[test]
    fn clean_mix_yields_clean_enabled_plans() {
        let mut rng = StdRng::seed_from_u64(11);
        for archetype in Archetype::ALL {
            let mut plan = Plan::default();
            MisconfigMix::clean().sample_into(&mut plan, archetype, &mut rng);
            assert_eq!(plan.expected_local_findings(), 0, "{archetype}");
            assert!(plan.m4star_tokens.is_empty());
            assert!(plan.netpol.enabled_by_default());
        }
    }
}
