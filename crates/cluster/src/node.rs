//! Cluster nodes and their host network namespaces.

use ij_model::Protocol;

/// A worker node.
///
/// The host network namespace matters for M7: a `hostNetwork: true` pod's
/// sockets appear here, mixed in with the node's own daemons — which is why
/// the paper's runtime analysis needs a host-port baseline to subtract
/// (§4.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Node name (`node-0`, `node-1`, …).
    pub name: String,
    /// Node IP on the data-center network.
    pub ip: String,
    /// Ports the node's own system daemons hold open (kubelet, containerd
    /// metrics, sshd, …). Present before any pod is scheduled.
    pub baseline_ports: Vec<(u16, Protocol)>,
}

impl Node {
    /// Creates a node with the standard daemon baseline.
    pub fn new(index: usize) -> Self {
        Node {
            name: format!("node-{index}"),
            ip: format!("192.168.49.{}", index + 2),
            baseline_ports: vec![
                (22, Protocol::Tcp),    // sshd
                (10250, Protocol::Tcp), // kubelet API
                (10256, Protocol::Tcp), // kube-proxy health
                (9099, Protocol::Tcp),  // CNI health endpoint
                (53, Protocol::Udp),    // node-local DNS cache
            ],
        }
    }

    /// True when the node's own daemons hold this port.
    pub fn baseline_holds(&self, port: u16, protocol: Protocol) -> bool {
        self.baseline_ports
            .iter()
            .any(|&(p, pr)| p == port && pr == protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_get_distinct_ips() {
        let a = Node::new(0);
        let b = Node::new(1);
        assert_ne!(a.ip, b.ip);
        assert_eq!(a.name, "node-0");
    }

    #[test]
    fn baseline_contains_kubelet() {
        let n = Node::new(0);
        assert!(n.baseline_holds(10250, Protocol::Tcp));
        assert!(!n.baseline_holds(10250, Protocol::Udp));
        assert!(!n.baseline_holds(8080, Protocol::Tcp));
    }
}
