//! Property tests for the NetworkPolicy engine's core semantics, and for
//! the compiled policy index agreeing with the naive engine verdict on
//! random clusters (the oracle relationship the reach-matrix refactor
//! rests on).

use ij_cluster::{Cluster, ClusterConfig, PolicyEngine, RunningPod};
use ij_model::{
    Container, ContainerPort, IpBlock, LabelSelector, Labels, NetworkPolicy, NetworkPolicyPeer,
    NetworkPolicyRule, NetworkPolicySpec, Object, ObjectMeta, Pod, PodSpec, PolicyPort,
    PolicyPortRef, PolicyType, Protocol,
};
use proptest::prelude::*;

fn arb_labels() -> impl Strategy<Value = Labels> {
    prop::collection::btree_map("[ab]", "[xy]", 1..3).prop_map(Labels)
}

/// `Option`-wrapping combinator (the vendored proptest has no
/// `prop::option::of`).
fn arb_opt<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), inner).prop_map(|(on, value)| on.then_some(value))
}

fn arb_peer() -> impl Strategy<Value = NetworkPolicyPeer> {
    let ip_block = (
        prop::sample::select(vec![
            "10.244.0.0/16".to_string(),
            "10.244.0.0/28".to_string(),
            "0.0.0.0/0".to_string(),
            "192.168.49.0/24".to_string(),
            "not-a-cidr".to_string(),
        ]),
        prop::collection::vec(
            prop::sample::select(vec![
                "10.244.0.1/32".to_string(),
                "10.244.0.0/30".to_string(),
                "bogus".to_string(),
            ]),
            0..2,
        ),
    )
        .prop_map(|(cidr, except)| IpBlock { cidr, except });
    (
        arb_opt(arb_labels().prop_map(LabelSelector::from_labels)),
        arb_opt(
            prop::sample::select(vec![
                Labels::from_pairs([("team", "sre")]),
                Labels::from_pairs([("team", "dev")]),
                Labels::from_pairs([("kubernetes.io/metadata.name", "default")]),
                Labels::from_pairs([("kubernetes.io/metadata.name", "prod")]),
                Labels::new(),
            ])
            .prop_map(LabelSelector::from_labels),
        ),
        arb_opt(ip_block),
    )
        .prop_map(
            |(pod_selector, namespace_selector, ip_block)| NetworkPolicyPeer {
                pod_selector,
                namespace_selector,
                ip_block,
            },
        )
}

fn arb_policy_port() -> impl Strategy<Value = PolicyPort> {
    prop_oneof![
        Just(PolicyPort::tcp(8080)),
        Just(PolicyPort::tcp(9999)),
        Just(PolicyPort::tcp_range(32768, 60999)),
        Just(PolicyPort {
            protocol: Protocol::Udp,
            port: Some(PolicyPortRef::Number(8080)),
            end_port: None,
        }),
        Just(PolicyPort {
            protocol: Protocol::Tcp,
            port: Some(PolicyPortRef::Name("http".into())),
            end_port: None,
        }),
        Just(PolicyPort {
            protocol: Protocol::Tcp,
            port: None,
            end_port: None,
        }),
    ]
}

fn arb_rule() -> impl Strategy<Value = NetworkPolicyRule> {
    (
        prop::collection::vec(arb_peer(), 0..3),
        prop::collection::vec(arb_policy_port(), 0..3),
    )
        .prop_map(|(peers, ports)| NetworkPolicyRule { peers, ports })
}

fn arb_policy() -> impl Strategy<Value = NetworkPolicy> {
    (
        prop::sample::select(vec!["default".to_string(), "prod".to_string()]),
        arb_labels(),
        any::<bool>(),
        (any::<bool>(), any::<bool>()),
        prop::collection::vec(arb_rule(), 0..3),
        prop::collection::vec(arb_rule(), 0..3),
    )
        .prop_map(
            |(ns, selector, select_all, (ingress_ty, egress_ty), ingress, egress)| {
                let mut policy_types = Vec::new();
                if ingress_ty {
                    policy_types.push(PolicyType::Ingress);
                }
                if egress_ty {
                    policy_types.push(PolicyType::Egress);
                }
                NetworkPolicy {
                    meta: ObjectMeta::named("np").in_namespace(ns),
                    spec: NetworkPolicySpec {
                        pod_selector: if select_all {
                            LabelSelector::everything()
                        } else {
                            LabelSelector::from_labels(selector)
                        },
                        policy_types,
                        ingress,
                        egress,
                    },
                }
            },
        )
}

/// A cluster with pods across two namespaces (one carrying declared labels)
/// and the given policies applied; the pods declare a named port so named
/// policy ports resolve.
fn arb_cluster_pods() -> impl Strategy<Value = Vec<(String, Labels, bool, String)>> {
    prop::collection::vec(
        (
            arb_labels(),
            any::<bool>(),
            prop::sample::select(vec!["default".to_string(), "prod".to_string()]),
        ),
        2..6,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (labels, host, ns))| (format!("p{i}"), labels, host, ns))
            .collect()
    })
}

fn build_cluster(pods: &[(String, Labels, bool, String)], policies: &[NetworkPolicy]) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        seed: 1,
        behaviors: Default::default(),
    });
    cluster
        .apply(Object::Namespace(
            ObjectMeta::named("prod").with_labels(Labels::from_pairs([("team", "sre")])),
        ))
        .expect("namespace applies");
    for (name, labels, host, ns) in pods {
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named(name.clone())
                    .in_namespace(ns.clone())
                    .with_labels(labels.clone()),
                PodSpec {
                    containers: vec![Container::new("c", "img")
                        .with_ports(vec![ContainerPort::named("http", 8080)])],
                    host_network: *host,
                    node_name: None,
                },
            )))
            .expect("apply pod");
    }
    cluster.reconcile();
    for np in policies {
        cluster
            .apply(Object::NetworkPolicy(np.clone()))
            .expect("apply policy");
    }
    cluster
}

/// Builds running pods through the real cluster machinery so IPs and nodes
/// are realistic.
fn running_pods(specs: Vec<(String, Labels, bool)>) -> Vec<RunningPod> {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        seed: 1,
        behaviors: Default::default(),
    });
    for (name, labels, host_network) in specs {
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named(name).with_labels(labels),
                PodSpec {
                    containers: vec![
                        Container::new("c", "img").with_ports(vec![ContainerPort::tcp(8080)])
                    ],
                    host_network,
                    node_name: None,
                },
            )))
            .expect("apply");
    }
    cluster.reconcile();
    cluster.pods().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With no policies, every pod-to-pod connection is allowed.
    #[test]
    fn default_allow_is_total(
        labels in prop::collection::vec(arb_labels(), 2..5),
        port in 1u16..=65535,
    ) {
        let pods = running_pods(
            labels
                .into_iter()
                .enumerate()
                .map(|(i, l)| (format!("p{i}"), l, false))
                .collect(),
        );
        let engine = PolicyEngine::new(&[], []);
        for src in &pods {
            for dst in &pods {
                prop_assert!(engine.verdict(src, dst, port, Protocol::Tcp).is_allowed());
            }
        }
    }

    /// A deny-all-ingress policy blocks every non-hostNetwork destination,
    /// and hostNetwork destinations bypass it regardless of labels.
    #[test]
    fn deny_all_blocks_exactly_pod_network_destinations(
        labels in prop::collection::vec(arb_labels(), 2..5),
        host_flags in prop::collection::vec(any::<bool>(), 2..5),
    ) {
        let n = labels.len().min(host_flags.len());
        let pods = running_pods(
            labels
                .into_iter()
                .take(n)
                .zip(host_flags.into_iter().take(n))
                .enumerate()
                .map(|(i, (l, h))| (format!("p{i}"), l, h))
                .collect(),
        );
        let deny = [NetworkPolicy::deny_all_ingress(
            ObjectMeta::named("deny"),
            LabelSelector::everything(),
        )];
        let engine = PolicyEngine::new(&deny, []);
        for src in &pods {
            for dst in &pods {
                let verdict = engine.verdict(src, dst, 8080, Protocol::Tcp);
                prop_assert_eq!(
                    verdict.is_allowed(),
                    dst.pod.spec.host_network,
                    "src={} dst={} host={}",
                    src.qualified_name(),
                    dst.qualified_name(),
                    dst.pod.spec.host_network
                );
            }
        }
    }

    /// Policies are additive allow-lists: adding an allow policy on top of a
    /// deny-all never shrinks the allowed set.
    #[test]
    fn allow_rules_are_monotonic(
        src_labels in arb_labels(),
        dst_labels in arb_labels(),
        peer_sel in arb_labels(),
        port in prop::sample::select(vec![8080u16, 9090]),
    ) {
        let pods = running_pods(vec![
            ("src".to_string(), src_labels, false),
            ("dst".to_string(), dst_labels, false),
        ]);
        let (src, dst) = (&pods[0], &pods[1]);

        let base = vec![NetworkPolicy::deny_all_ingress(
            ObjectMeta::named("deny"),
            LabelSelector::everything(),
        )];
        let mut extended = base.clone();
        extended.push(NetworkPolicy::allow_ingress(
            ObjectMeta::named("allow"),
            LabelSelector::everything(),
            vec![NetworkPolicyPeer::pods(LabelSelector::from_labels(peer_sel))],
            vec![PolicyPort::tcp(port)],
        ));

        let base_engine = PolicyEngine::new(&base, []);
        let ext_engine = PolicyEngine::new(&extended, []);
        for probe in [8080u16, 9090] {
            let before = base_engine.verdict(src, dst, probe, Protocol::Tcp).is_allowed();
            let after = ext_engine.verdict(src, dst, probe, Protocol::Tcp).is_allowed();
            prop_assert!(
                !before || after,
                "adding an allow policy removed {probe} (before={before}, after={after})"
            );
        }
    }

    /// The engine is a pure function: same inputs, same verdicts.
    #[test]
    fn verdicts_are_deterministic(
        src_labels in arb_labels(),
        dst_labels in arb_labels(),
        sel in arb_labels(),
    ) {
        let pods = running_pods(vec![
            ("src".to_string(), src_labels, false),
            ("dst".to_string(), dst_labels, false),
        ]);
        let policies = [NetworkPolicy::allow_ingress(
            ObjectMeta::named("p"),
            LabelSelector::from_labels(sel),
            vec![],
            vec![PolicyPort::tcp(8080)],
        )];
        let engine = PolicyEngine::new(&policies, []);
        let a = engine.verdict(&pods[0], &pods[1], 8080, Protocol::Tcp);
        let b = engine.verdict(&pods[0], &pods[1], 8080, Protocol::Tcp);
        prop_assert_eq!(a, b);
    }

    /// The compiled index returns the *same* [`ConnectionVerdict`] —
    /// including the allow reason — as the naive engine, for every ordered
    /// pod pair, port, and protocol, on clusters with random labels,
    /// namespaces, hostNetwork pods, and random multi-rule policies.
    #[test]
    fn index_verdicts_equal_naive_engine(
        pods in arb_cluster_pods(),
        policies in prop::collection::vec(arb_policy(), 0..4),
    ) {
        let policies: Vec<NetworkPolicy> = policies
            .into_iter()
            .enumerate()
            .map(|(i, mut np)| {
                np.meta.name = format!("np-{i}");
                np
            })
            .collect();
        let cluster = build_cluster(&pods, &policies);
        let engine = PolicyEngine::new(&policies, cluster.namespace_labels());
        let index = cluster.policy_index();
        for src in cluster.pods() {
            let si = index.pod_index(&src.qualified_name()).expect("src indexed");
            for dst in cluster.pods() {
                let di = index.pod_index(&dst.qualified_name()).expect("dst indexed");
                for port in [8080u16, 9999, 40000] {
                    for protocol in [Protocol::Tcp, Protocol::Udp] {
                        prop_assert_eq!(
                            index.verdict(si, di, port, protocol),
                            engine.verdict(src, dst, port, protocol),
                            "{} -> {} :{}/{:?}",
                            src.qualified_name(),
                            dst.qualified_name(),
                            port,
                            protocol
                        );
                    }
                }
            }
        }
    }

    /// The batch column ([`PolicyIndex::allowed_sources`]) is exactly the
    /// per-pair verdicts stacked up.
    #[test]
    fn batch_columns_equal_per_pair_verdicts(
        pods in arb_cluster_pods(),
        policies in prop::collection::vec(arb_policy(), 0..4),
    ) {
        let policies: Vec<NetworkPolicy> = policies
            .into_iter()
            .enumerate()
            .map(|(i, mut np)| {
                np.meta.name = format!("np-{i}");
                np
            })
            .collect();
        let cluster = build_cluster(&pods, &policies);
        let index = cluster.policy_index();
        for dst in 0..index.pod_count() {
            for port in [8080u16, 40000] {
                for protocol in [Protocol::Tcp, Protocol::Udp] {
                    let column = index.allowed_sources(dst, port, protocol);
                    for src in 0..index.pod_count() {
                        prop_assert_eq!(
                            column.contains(src),
                            index.verdict(src, dst, port, protocol).is_allowed(),
                            "src={} dst={} port={} proto={:?}",
                            src, dst, port, protocol
                        );
                    }
                }
            }
        }
    }

    /// The cached index is invalidated by mutation: after applying one more
    /// policy, fresh verdicts match a fresh naive engine again.
    #[test]
    fn cache_invalidation_tracks_mutation(
        pods in arb_cluster_pods(),
        policy in arb_policy(),
    ) {
        let mut cluster = build_cluster(&pods, &[]);
        let before = cluster.policy_index();
        cluster.apply(Object::NetworkPolicy(policy.clone())).expect("apply policy");
        let after = cluster.policy_index();
        let engine = PolicyEngine::new(std::slice::from_ref(&policy), cluster.namespace_labels());
        for src in cluster.pods() {
            let si = after.pod_index(&src.qualified_name()).expect("src indexed");
            for dst in cluster.pods() {
                let di = after.pod_index(&dst.qualified_name()).expect("dst indexed");
                prop_assert_eq!(
                    after.verdict(si, di, 8080, Protocol::Tcp),
                    engine.verdict(src, dst, 8080, Protocol::Tcp)
                );
                // The pre-mutation snapshot still answers default-allow.
                prop_assert!(before.verdict(si, di, 8080, Protocol::Tcp).is_allowed());
            }
        }
    }
}
