//! §2.1.1 proof of concept — "Broken Control Plane: Concourse".
//!
//! ```sh
//! cargo run --example concourse_attack
//! ```
//!
//! The Concourse web node opens reverse-SSH-tunnel endpoints in the
//! ephemeral port range, bound on all interfaces instead of loopback. Any
//! pod in the cluster can reach them and speak to the workers' control
//! channel. This example replays the attack, shows the analyzer flagging the
//! surface, and then closes it with synthesized NetworkPolicies.

use inside_job::chart::Release;
use inside_job::cluster::{BehaviorRegistry, Cluster, ClusterConfig, ConnectOutcome};
use inside_job::core::{Analyzer, StaticModel};
use inside_job::datasets::{concourse_behaviors, concourse_chart};
use inside_job::guard::PolicySynthesizer;
use inside_job::model::{Container, Object, ObjectMeta, Pod, PodSpec, Protocol};
use inside_job::probe::{reachable_pod_endpoints, HostBaseline, RuntimeAnalyzer};

fn main() {
    let mut behaviors = BehaviorRegistry::new();
    for (image, b) in concourse_behaviors() {
        behaviors.register(image, b);
    }
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 2024,
        behaviors,
    });
    let baseline = HostBaseline::capture(&cluster);
    let rendered = concourse_chart()
        .render(&Release::new("ci", "default"))
        .expect("chart renders");
    cluster.install(&rendered).expect("no admission configured");

    // The attacker: one compromised container, no privileges beyond
    // cluster-network access (the paper's threat model, §3.1).
    cluster
        .apply(Object::Pod(Pod::new(
            ObjectMeta::named("compromised"),
            PodSpec {
                containers: vec![Container::new("sh", "attacker/foothold")],
                ..Default::default()
            },
        )))
        .expect("apply attacker");
    cluster.reconcile();

    // Step 1 — reconnaissance: scan the cluster network.
    let reachable = reachable_pod_endpoints(&cluster, "default/compromised");
    println!(
        "attacker reconnaissance: {} reachable endpoints",
        reachable.len()
    );
    for ep in &reachable {
        println!("  {} {}/{}", ep.pod, ep.port, ep.protocol);
    }

    // Step 2 — find the web node's tunnel endpoints (ephemeral range) and
    // connect: these are command-and-control channels to the workers.
    let c2: Vec<_> = reachable
        .iter()
        .filter(|ep| ep.pod.contains("ci-web") && (32768..=60999).contains(&ep.port))
        .collect();
    assert!(!c2.is_empty(), "tunnel endpoints should be exposed");
    for ep in &c2 {
        let outcome = cluster.connect("default/compromised", &ep.pod, ep.port, Protocol::Tcp);
        assert_eq!(outcome, Some(ConnectOutcome::Connected));
        println!(
            "attacker connected to tunnel endpoint {}:{} — can now deploy containers and edit jobs",
            ep.pod, ep.port
        );
    }

    // Step 3 — what the analyzer says about this application.
    let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
    let findings = Analyzer::hybrid().analyze_app(
        "concourse",
        &rendered.objects,
        &cluster,
        Some(&runtime),
        false,
    );
    println!("\nanalyzer findings:");
    for f in &findings {
        println!("  {f}");
    }
    assert!(
        findings.iter().any(|f| f.id.as_str() == "M2"),
        "dynamic tunnel ports"
    );
    assert!(
        findings.iter().any(|f| f.id.as_str() == "M1"),
        "undeclared worker APIs"
    );
    assert!(
        findings.iter().any(|f| f.id.as_str() == "M6"),
        "no isolation"
    );

    // Step 4 — defense: synthesize declared-ports-only policies and replay.
    let statics = StaticModel::from_objects(&rendered.objects);
    let outcome = PolicySynthesizer::new().synthesize(&statics);
    println!("\nsynthesized {} NetworkPolicies", outcome.policies.len());
    for obj in outcome.objects() {
        cluster.apply(obj).expect("policies admitted");
    }
    for ep in &c2 {
        let outcome = cluster.connect("default/compromised", &ep.pod, ep.port, Protocol::Tcp);
        assert_eq!(outcome, Some(ConnectOutcome::DeniedIngress));
        println!(
            "replayed attack on {}:{} — {:?}",
            ep.pod,
            ep.port,
            outcome.unwrap()
        );
    }
    println!("\nattack surface closed: tunnel endpoints now unreachable");
}
