//! Pre-install host-port baseline (§4.2.2, second special case).

use ij_cluster::Cluster;
use ij_model::Protocol;
use std::collections::{BTreeSet, HashMap};

/// Ports open on each node *before* the application under analysis is
/// installed. Subtracted from hostNetwork pod observations so that node
/// daemons (kubelet, sshd, …) and unrelated components are not reported as
/// the application's ports.
#[derive(Debug, Clone, Default)]
pub struct HostBaseline {
    ports: HashMap<String, BTreeSet<(u16, Protocol)>>,
}

impl HostBaseline {
    /// Captures the current host sockets of every node.
    pub fn capture(cluster: &Cluster) -> Self {
        let mut ports: HashMap<String, BTreeSet<(u16, Protocol)>> = HashMap::new();
        for node in cluster.nodes() {
            let set = cluster
                .host_sockets(&node.name)
                .into_iter()
                .map(|(p, proto, _)| (p, proto))
                .collect();
            ports.insert(node.name.clone(), set);
        }
        HostBaseline { ports }
    }

    /// An empty baseline (nothing gets subtracted) — used in the ablation
    /// that shows M7 over-reporting without the subtraction step.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when the baseline already held this port on the node.
    pub fn holds(&self, node: &str, port: u16, protocol: Protocol) -> bool {
        self.ports
            .get(node)
            .is_some_and(|s| s.contains(&(port, protocol)))
    }

    /// Number of baseline entries across all nodes.
    pub fn len(&self) -> usize {
        self.ports.values().map(BTreeSet::len).sum()
    }

    /// True when no node has baseline entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_cluster::{Cluster, ClusterConfig};

    #[test]
    fn baseline_captures_node_daemons() {
        let cluster = Cluster::new(ClusterConfig::default());
        let b = HostBaseline::capture(&cluster);
        assert!(b.holds("node-0", 10250, Protocol::Tcp));
        assert!(b.holds("node-0", 53, Protocol::Udp));
        assert!(!b.holds("node-0", 9100, Protocol::Tcp));
        assert!(!b.holds("missing-node", 10250, Protocol::Tcp));
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_baseline_holds_nothing() {
        let b = HostBaseline::empty();
        assert!(!b.holds("node-0", 10250, Protocol::Tcp));
        assert!(b.is_empty());
    }
}
