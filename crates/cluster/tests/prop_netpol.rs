//! Property tests for the NetworkPolicy engine's core semantics.

use ij_cluster::{Cluster, ClusterConfig, PolicyEngine, RunningPod};
use ij_model::{
    Container, ContainerPort, LabelSelector, Labels, NetworkPolicy, NetworkPolicyPeer, Object,
    ObjectMeta, Pod, PodSpec, PolicyPort, Protocol,
};
use proptest::prelude::*;

fn arb_labels() -> impl Strategy<Value = Labels> {
    prop::collection::btree_map("[ab]", "[xy]", 1..3).prop_map(Labels)
}

/// Builds running pods through the real cluster machinery so IPs and nodes
/// are realistic.
fn running_pods(specs: Vec<(String, Labels, bool)>) -> Vec<RunningPod> {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        seed: 1,
        behaviors: Default::default(),
    });
    for (name, labels, host_network) in specs {
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named(name).with_labels(labels),
                PodSpec {
                    containers: vec![
                        Container::new("c", "img").with_ports(vec![ContainerPort::tcp(8080)])
                    ],
                    host_network,
                    node_name: None,
                },
            )))
            .expect("apply");
    }
    cluster.reconcile();
    cluster.pods().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With no policies, every pod-to-pod connection is allowed.
    #[test]
    fn default_allow_is_total(
        labels in prop::collection::vec(arb_labels(), 2..5),
        port in 1u16..=65535,
    ) {
        let pods = running_pods(
            labels
                .into_iter()
                .enumerate()
                .map(|(i, l)| (format!("p{i}"), l, false))
                .collect(),
        );
        let engine = PolicyEngine::new(&[], []);
        for src in &pods {
            for dst in &pods {
                prop_assert!(engine.verdict(src, dst, port, Protocol::Tcp).is_allowed());
            }
        }
    }

    /// A deny-all-ingress policy blocks every non-hostNetwork destination,
    /// and hostNetwork destinations bypass it regardless of labels.
    #[test]
    fn deny_all_blocks_exactly_pod_network_destinations(
        labels in prop::collection::vec(arb_labels(), 2..5),
        host_flags in prop::collection::vec(any::<bool>(), 2..5),
    ) {
        let n = labels.len().min(host_flags.len());
        let pods = running_pods(
            labels
                .into_iter()
                .take(n)
                .zip(host_flags.into_iter().take(n))
                .enumerate()
                .map(|(i, (l, h))| (format!("p{i}"), l, h))
                .collect(),
        );
        let deny = [NetworkPolicy::deny_all_ingress(
            ObjectMeta::named("deny"),
            LabelSelector::everything(),
        )];
        let engine = PolicyEngine::new(&deny, []);
        for src in &pods {
            for dst in &pods {
                let verdict = engine.verdict(src, dst, 8080, Protocol::Tcp);
                prop_assert_eq!(
                    verdict.is_allowed(),
                    dst.pod.spec.host_network,
                    "src={} dst={} host={}",
                    src.qualified_name(),
                    dst.qualified_name(),
                    dst.pod.spec.host_network
                );
            }
        }
    }

    /// Policies are additive allow-lists: adding an allow policy on top of a
    /// deny-all never shrinks the allowed set.
    #[test]
    fn allow_rules_are_monotonic(
        src_labels in arb_labels(),
        dst_labels in arb_labels(),
        peer_sel in arb_labels(),
        port in prop::sample::select(vec![8080u16, 9090]),
    ) {
        let pods = running_pods(vec![
            ("src".to_string(), src_labels, false),
            ("dst".to_string(), dst_labels, false),
        ]);
        let (src, dst) = (&pods[0], &pods[1]);

        let base = vec![NetworkPolicy::deny_all_ingress(
            ObjectMeta::named("deny"),
            LabelSelector::everything(),
        )];
        let mut extended = base.clone();
        extended.push(NetworkPolicy::allow_ingress(
            ObjectMeta::named("allow"),
            LabelSelector::everything(),
            vec![NetworkPolicyPeer::pods(LabelSelector::from_labels(peer_sel))],
            vec![PolicyPort::tcp(port)],
        ));

        let base_engine = PolicyEngine::new(&base, []);
        let ext_engine = PolicyEngine::new(&extended, []);
        for probe in [8080u16, 9090] {
            let before = base_engine.verdict(src, dst, probe, Protocol::Tcp).is_allowed();
            let after = ext_engine.verdict(src, dst, probe, Protocol::Tcp).is_allowed();
            prop_assert!(
                !before || after,
                "adding an allow policy removed {probe} (before={before}, after={after})"
            );
        }
    }

    /// The engine is a pure function: same inputs, same verdicts.
    #[test]
    fn verdicts_are_deterministic(
        src_labels in arb_labels(),
        dst_labels in arb_labels(),
        sel in arb_labels(),
    ) {
        let pods = running_pods(vec![
            ("src".to_string(), src_labels, false),
            ("dst".to_string(), dst_labels, false),
        ]);
        let policies = [NetworkPolicy::allow_ingress(
            ObjectMeta::named("p"),
            LabelSelector::from_labels(sel),
            vec![],
            vec![PolicyPort::tcp(8080)],
        )];
        let engine = PolicyEngine::new(&policies, []);
        let a = engine.verdict(&pods[0], &pods[1], 8080, Protocol::Tcp);
        let b = engine.verdict(&pods[0], &pods[1], 8080, Protocol::Tcp);
        prop_assert_eq!(a, b);
    }
}
