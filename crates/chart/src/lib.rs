//! # ij-chart — a Helm-like chart engine
//!
//! Kubernetes applications are rarely deployed from raw manifests; they ship
//! as *charts*: parameterized template bundles with default values,
//! dependencies, and optional resources. The paper's whole evaluation operates
//! on Helm charts, and several misconfiguration classes (most notably M6,
//! "policies present but not enabled") only exist at the chart level.
//!
//! This crate implements the subset of Helm needed to express real-world
//! charts faithfully:
//!
//! * a template language with `{{ .Values.* }}` interpolation, `if`/`else`,
//!   `range`, pipelines (`|`) and the common helper functions (`default`,
//!   `quote`, `toYaml`, `indent`/`nindent`, `eq`, `not`, …), including
//!   whitespace-control markers (`{{-`, `-}}`);
//! * chart packaging: default values, templates, subchart dependencies with
//!   enable conditions, deep value overlays;
//! * a render pipeline producing typed [`ij_model::Object`]s for a release.
//!
//! Rendering comes in two forms, byte-identical in output:
//!
//! * [`Chart::render`] — parse-per-call, for render-once workloads;
//! * [`Chart::compile`] → [`CompiledChart::render`] — the parse-once /
//!   render-many form (Helm's own engine shape): template ASTs are cached,
//!   action-free files are pre-decoded to objects, and each render builds
//!   one context per chart level while borrowing everything else.
//!   Template evaluation itself is copy-on-write — `.Values.a.b` lookups
//!   borrow from the values tree instead of cloning the addressed subtree.
//!
//! ```
//! use ij_chart::{Chart, Release};
//!
//! let chart = Chart::builder("demo")
//!     .values_yaml("service:\n  port: 8080\n").unwrap()
//!     .template("svc.yaml", "\
//! apiVersion: v1
//! kind: Service
//! metadata:
//!   name: {{ .Release.Name }}-demo
//! spec:
//!   selector:
//!     app: demo
//!   ports:
//!     - port: {{ .Values.service.port }}
//! ")
//!     .build();
//! let release = chart.render(&Release::new("test", "default")).unwrap();
//! assert_eq!(release.objects.len(), 1);
//! assert_eq!(release.objects[0].meta().name, "test-demo");
//! ```

mod chart;
mod compiled;
mod error;
mod fsload;
mod template;

pub use chart::{
    stamp_namespace, Chart, ChartBuilder, Dependency, Release, RenderedRelease, TemplateSource,
};
pub use compiled::{CompiledChart, RenderScratch};
pub use error::{Error, IngestError, Result};
pub use template::{
    merge_defines, parse_template, render_parsed, render_template, Context, Node, ParsedTemplate,
};
