//! Continuous-audit benchmark: per-mutation audit latency on a tenant
//! cluster under churn, full recompute vs the incremental dirty-set path.
//!
//! Setup per population size: preinstall `N` generated applications
//! (scenario matrix, profile `baseline`), warm the auditor, then time one
//! audit round per iteration. The driven mutation is a replica-count
//! toggle on one release's server workload — the canonical single-app
//! mutation, chosen because it is state-neutral (the cluster does not grow
//! or drift across the thousands of timed iterations). Pod reconciliation
//! — the scheduler's own control loop, identical whichever audit strategy
//! runs — stays outside the timed region so the arms compare *audit*
//! latency, not scheduling:
//!
//! * `full` — the mutation plus a from-scratch re-analysis of every
//!   release and the cluster-wide label pass ([`IncrementalAuditor::full_tick`]);
//! * `incremental` — the same mutation plus a dirty-set tick that
//!   re-analyzes only the touched release
//!   ([`IncrementalAuditor::tick`]).
//!
//! Before any timing, a 60-step churn stream covering every mutation kind
//! (install, uninstall, label flip, policy add, scale) is replayed with
//! both strategies and their finding sets asserted byte-identical after
//! every step — the timed fast path is also a correct path. Committed
//! numbers live in `BENCH_audit.json` (schema in `docs/BENCHMARKS.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig};
use ij_datasets::{apply_mutation, ChurnMutation, ChurnSession, CorpusGenerator, CorpusProfile};
use ij_guard::IncrementalAuditor;
use std::hint::black_box;

const SIZES: [usize; 2] = [25, 100];
const SEED: u64 = 7;

fn session(horizon: usize) -> ChurnSession {
    ChurnSession::new(CorpusGenerator::new(
        CorpusProfile::named("baseline")
            .expect("baseline profile")
            .with_apps(horizon)
            .with_seed(SEED),
    ))
}

/// A cluster with `apps` generated applications installed, plus the name of
/// one release whose server workload the timed loop toggles.
fn steady_cluster(apps: usize) -> (Cluster, String) {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: SEED,
        behaviors: BehaviorRegistry::new(),
    });
    let mut session = session(apps.max(8));
    let mutations = session.preinstall(apps);
    assert_eq!(mutations.len(), apps, "horizon must cover the population");
    for m in &mutations {
        apply_mutation(&mut cluster, m).expect("preinstall applies");
    }
    let target = session
        .installed()
        .next()
        .expect("populated cluster")
        .to_string();
    (cluster, target)
}

/// Replays a churn stream covering every mutation kind with both audit
/// strategies; any divergence is a correctness bug that voids the timings.
fn assert_incremental_equals_full(steps: usize) {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: SEED,
        behaviors: BehaviorRegistry::new(),
    });
    let mut session = session(64);
    let mut incremental = IncrementalAuditor::new();
    let mut oracle = IncrementalAuditor::new();
    for _ in 0..steps {
        let mutation = session.next_mutation();
        if let ChurnMutation::Install { spec } | ChurnMutation::LabelFlip { spec, .. } = &mutation {
            let defines = spec.plan.netpol.defines_policy();
            incremental.set_chart_defines_policies(&spec.name, defines);
            oracle.set_chart_defines_policies(&spec.name, defines);
        }
        apply_mutation(&mut cluster, &mutation).expect("churn mutations apply");
        incremental.tick(&cluster);
        oracle.full_tick(&cluster);
        assert_eq!(
            incremental.current(),
            oracle.current(),
            "incremental audit diverged from the full recompute after `{}` of `{}`",
            mutation.kind(),
            mutation.app()
        );
    }
}

fn bench_audit_churn(c: &mut Criterion) {
    assert_incremental_equals_full(60);
    // Under `cargo test` the criterion shim runs each closure once as a
    // smoke test; skip the 100-app arms there to keep CI's bench-smoke step
    // fast (committed numbers come from `cargo bench`).
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let sizes = if bench_mode { &SIZES[..] } else { &SIZES[..1] };
    let mut group = c.benchmark_group("audit_churn");
    group.sample_size(10);
    for &apps in sizes {
        {
            let (mut cluster, target) = steady_cluster(apps);
            let workload = format!("default/{target}-server");
            let mut auditor = IncrementalAuditor::new();
            auditor.full_tick(&cluster);
            let mut replicas = 1u32;
            group.bench_function(&format!("full/{apps}"), |b| {
                b.iter(|| {
                    replicas = 3 - replicas; // 1 <-> 2: state-neutral churn
                    cluster.scale_workload(&workload, replicas);
                    black_box(auditor.full_tick(&cluster).introduced.len())
                })
            });
        }
        {
            let (mut cluster, target) = steady_cluster(apps);
            let workload = format!("default/{target}-server");
            let mut auditor = IncrementalAuditor::new();
            auditor.full_tick(&cluster);
            let mut replicas = 1u32;
            group.bench_function(&format!("incremental/{apps}"), |b| {
                b.iter(|| {
                    replicas = 3 - replicas;
                    cluster.scale_workload(&workload, replicas);
                    black_box(auditor.tick(&cluster).introduced.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_audit_churn);
criterion_main!(benches);
