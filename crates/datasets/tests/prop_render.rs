//! Compiled-render equivalence: for *any* (bounded) injection plan, any
//! release namespace, and either policy posture, the compile-once render
//! path ([`ij_chart::CompiledChart`]) must produce output byte-identical to
//! the parse-per-call seed path ([`ij_chart::Chart::render`]) — and the
//! pipeline's memoized render must agree with both. This is the acceptance
//! bar of the compiled render layer, mirroring how the compiled policy
//! index was verified against the naive engine.

use ij_chart::Release;
use ij_datasets::{build_app, AppSpec, CensusPipeline, NetpolSpec, Org, Plan};
use proptest::prelude::*;

fn arb_netpol() -> impl Strategy<Value = NetpolSpec> {
    prop_oneof![
        Just(NetpolSpec::Missing),
        Just(NetpolSpec::DefinedDisabled { loose: false }),
        Just(NetpolSpec::DefinedDisabled { loose: true }),
        Just(NetpolSpec::Enabled { loose: false }),
        Just(NetpolSpec::Enabled { loose: true }),
    ]
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        (0usize..=2, 0usize..=2, 0usize..=2),
        (0usize..=2, 0usize..=2, 0usize..=2),
        (0usize..=2, 0usize..=2, 0usize..=2, 0usize..=2),
        arb_netpol(),
        0usize..=2,
        (1u32..=3, 0usize..=2),
    )
        .prop_map(
            |(
                (m1, m2, m3),
                (m4a, m4b, m4c),
                (m5a, m5b, m5c, m5d),
                netpol,
                m7,
                (replicas, clean),
            )| Plan {
                m1,
                m2,
                m3,
                m4a,
                m4b,
                m4c,
                m5a,
                m5b,
                m5c,
                m5d,
                netpol,
                m7,
                server_replicas: replicas,
                clean_components: clean,
                m4star_tokens: vec![],
            },
        )
}

fn arb_release() -> impl Strategy<Value = Release> {
    (0usize..3, any::<bool>()).prop_map(|(ns, force_policies)| {
        let release = Release::new("prop-rel", ["default", "apps", "prod"][ns]);
        if force_policies {
            release
                .with_values_yaml("networkPolicy:\n  enabled: true\n")
                .expect("static values parse")
        } else {
            release
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_render_is_byte_identical_to_seed_path(
        plan in arb_plan(),
        release in arb_release(),
    ) {
        let spec = AppSpec::new("prop-render", Org::Bitnami, "0.0.1", plan);
        let built = build_app(&spec);

        let naive = built.chart().render(&release).expect("seed path renders");
        let compiled = built.compiled().expect("corpus charts compile");
        let replay = compiled.render(&release).expect("compiled path renders");
        prop_assert_eq!(
            format!("{naive:#?}"),
            format!("{replay:#?}"),
            "compiled render diverged from the seed path"
        );

        // Replaying the cached ASTs again changes nothing.
        let again = compiled.render(&release).expect("second replay renders");
        prop_assert_eq!(format!("{replay:#?}"), format!("{again:#?}"));

        // The pipeline's memoized render agrees too — on the miss and on
        // the hit.
        let pipeline = CensusPipeline::builder().build();
        let miss = pipeline.render_app(&built, &release).expect("cache miss renders");
        let hit = pipeline.render_app(&built, &release).expect("cache hit renders");
        prop_assert_eq!(format!("{naive:#?}"), format!("{:#?}", *miss));
        prop_assert_eq!(format!("{:#?}", *miss), format!("{:#?}", *hit));
    }
}
