//! The §2.1 proof-of-concept applications: Concourse (broken control plane)
//! and Thanos (service impersonation), modelled closely enough to replay
//! both attacks in the simulator (see `examples/concourse_attack.rs` and
//! `examples/thanos_impersonation.rs`).

use ij_chart::Chart;
use ij_cluster::{ContainerBehavior, ListenerSpec};

/// The Concourse CI chart: a `web` control-plane node and two `worker`
/// nodes. The web node declares its UI (8080) and TSA (2222) ports.
pub fn concourse_chart() -> Chart {
    Chart::builder("concourse")
        .version("17.3.1")
        .description("CI/CD system with a web control plane and build workers")
        .values_yaml("web:\n  replicas: 1\nworker:\n  replicas: 2\n")
        .expect("static values parse")
        .template(
            "web.yaml",
            "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-web
spec:
  replicas: {{ .Values.web.replicas }}
  selector:
    matchLabels:
      app: concourse-web
  template:
    metadata:
      labels:
        app: concourse-web
    spec:
      containers:
        - name: web
          image: sim/concourse/web
          ports:
            - name: atc
              containerPort: 8080
            - name: tsa
              containerPort: 2222
",
        )
        .template(
            "worker.yaml",
            "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-worker
spec:
  replicas: {{ .Values.worker.replicas }}
  selector:
    matchLabels:
      app: concourse-worker
  template:
    metadata:
      labels:
        app: concourse-worker
    spec:
      containers:
        - name: worker
          image: sim/concourse/worker
",
        )
        .template(
            "svc.yaml",
            "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-web
spec:
  selector:
    app: concourse-web
  ports:
    - name: atc
      port: 8080
      targetPort: atc
",
        )
        .build()
}

/// Concourse runtime behaviour. The web node opens its declared ports
/// *plus* reverse-SSH-tunnel endpoints in the host ephemeral range — the
/// command-and-control channels to the workers. They should be bound to
/// loopback; the real deployment binds them on all interfaces, which is
/// exactly the misconfiguration (M1 + M2) the paper exploits in §2.1.1.
pub fn concourse_behaviors() -> Vec<(String, ContainerBehavior)> {
    vec![
        (
            "sim/concourse/web".to_string(),
            ContainerBehavior::Listeners(vec![
                ListenerSpec::tcp(8080),
                ListenerSpec::tcp(2222),
                // One tunnel endpoint per worker; cluster-reachable.
                ListenerSpec::ephemeral(),
                ListenerSpec::ephemeral(),
            ]),
        ),
        (
            "sim/concourse/worker".to_string(),
            // The worker's Garden/BaggageClaim APIs, undeclared and bound to
            // all interfaces.
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(7777), ListenerSpec::tcp(7788)]),
        ),
    ]
}

/// The Thanos chart of §2.1.2: `thanos-query-frontend` (user-facing) and
/// `thanos-query` (internal) both carry the single label
/// `app.kubernetes.io/name: thanos-query-frontend`, and both services select
/// that label — the compute-unit collision (M4A) plus service label
/// collision (M4B) that enables impersonation.
pub fn thanos_chart() -> Chart {
    let unit = |name: &str, image: &str, port: u16, port_name: &str| {
        format!(
            "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{{{ .Release.Name }}}}-{name}
spec:
  replicas: 1
  selector:
    matchLabels:
      app.kubernetes.io/name: thanos-query-frontend
  template:
    metadata:
      labels:
        app.kubernetes.io/name: thanos-query-frontend
    spec:
      containers:
        - name: {name}
          image: {image}
          ports:
            - name: {port_name}
              containerPort: {port}
"
        )
    };
    let svc = |name: &str, port: u16, target: &str| {
        format!(
            "\
apiVersion: v1
kind: Service
metadata:
  name: {{{{ .Release.Name }}}}-{name}
spec:
  selector:
    app.kubernetes.io/name: thanos-query-frontend
  ports:
    - name: {target}
      port: {port}
      targetPort: {target}
"
        )
    };
    Chart::builder("thanos")
        .version("12.6.2")
        .description("Highly-available Prometheus with long-term storage")
        .template(
            "query-frontend.yaml",
            unit("query-frontend", "sim/thanos/query-frontend", 9090, "http"),
        )
        .template(
            "query.yaml",
            unit("query", "sim/thanos/query", 10902, "grpc"),
        )
        .template("svc-frontend.yaml", svc("query-frontend", 9090, "http"))
        .template("svc-query.yaml", svc("query", 10902, "grpc"))
        .build()
}

/// Thanos runtime behaviour: each unit opens its declared port.
pub fn thanos_behaviors() -> Vec<(String, ContainerBehavior)> {
    vec![
        (
            "sim/thanos/query-frontend".to_string(),
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(9090)]),
        ),
        (
            "sim/thanos/query".to_string(),
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(10902)]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_chart::Release;
    use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig};
    use ij_core::{Analyzer, MisconfigId};
    use ij_probe::{HostBaseline, RuntimeAnalyzer};

    fn registry(pairs: Vec<(String, ContainerBehavior)>) -> BehaviorRegistry {
        let mut reg = BehaviorRegistry::new();
        for (image, b) in pairs {
            reg.register(image, b);
        }
        reg
    }

    #[test]
    fn concourse_analysis_finds_c2_surface() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            seed: 21,
            behaviors: registry(concourse_behaviors()),
        });
        let baseline = HostBaseline::capture(&cluster);
        let rendered = concourse_chart()
            .render(&Release::new("ci", "default"))
            .unwrap();
        cluster.install(&rendered).unwrap();
        let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
        let findings = Analyzer::hybrid().analyze_app(
            "concourse",
            &rendered.objects,
            &cluster,
            Some(&runtime),
            false,
        );
        // Workers expose two undeclared API ports each (deduped per unit).
        assert_eq!(
            findings.iter().filter(|f| f.id == MisconfigId::M1).count(),
            2,
            "{findings:#?}"
        );
        // The web node's tunnel endpoints are dynamic.
        assert!(findings
            .iter()
            .any(|f| f.id == MisconfigId::M2 && f.object.contains("ci-web")));
        // And nothing restricts lateral movement.
        assert!(findings.iter().any(|f| f.id == MisconfigId::M6));
    }

    #[test]
    fn thanos_analysis_finds_label_collisions() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            seed: 22,
            behaviors: registry(thanos_behaviors()),
        });
        let baseline = HostBaseline::capture(&cluster);
        let rendered = thanos_chart()
            .render(&Release::new("th", "default"))
            .unwrap();
        cluster.install(&rendered).unwrap();
        let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
        let findings = Analyzer::hybrid().analyze_app(
            "thanos",
            &rendered.objects,
            &cluster,
            Some(&runtime),
            false,
        );
        assert!(findings.iter().any(|f| f.id == MisconfigId::M4A));
        assert!(findings.iter().any(|f| f.id == MisconfigId::M4B));
    }
}
