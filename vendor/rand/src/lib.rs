//! Offline shim for `rand`.
//!
//! The workspace draws randomness in exactly two places (ephemeral ports in
//! `ij-cluster`, UDP probe noise in `ij-probe`), always from a
//! `StdRng::seed_from_u64` so runs are reproducible. This shim provides that
//! subset — `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer
//! ranges, and `Rng::gen_bool` — backed by xoshiro256** seeded via
//! splitmix64. The stream differs from the real `rand::StdRng` (which is
//! ChaCha-based), but every consumer treats the seed as an opaque
//! determinism handle, so only stability across runs matters.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The subset of the `Rng` extension trait the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the same resolution rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Integer ranges that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (next() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (next() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (shim for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, the standard xoshiro seeding procedure.
            let mut x = state;
            let mut seed = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [seed(), seed(), seed(), seed()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let p = rng.gen_range(32768..=60999u16);
            assert!((32768..=60999).contains(&p));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
