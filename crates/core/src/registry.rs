//! The rule registry: every detection rule of §4.2.1 as a named,
//! individually enable/disable-able entry.
//!
//! The [`crate::Analyzer`] used to call each rule function in a hardcoded
//! list; it now iterates a [`RuleRegistry`] instead. That makes per-rule
//! ablations a one-liner (`analyzer.registry.disable("m7")`) and lets
//! downstream users register custom rules next to the built-in ones without
//! touching the engine.
//!
//! Three rule shapes exist:
//!
//! * **application rules** run once per application over a [`RuleContext`]
//!   (static model + optional runtime report);
//! * **global rules** run once per census over the static models of every
//!   application destined for the same cluster (the M4\* pass);
//! * **pack rules** are application rules expressed in the rule language
//!   ([`crate::lang`]) and compiled at load time — same gating, same
//!   evaluation slot, declarative body.

use crate::finding::{Finding, MisconfigId};
use crate::lang::CompiledRule;
use crate::model::StaticModel;
use crate::rules::{self, RuleContext};
use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// Which evidence a rule consumes — the Table 3 ablation axis. Rules with
/// [`RuleScope::Runtime`] are skipped in static-only mode (and when no
/// runtime report is available); rules with [`RuleScope::Static`] are
/// skipped in runtime-only mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleScope {
    /// Evaluates the rendered configuration only.
    Static,
    /// Needs the probe's runtime observations.
    Runtime,
}

impl RuleScope {
    /// The spelling pack files and `ij rules` use.
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleScope::Static => "static",
            RuleScope::Runtime => "runtime",
        }
    }
}

/// Where a rule's body comes from: compiled-in Rust, or a rule pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOrigin {
    /// A native Rust rule function.
    Native,
    /// A rule-language rule loaded from a pack.
    Pack,
}

impl RuleOrigin {
    /// The spelling `ij rules` prints.
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleOrigin::Native => "native",
            RuleOrigin::Pack => "pack",
        }
    }
}

/// An application-scoped rule: evaluated once per application.
pub type AppRule = for<'a> fn(&RuleContext<'a>) -> Vec<Finding>;

/// A census-scoped rule: evaluated once over every application's statics.
pub type GlobalRule = fn(&[(String, StaticModel)]) -> Vec<Finding>;

#[derive(Clone)]
enum RuleBody {
    App(AppRule),
    Global(GlobalRule),
    Pack(Arc<CompiledRule>),
}

/// A registry operation named a rule that is not registered. Carries the
/// known names so callers (e.g. the CLI's `--without-rule`) can print them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRule {
    /// The name that failed to resolve.
    pub name: String,
    /// Every registered name, in evaluation order.
    pub known: Vec<String>,
}

impl fmt::Display for UnknownRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown rule `{}` (known rules: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownRule {}

/// One registered rule.
#[derive(Clone)]
pub struct RuleEntry {
    name: Cow<'static, str>,
    classes: Cow<'static, [MisconfigId]>,
    scope: RuleScope,
    body: RuleBody,
    enabled: bool,
    /// Set only by [`RuleRegistry::standard`] on the built-in M4\* entry;
    /// any re-registration clears it. See [`RuleEntry::is_builtin_m4star`].
    builtin_global: bool,
}

impl RuleEntry {
    /// The registry key used by [`RuleRegistry::enable`] / [`disable`].
    ///
    /// [`disable`]: RuleRegistry::disable
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The misconfiguration classes this rule can emit.
    pub fn classes(&self) -> &[MisconfigId] {
        &self.classes
    }

    /// Whether the rule consumes static or runtime evidence.
    pub fn scope(&self) -> RuleScope {
        self.scope
    }

    /// False when the rule has been switched off.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True for census-scoped (cluster-wide) rules.
    pub fn is_global(&self) -> bool {
        matches!(self.body, RuleBody::Global(_))
    }

    /// True for the built-in cluster-wide M4\* entry exactly as
    /// [`RuleRegistry::standard`] registered it. The streamed corpus census
    /// uses this to know it may drive the interned
    /// [`crate::m4_global_collisions_compact`] pass directly (byte-identical
    /// to the entry's own body) instead of materializing every static model;
    /// re-registering any global rule — even one wrapping the same function —
    /// clears the marker and forces the materializing path.
    pub fn is_builtin_m4star(&self) -> bool {
        self.builtin_global
    }

    /// Native Rust or pack-loaded.
    pub fn origin(&self) -> RuleOrigin {
        match self.body {
            RuleBody::App(_) | RuleBody::Global(_) => RuleOrigin::Native,
            RuleBody::Pack(_) => RuleOrigin::Pack,
        }
    }

    /// The compiled pack rule backing this entry, for pack entries.
    pub fn pack_rule(&self) -> Option<&CompiledRule> {
        match &self.body {
            RuleBody::Pack(rule) => Some(rule),
            _ => None,
        }
    }

    /// A pack entry's `when` expression source; `None` for native rules
    /// (their body is Rust, not an expression).
    pub fn expression(&self) -> Option<&str> {
        self.pack_rule().map(CompiledRule::expression)
    }

    /// Runs an application-scoped rule; global rules yield nothing here.
    pub fn run_app(&self, ctx: &RuleContext<'_>) -> Vec<Finding> {
        match &self.body {
            RuleBody::App(f) => f(ctx),
            RuleBody::Global(_) => Vec::new(),
            RuleBody::Pack(rule) => rule.run(ctx),
        }
    }

    /// Runs a census-scoped rule; application rules yield nothing here.
    pub fn run_global(&self, apps: &[(String, StaticModel)]) -> Vec<Finding> {
        match &self.body {
            RuleBody::App(_) | RuleBody::Pack(_) => Vec::new(),
            RuleBody::Global(f) => f(apps),
        }
    }
}

impl fmt::Debug for RuleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleEntry")
            .field("name", &self.name)
            .field("classes", &self.classes)
            .field("scope", &self.scope)
            .field("global", &self.is_global())
            .field("origin", &self.origin())
            .field("enabled", &self.enabled)
            .finish()
    }
}

/// The ordered table of rules an [`crate::Analyzer`] evaluates.
///
/// Entry order is the evaluation order; findings are canonically re-sorted
/// afterwards, so order only matters for reproducible side-effect-free
/// iteration. Names are unique: registering a name twice replaces the
/// earlier entry in place (same position, new body), so a custom or pack
/// rule can shadow a built-in one.
#[derive(Debug, Clone)]
pub struct RuleRegistry {
    entries: Vec<RuleEntry>,
}

impl Default for RuleRegistry {
    fn default() -> Self {
        RuleRegistry::standard()
    }
}

impl RuleRegistry {
    /// A registry with no rules; combine with the `register_*` methods to
    /// build a custom rule set from scratch.
    pub fn empty() -> Self {
        RuleRegistry {
            entries: Vec::new(),
        }
    }

    /// The paper's full rule set (Table 1), every entry enabled.
    pub fn standard() -> Self {
        use MisconfigId as M;
        let mut reg = RuleRegistry::empty();
        reg.register_app_rule(
            "m1",
            &[M::M1],
            RuleScope::Runtime,
            rules::m1_undeclared_open_ports,
        );
        reg.register_app_rule("m2", &[M::M2], RuleScope::Runtime, rules::m2_dynamic_ports);
        reg.register_app_rule(
            "m3",
            &[M::M3],
            RuleScope::Runtime,
            rules::m3_declared_not_open,
        );
        reg.register_app_rule(
            "m4a",
            &[M::M4A],
            RuleScope::Static,
            rules::m4a_unit_collisions,
        );
        reg.register_app_rule(
            "m4b",
            &[M::M4B],
            RuleScope::Static,
            rules::m4b_service_collisions,
        );
        reg.register_app_rule(
            "m4c",
            &[M::M4C],
            RuleScope::Static,
            rules::m4c_subset_collisions,
        );
        reg.register_app_rule(
            "m5",
            &[M::M5A, M::M5B, M::M5C, M::M5D],
            RuleScope::Static,
            rules::m5_service_references,
        );
        reg.register_app_rule(
            "m6",
            &[M::M6],
            RuleScope::Static,
            rules::m6_missing_policies,
        );
        reg.register_app_rule("m7", &[M::M7], RuleScope::Static, rules::m7_host_network);
        reg.register_global_rule("m4star", &[M::M4Star], rules::m4_global_collisions);
        let star = reg
            .entries
            .iter_mut()
            .find(|e| e.name == "m4star")
            .expect("just registered");
        star.builtin_global = true;
        reg
    }

    /// Registers (or replaces) an application-scoped rule.
    pub fn register_app_rule(
        &mut self,
        name: &'static str,
        classes: &'static [MisconfigId],
        scope: RuleScope,
        rule: AppRule,
    ) -> &mut Self {
        self.insert(RuleEntry {
            name: Cow::Borrowed(name),
            classes: Cow::Borrowed(classes),
            scope,
            body: RuleBody::App(rule),
            enabled: true,
            builtin_global: false,
        })
    }

    /// Registers (or replaces) a census-scoped rule. Global rules always
    /// consume static evidence only, so their scope is [`RuleScope::Static`].
    pub fn register_global_rule(
        &mut self,
        name: &'static str,
        classes: &'static [MisconfigId],
        rule: GlobalRule,
    ) -> &mut Self {
        self.insert(RuleEntry {
            name: Cow::Borrowed(name),
            classes: Cow::Borrowed(classes),
            scope: RuleScope::Static,
            body: RuleBody::Global(rule),
            enabled: true,
            builtin_global: false,
        })
    }

    /// Registers (or replaces) a compiled pack rule. Name, class, and
    /// evidence scope come from the rule's own declaration, so a pack rule
    /// named like a built-in one shadows it in place.
    pub fn register_pack_rule(&mut self, rule: Arc<CompiledRule>) -> &mut Self {
        self.insert(RuleEntry {
            name: Cow::Owned(rule.name().to_string()),
            classes: Cow::Owned(vec![rule.class()]),
            scope: rule.evidence(),
            body: RuleBody::Pack(rule),
            enabled: true,
            builtin_global: false,
        })
    }

    fn insert(&mut self, entry: RuleEntry) -> &mut Self {
        match self.entries.iter_mut().find(|e| e.name == entry.name) {
            Some(existing) => *existing = entry,
            None => self.entries.push(entry),
        }
        self
    }

    /// Every entry, in evaluation order.
    pub fn entries(&self) -> &[RuleEntry] {
        &self.entries
    }

    /// The registered names, in evaluation order.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.entries.iter().map(|e| e.name())
    }

    fn unknown(&self, name: &str) -> UnknownRule {
        UnknownRule {
            name: name.to_string(),
            known: self.names().map(str::to_string).collect(),
        }
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&RuleEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Looks an entry up by name, with a typed error naming the known rules
    /// when it does not exist.
    pub fn try_get(&self, name: &str) -> Result<&RuleEntry, UnknownRule> {
        self.get(name).ok_or_else(|| self.unknown(name))
    }

    /// True when `name` is registered and enabled.
    pub fn is_enabled(&self, name: &str) -> bool {
        self.get(name).is_some_and(RuleEntry::is_enabled)
    }

    /// Switches one rule on or off. Returns `false` when no rule of that
    /// name is registered (the registry is unchanged).
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> bool {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(e) => {
                e.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Like [`set_enabled`](RuleRegistry::set_enabled), but an unknown name
    /// is a typed [`UnknownRule`] error instead of a silent `false`.
    pub fn try_set_enabled(&mut self, name: &str, enabled: bool) -> Result<(), UnknownRule> {
        if self.set_enabled(name, enabled) {
            Ok(())
        } else {
            Err(self.unknown(name))
        }
    }

    /// Enables one rule; `false` when the name is unknown.
    pub fn enable(&mut self, name: &str) -> bool {
        self.set_enabled(name, true)
    }

    /// Disables one rule; `false` when the name is unknown.
    pub fn disable(&mut self, name: &str) -> bool {
        self.set_enabled(name, false)
    }

    /// Enables one rule, erroring on unknown names.
    pub fn try_enable(&mut self, name: &str) -> Result<(), UnknownRule> {
        self.try_set_enabled(name, true)
    }

    /// Disables one rule, erroring on unknown names.
    pub fn try_disable(&mut self, name: &str) -> Result<(), UnknownRule> {
        self.try_set_enabled(name, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_every_class() {
        let reg = RuleRegistry::standard();
        let covered: std::collections::BTreeSet<MisconfigId> = reg
            .entries()
            .iter()
            .flat_map(|e| e.classes().iter().copied())
            .collect();
        for id in MisconfigId::ALL {
            assert!(covered.contains(&id), "no rule emits {id}");
        }
    }

    #[test]
    fn enable_disable_round_trip() {
        let mut reg = RuleRegistry::standard();
        assert!(reg.is_enabled("m7"));
        assert!(reg.disable("m7"));
        assert!(!reg.is_enabled("m7"));
        assert!(reg.enable("m7"));
        assert!(reg.is_enabled("m7"));
        assert!(!reg.disable("no-such-rule"));
    }

    #[test]
    fn unknown_rule_errors_are_typed_and_name_the_known_rules() {
        let mut reg = RuleRegistry::standard();
        let err = reg.try_disable("m8").expect_err("m8 does not exist");
        assert_eq!(err.name, "m8");
        assert!(err.known.contains(&"m7".to_string()));
        let rendered = err.to_string();
        assert!(rendered.contains("unknown rule `m8`"), "{rendered}");
        assert!(rendered.contains("m4star"), "{rendered}");
        assert!(reg.is_enabled("m7"), "failed disable must not change state");

        assert!(reg.try_get("m7").is_ok());
        assert_eq!(reg.try_get("nope").expect_err("typed").name, "nope");
        assert!(reg.try_enable("m7").is_ok());
        assert!(reg.try_set_enabled("m7", false).is_ok());
        assert!(!reg.is_enabled("m7"));
    }

    #[test]
    fn registering_same_name_replaces_in_place() {
        fn nothing(_: &RuleContext<'_>) -> Vec<Finding> {
            Vec::new()
        }
        let mut reg = RuleRegistry::standard();
        let before: Vec<String> = reg.names().map(str::to_string).collect();
        reg.register_app_rule("m7", &[], RuleScope::Static, nothing);
        let after: Vec<String> = reg.names().map(str::to_string).collect();
        assert_eq!(before, after, "replacement must not reorder entries");
        let replaced = reg.try_get("m7").expect("still registered");
        assert!(replaced.classes().is_empty());
        assert_eq!(replaced.origin(), RuleOrigin::Native);
        assert!(replaced.expression().is_none());
    }

    #[test]
    fn global_entry_is_marked_global() {
        let reg = RuleRegistry::standard();
        let star = reg.get("m4star").expect("registered");
        assert!(star.is_global());
        assert!(!reg.get("m1").unwrap().is_global());
        // Running a global rule as an app rule (and vice versa) is a no-op.
        assert!(star
            .run_app(&RuleContext {
                app: "x",
                statics: &StaticModel::default(),
                runtime: None,
                ownership: &[],
                chart_defines_policies: false,
            })
            .is_empty());
        assert!(reg.get("m1").unwrap().run_global(&[]).is_empty());
    }
}
