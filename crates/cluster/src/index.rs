//! The compiled policy index: selectors resolved once, verdicts by integer.
//!
//! [`PolicyEngine`](crate::PolicyEngine) answers one connection question by
//! walking every policy and re-matching every label selector with string
//! comparisons. That is the right *oracle* but the wrong hot path: the
//! census asks the same question for every (source, destination, socket)
//! triple of a cluster, so the per-call work must be integer-cheap.
//!
//! [`PolicyIndex`] compiles the cluster's current policy set once:
//!
//! * every label key/value is interned ([`ij_model::LabelInterner`]) and
//!   every selector becomes a [`ij_model::SelectorMatcher`];
//! * every policy gets the bitset of pods it selects ([`PodSet`]) and every
//!   rule the bitset of pods its peers admit — peer evaluation happens once
//!   per (rule, pod), never per connection;
//! * every pod gets its ingress/egress policy slices, its parsed IPv4
//!   address, and its named-port table.
//!
//! A verdict is then two slice walks and a few bitset probes, and the batch
//! [`allowed_sources`](PolicyIndex::allowed_sources) computes a whole
//! destination column of the reachability matrix in one pass. The index is
//! cached inside [`Cluster`] behind a generation counter
//! and rebuilt only after a mutation; results are bit-for-bit identical to
//! the naive engine (property-tested in `tests/prop_netpol.rs`).

use crate::cluster::{Cluster, RunningPod};
use crate::netpol::{parse_cidr, parse_v4, AllowReason, ConnectionVerdict};
use ij_model::{
    LabelInterner, LabelSet, NetworkPolicy, PolicyPort, PolicyType, Protocol, SelectorMatcher,
};
use std::collections::HashMap;

/// A fixed-size set of pod indices, one bit per running pod.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PodSet {
    bits: Vec<u64>,
    len: usize,
}

impl PodSet {
    /// The empty set over `len` pods.
    pub fn empty(len: usize) -> Self {
        PodSet {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over `len` pods.
    pub fn full(len: usize) -> Self {
        let mut set = PodSet::empty(len);
        for (i, word) in set.bits.iter_mut().enumerate() {
            let remaining = len - i * 64;
            *word = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
        }
        set
    }

    /// Number of pods the set ranges over (not the number of members).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Adds a pod.
    ///
    /// `i` must be below [`capacity`](Self::capacity). Unlike
    /// [`contains`](Self::contains) — which answers `false` for any
    /// out-of-range index — inserting out of range would either corrupt a
    /// phantom slack bit of the last word (breaking [`count`](Self::count)
    /// and the block-at-a-time kernels) or panic on the word index, so the
    /// bound is asserted up front in debug builds.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(
            i < self.len,
            "insert({i}) out of range for capacity {}",
            self.len
        );
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Removes a pod. Like [`insert`](Self::insert), `i` must be below
    /// [`capacity`](Self::capacity) (asserted in debug builds).
    pub fn remove(&mut self, i: usize) {
        debug_assert!(
            i < self.len,
            "remove({i}) out of range for capacity {}",
            self.len
        );
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test. Out-of-range indices are simply not members (the
    /// query form stays total; only the mutators assert their bounds).
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// In-place union, one `u64` block at a time. Both sets must range over
    /// the same pod count: a silent `zip` over mismatched word vectors
    /// would truncate the longer operand, so the capacities are asserted in
    /// debug builds (as in every other binary kernel here).
    pub fn union_with(&mut self, other: &PodSet) {
        debug_assert_eq!(self.len, other.len, "capacity mismatch in union_with");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// In-place intersection, one `u64` block at a time. Capacities must
    /// agree (asserted in debug builds).
    pub fn intersect_with(&mut self, other: &PodSet) {
        debug_assert_eq!(self.len, other.len, "capacity mismatch in intersect_with");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`), one `u64` block at a time.
    /// Capacities must agree (asserted in debug builds).
    pub fn difference_with(&mut self, other: &PodSet) {
        debug_assert_eq!(self.len, other.len, "capacity mismatch in difference_with");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
    }

    /// `|self ∪ other|` without materializing the union: one fused
    /// or-and-popcount pass over the blocks. Capacities must agree
    /// (asserted in debug builds).
    pub fn union_count(&self, other: &PodSet) -> usize {
        debug_assert_eq!(self.len, other.len, "capacity mismatch in union_count");
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing `u64` blocks, 64 pods per word in ascending index order
    /// (slack bits of the last word are always zero). For callers that want
    /// to run their own fused block kernels over several sets at once.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Iterates member indices in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// A compiled ingress/egress rule: the peers resolved to a pod bitset, the
/// port list kept for per-destination resolution of named ports.
#[derive(Debug, Clone)]
struct CompiledRule {
    /// Pods admitted as peers (`from` for ingress, `to` for egress).
    peer_pods: PodSet,
    /// Allowed ports; empty allows all.
    ports: Vec<PolicyPort>,
}

/// One compiled NetworkPolicy.
#[derive(Debug, Clone)]
struct CompiledPolicy {
    /// Pods the policy selects (same namespace + pod selector).
    matched: PodSet,
    applies_ingress: bool,
    applies_egress: bool,
    ingress: Vec<CompiledRule>,
    egress: Vec<CompiledRule>,
}

/// Per-pod data needed at verdict time.
#[derive(Debug, Clone)]
struct PodEntry {
    name: String,
    host_network: bool,
    /// Parsed pod IP; `None` never falls inside any ipBlock.
    ip: Option<u32>,
    /// First-wins named container ports, matching
    /// [`ij_model::Pod::resolve_port_name`].
    named_ports: Vec<(String, u16)>,
}

/// A compiled ipBlock peer; malformed CIDRs never match.
#[derive(Debug, Clone)]
struct CompiledIpBlock {
    cidr: Option<(u32, u32)>,
    except: Vec<Option<(u32, u32)>>,
}

impl CompiledIpBlock {
    fn admits(&self, ip: Option<u32>) -> bool {
        let (Some(ip), Some((net, mask))) = (ip, self.cidr) else {
            return false;
        };
        if (ip & mask) != (net & mask) {
            return false;
        }
        !self
            .except
            .iter()
            .any(|e| matches!(e, Some((net, mask)) if (ip & mask) == (net & mask)))
    }
}

/// A compiled `from`/`to` peer.
#[derive(Debug, Clone)]
struct CompiledPeer {
    pod_selector: Option<SelectorMatcher>,
    namespace_selector: Option<SelectorMatcher>,
    ip_block: Option<CompiledIpBlock>,
}

/// The compiled policy index over one snapshot of a cluster.
///
/// Build with [`Cluster::policy_index`] (cached per generation) or
/// [`PolicyIndex::build`] for a one-off. Pod indices follow
/// [`Cluster::pods`] order.
///
/// ```
/// use ij_cluster::{Cluster, ClusterConfig, ConnectionVerdict};
/// use ij_model::Protocol;
///
/// // A web pod declaring 8080, a client, and a policy allowing only
/// // ingress to the web pod on its declared port.
/// let manifests = "\
/// apiVersion: v1
/// kind: Pod
/// metadata:
///   name: web
///   labels:
///     app: web
/// spec:
///   containers:
///     - name: c
///       image: img/web
///       ports:
///         - containerPort: 8080
/// ---
/// apiVersion: v1
/// kind: Pod
/// metadata:
///   name: client
/// spec:
///   containers:
///     - name: c
///       image: img/client
/// ---
/// apiVersion: networking.k8s.io/v1
/// kind: NetworkPolicy
/// metadata:
///   name: web-8080
/// spec:
///   podSelector:
///     matchLabels:
///       app: web
///   policyTypes:
///     - Ingress
///   ingress:
///     - ports:
///         - port: 8080
/// ";
///
/// let mut cluster = Cluster::new(ClusterConfig::default());
/// for object in ij_model::decode_manifests(manifests).unwrap() {
///     cluster.apply(object).unwrap();
/// }
/// cluster.reconcile();
///
/// let index = cluster.policy_index(); // Arc-cached until the next mutation
/// let client = index.pod_index("default/client").unwrap();
/// let web = index.pod_index("default/web").unwrap();
/// assert!(matches!(
///     index.verdict(client, web, 8080, Protocol::Tcp),
///     ConnectionVerdict::Allowed(_)
/// ));
/// assert_eq!(
///     index.verdict(client, web, 9999, Protocol::Tcp),
///     ConnectionVerdict::DeniedIngress
/// );
/// // Batch form: one whole column of the reachability matrix.
/// assert!(index.allowed_sources(web, 8080, Protocol::Tcp).contains(client));
/// ```
#[derive(Debug, Clone)]
pub struct PolicyIndex {
    pods: Vec<PodEntry>,
    by_name: HashMap<String, usize>,
    policies: Vec<CompiledPolicy>,
    /// Per pod: indices of policies selecting it for ingress.
    ingress_of: Vec<Vec<u32>>,
    /// Per pod: indices of policies selecting it for egress.
    egress_of: Vec<Vec<u32>>,
    /// Pods with at least one egress policy and not on the host network —
    /// the only sources the batch pass must re-check individually.
    egress_constrained: PodSet,
}

/// Namespace intern table: name → dense id, plus the interned label set of
/// each namespace (declared labels + the implicit
/// `kubernetes.io/metadata.name`, as since v1.22).
#[derive(Debug, Default)]
struct NamespaceTable {
    ids: HashMap<String, usize>,
    sets: Vec<LabelSet>,
}

impl NamespaceTable {
    fn id(
        &mut self,
        ns: &str,
        declared: &HashMap<String, ij_model::Labels>,
        interner: &mut LabelInterner,
    ) -> usize {
        if let Some(&id) = self.ids.get(ns) {
            return id;
        }
        let mut labels = declared.get(ns).cloned().unwrap_or_default();
        labels.insert("kubernetes.io/metadata.name", ns);
        let id = self.sets.len();
        self.sets.push(interner.intern(&labels));
        self.ids.insert(ns.to_string(), id);
        id
    }
}

impl PolicyIndex {
    /// Compiles the cluster's current policies and pods.
    pub fn build(cluster: &Cluster) -> Self {
        let mut interner = LabelInterner::new();
        let pods_src = cluster.pods();
        let n = pods_src.len();

        let declared_ns: HashMap<String, ij_model::Labels> =
            cluster.namespace_labels().into_iter().collect();
        let mut namespaces = NamespaceTable::default();

        let mut pod_ns: Vec<usize> = Vec::with_capacity(n);
        let mut pod_labels: Vec<LabelSet> = Vec::with_capacity(n);
        let mut pods: Vec<PodEntry> = Vec::with_capacity(n);
        let mut by_name = HashMap::with_capacity(n);
        for (i, rp) in pods_src.iter().enumerate() {
            pod_ns.push(namespaces.id(&rp.pod.meta.namespace, &declared_ns, &mut interner));
            pod_labels.push(interner.intern(&rp.pod.meta.labels));
            let mut named_ports: Vec<(String, u16)> = Vec::new();
            for (_, port) in rp.pod.declared_ports() {
                if let Some(name) = &port.name {
                    if !named_ports.iter().any(|(n, _)| n == name) {
                        named_ports.push((name.clone(), port.container_port));
                    }
                }
            }
            let entry = PodEntry {
                name: rp.qualified_name(),
                host_network: rp.pod.spec.host_network,
                ip: parse_v4(&rp.ip),
                named_ports,
            };
            by_name.insert(entry.name.clone(), i);
            pods.push(entry);
        }

        // Resolve every policy namespace up front so the namespace table is
        // final before rule compilation reads its label sets.
        let policy_refs = cluster.network_policies();
        let policy_ns_ids: Vec<usize> = policy_refs
            .iter()
            .map(|np| namespaces.id(&np.meta.namespace, &declared_ns, &mut interner))
            .collect();
        let mut policies = Vec::with_capacity(policy_refs.len());
        for (np, &policy_ns) in policy_refs.iter().copied().zip(&policy_ns_ids) {
            policies.push(Self::compile_policy(
                np,
                policy_ns,
                &mut interner,
                &pods,
                &pod_ns,
                &pod_labels,
                &namespaces.sets,
            ));
        }

        let mut ingress_of = vec![Vec::new(); n];
        let mut egress_of = vec![Vec::new(); n];
        for (pi, policy) in policies.iter().enumerate() {
            for pod in policy.matched.ones() {
                if policy.applies_ingress {
                    ingress_of[pod].push(pi as u32);
                }
                if policy.applies_egress {
                    egress_of[pod].push(pi as u32);
                }
            }
        }
        // Egress-constrained = has-egress-policy \ host-network, as one
        // block-wise difference.
        let mut egress_constrained = PodSet::empty(n);
        let mut host_net = PodSet::empty(n);
        for i in 0..n {
            if !egress_of[i].is_empty() {
                egress_constrained.insert(i);
            }
            if pods[i].host_network {
                host_net.insert(i);
            }
        }
        egress_constrained.difference_with(&host_net);

        PolicyIndex {
            pods,
            by_name,
            policies,
            ingress_of,
            egress_of,
            egress_constrained,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_policy(
        np: &NetworkPolicy,
        policy_ns: usize,
        interner: &mut LabelInterner,
        pods: &[PodEntry],
        pod_ns: &[usize],
        pod_labels: &[LabelSet],
        ns_label_sets: &[LabelSet],
    ) -> CompiledPolicy {
        let n = pods.len();
        let selector = SelectorMatcher::compile(&np.spec.pod_selector, interner);
        let mut matched = PodSet::empty(n);
        for i in 0..n {
            if pod_ns[i] == policy_ns && selector.matches(&pod_labels[i]) {
                matched.insert(i);
            }
        }

        let mut compile_rules = |rules: &[ij_model::NetworkPolicyRule]| -> Vec<CompiledRule> {
            rules
                .iter()
                .map(|rule| {
                    let peer_pods = if rule.peers.is_empty() {
                        PodSet::full(n)
                    } else {
                        let compiled: Vec<CompiledPeer> = rule
                            .peers
                            .iter()
                            .map(|peer| CompiledPeer {
                                pod_selector: peer
                                    .pod_selector
                                    .as_ref()
                                    .map(|s| SelectorMatcher::compile(s, interner)),
                                namespace_selector: peer
                                    .namespace_selector
                                    .as_ref()
                                    .map(|s| SelectorMatcher::compile(s, interner)),
                                ip_block: peer.ip_block.as_ref().map(|b| CompiledIpBlock {
                                    cidr: parse_cidr(&b.cidr),
                                    except: b.except.iter().map(|e| parse_cidr(e)).collect(),
                                }),
                            })
                            .collect();
                        let mut set = PodSet::empty(n);
                        for i in 0..n {
                            let admitted = compiled.iter().any(|peer| {
                                if let Some(block) = &peer.ip_block {
                                    if block.admits(pods[i].ip) {
                                        return true;
                                    }
                                }
                                // A host-network peer presents the node IP;
                                // pod selectors never match it.
                                if pods[i].host_network {
                                    return false;
                                }
                                match (&peer.pod_selector, &peer.namespace_selector) {
                                    (None, None) => peer.ip_block.is_none(),
                                    (Some(ps), None) => {
                                        pod_ns[i] == policy_ns && ps.matches(&pod_labels[i])
                                    }
                                    (None, Some(ns)) => ns.matches(&ns_label_sets[pod_ns[i]]),
                                    (Some(ps), Some(ns)) => {
                                        ns.matches(&ns_label_sets[pod_ns[i]])
                                            && ps.matches(&pod_labels[i])
                                    }
                                }
                            });
                            if admitted {
                                set.insert(i);
                            }
                        }
                        set
                    };
                    CompiledRule {
                        peer_pods,
                        ports: rule.ports.clone(),
                    }
                })
                .collect()
        };

        CompiledPolicy {
            matched,
            applies_ingress: np.applies_to(PolicyType::Ingress),
            applies_egress: np.applies_to(PolicyType::Egress),
            ingress: compile_rules(&np.spec.ingress),
            egress: compile_rules(&np.spec.egress),
        }
    }

    /// Number of running pods the index covers.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Number of compiled policies.
    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    /// Index of a pod by qualified `namespace/name`.
    pub fn pod_index(&self, qualified: &str) -> Option<usize> {
        self.by_name.get(qualified).copied()
    }

    /// Qualified name of the pod at `index`.
    pub fn pod_name(&self, index: usize) -> &str {
        &self.pods[index].name
    }

    /// True when the pod at `index` runs on the host network.
    pub fn is_host_network(&self, index: usize) -> bool {
        self.pods[index].host_network
    }

    /// Pods selected by the compiled policy at `index` (test/debug aid).
    pub fn matched_pods(&self, policy: usize) -> &PodSet {
        &self.policies[policy].matched
    }

    fn ports_cover(&self, ports: &[PolicyPort], dst: usize, port: u16, protocol: Protocol) -> bool {
        if ports.is_empty() {
            return true;
        }
        let named = &self.pods[dst].named_ports;
        let resolve =
            |name: &str| -> Option<u16> { named.iter().find(|(n, _)| n == name).map(|(_, p)| *p) };
        ports.iter().any(|p| p.covers(port, protocol, &resolve))
    }

    fn ingress_allows(
        &self,
        policy: u32,
        src: usize,
        dst: usize,
        port: u16,
        protocol: Protocol,
    ) -> bool {
        self.policies[policy as usize]
            .ingress
            .iter()
            .any(|r| r.peer_pods.contains(src) && self.ports_cover(&r.ports, dst, port, protocol))
    }

    fn egress_allows(&self, policy: u32, dst: usize, port: u16, protocol: Protocol) -> bool {
        self.policies[policy as usize]
            .egress
            .iter()
            .any(|r| r.peer_pods.contains(dst) && self.ports_cover(&r.ports, dst, port, protocol))
    }

    /// Evaluates whether the pod at `src` may connect to the pod at `dst` on
    /// `(port, protocol)`. Identical to
    /// [`PolicyEngine::verdict`](crate::PolicyEngine::verdict) over the same
    /// cluster state.
    pub fn verdict(
        &self,
        src: usize,
        dst: usize,
        port: u16,
        protocol: Protocol,
    ) -> ConnectionVerdict {
        // M7: a destination on the host network is never policy-protected.
        if self.pods[dst].host_network {
            return ConnectionVerdict::Allowed(AllowReason::HostNetworkBypass);
        }
        let ingress = &self.ingress_of[dst];
        // Egress enforcement applies to the source — unless the source is on
        // the host network, where its traffic never hits the pod datapath.
        let egress: &[u32] = if self.pods[src].host_network {
            &[]
        } else {
            &self.egress_of[src]
        };
        if !ingress.is_empty()
            && !ingress
                .iter()
                .any(|&p| self.ingress_allows(p, src, dst, port, protocol))
        {
            return ConnectionVerdict::DeniedIngress;
        }
        if !egress.is_empty()
            && !egress
                .iter()
                .any(|&p| self.egress_allows(p, dst, port, protocol))
        {
            return ConnectionVerdict::DeniedEgress;
        }
        if ingress.is_empty() && egress.is_empty() {
            ConnectionVerdict::Allowed(AllowReason::DefaultAllow)
        } else {
            ConnectionVerdict::Allowed(AllowReason::PolicyRuleMatch)
        }
    }

    /// Convenience verdict over [`RunningPod`]s (resolves both by name).
    pub fn verdict_for(
        &self,
        src: &RunningPod,
        dst: &RunningPod,
        port: u16,
        protocol: Protocol,
    ) -> Option<ConnectionVerdict> {
        let src = self.pod_index(&src.qualified_name())?;
        let dst = self.pod_index(&dst.qualified_name())?;
        Some(self.verdict(src, dst, port, protocol))
    }

    /// The whole source column of the reachability matrix for one
    /// destination socket: bit `i` is set iff pod `i` may connect to `dst`
    /// on `(port, protocol)` under the current policies. Equal to running
    /// [`verdict`](Self::verdict) for every source.
    pub fn allowed_sources(&self, dst: usize, port: u16, protocol: Protocol) -> PodSet {
        let n = self.pods.len();
        // M7: a host-network destination bypasses enforcement entirely —
        // the verdict short-circuits before even consulting egress.
        if self.pods[dst].host_network {
            return PodSet::full(n);
        }
        let mut allowed = if self.ingress_of[dst].is_empty() {
            PodSet::full(n)
        } else {
            let mut set = PodSet::empty(n);
            for &p in &self.ingress_of[dst] {
                for rule in &self.policies[p as usize].ingress {
                    if self.ports_cover(&rule.ports, dst, port, protocol) {
                        set.union_with(&rule.peer_pods);
                    }
                }
            }
            set
        };
        // Only sources that are both ingress-admitted *and* egress-
        // constrained need the per-source rule walk; the block-wise
        // intersection prunes the candidate list before any rule is read.
        let mut candidates = self.egress_constrained.clone();
        candidates.intersect_with(&allowed);
        for src in candidates.ones() {
            if !self.egress_of[src]
                .iter()
                .any(|&p| self.egress_allows(p, dst, port, protocol))
            {
                allowed.remove(src);
            }
        }
        allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BehaviorRegistry;
    use crate::cluster::{Cluster, ClusterConfig};
    use ij_model::{
        Container, ContainerPort, LabelSelector, Labels, NetworkPolicy, Object, ObjectMeta, Pod,
        PodSpec,
    };

    type PodSpecTuple<'a> = (&'a str, &'a [(&'a str, &'a str)], bool);

    fn cluster_with_pods(specs: &[PodSpecTuple<'_>]) -> Cluster {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            seed: 1,
            behaviors: BehaviorRegistry::new(),
        });
        for (name, labels, host) in specs {
            cluster
                .apply(Object::Pod(Pod::new(
                    ObjectMeta::named(*name)
                        .with_labels(Labels::from_pairs(labels.iter().copied())),
                    PodSpec {
                        containers: vec![Container::new("c", "img")
                            .with_ports(vec![ContainerPort::named("http", 8080)])],
                        host_network: *host,
                        node_name: None,
                    },
                )))
                .unwrap();
        }
        cluster.reconcile();
        cluster
    }

    #[test]
    fn podset_full_and_ones() {
        let full = PodSet::full(70);
        assert_eq!(full.count(), 70);
        assert!(full.contains(69));
        assert!(!full.contains(70));
        let mut set = PodSet::empty(70);
        set.insert(0);
        set.insert(64);
        set.insert(69);
        assert_eq!(set.ones().collect::<Vec<_>>(), vec![0, 64, 69]);
        set.remove(64);
        assert_eq!(set.count(), 2);
    }

    #[test]
    fn podset_block_kernels_match_per_bit_ops() {
        // 130 pods = two full words plus a partial third, so every kernel
        // crosses word boundaries and touches the slack bits.
        let n = 130;
        let mut a = PodSet::empty(n);
        let mut b = PodSet::empty(n);
        for i in (0..n).step_by(3) {
            a.insert(i);
        }
        for i in (0..n).step_by(5) {
            b.insert(i);
        }
        let expect = |f: fn(usize) -> bool| (0..n).filter(|&i| f(i)).collect::<Vec<_>>();

        assert_eq!(
            a.union_count(&b),
            expect(|i| i % 3 == 0 || i % 5 == 0).len()
        );

        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.ones().collect::<Vec<_>>(), expect(|i| i % 15 == 0));

        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(
            diff.ones().collect::<Vec<_>>(),
            expect(|i| i % 3 == 0 && i % 5 != 0)
        );

        let mut union = a.clone();
        union.union_with(&b);
        assert_eq!(union.count(), a.union_count(&b));

        // Slack bits stay zero through every kernel, so `words()` popcounts
        // agree with `count()`.
        assert_eq!(
            union
                .words()
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>(),
            union.count()
        );
    }

    #[test]
    fn podset_contains_is_total_but_mutators_are_bounded() {
        // The query form answers `false` out of range...
        let set = PodSet::full(70);
        assert!(set.contains(69));
        assert!(!set.contains(70));
        assert!(!set.contains(1 << 20));
        // ...and in-range mutation round-trips.
        let mut set = PodSet::empty(70);
        set.insert(69);
        assert!(set.contains(69));
        set.remove(69);
        assert_eq!(set.count(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range for capacity 70")]
    fn podset_insert_rejects_slack_bits_in_debug() {
        // Index 70 lands inside the second word's slack region — without
        // the bound assert it would silently corrupt `count()`.
        PodSet::empty(70).insert(70);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range for capacity 70")]
    fn podset_remove_rejects_out_of_range_in_debug() {
        PodSet::full(70).remove(75);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn podset_set_ops_reject_capacity_mismatch_in_debug() {
        // A silent zip would truncate the longer operand instead.
        PodSet::full(70).union_with(&PodSet::full(130));
    }

    #[test]
    fn matched_bitset_tracks_selector() {
        let mut cluster = cluster_with_pods(&[
            ("web", &[("app", "web")], false),
            ("db", &[("app", "db")], false),
        ]);
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                ObjectMeta::named("lock-db"),
                LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
            )))
            .unwrap();
        let index = PolicyIndex::build(&cluster);
        assert_eq!(index.policy_count(), 1);
        let db = index.pod_index("default/db").unwrap();
        let web = index.pod_index("default/web").unwrap();
        assert!(index.matched_pods(0).contains(db));
        assert!(!index.matched_pods(0).contains(web));
        assert_eq!(
            index.verdict(web, db, 8080, Protocol::Tcp),
            ConnectionVerdict::DeniedIngress
        );
        assert!(index.verdict(db, web, 8080, Protocol::Tcp).is_allowed());
    }

    #[test]
    fn allowed_sources_matches_per_pair_verdicts() {
        let mut cluster = cluster_with_pods(&[
            ("api", &[("app", "api")], false),
            ("db", &[("app", "db")], false),
            ("other", &[("app", "other")], false),
            ("exporter", &[("app", "exporter")], true),
        ]);
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::allow_ingress(
                ObjectMeta::named("allow-api"),
                LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
                vec![ij_model::NetworkPolicyPeer::pods(
                    LabelSelector::from_labels(Labels::from_pairs([("app", "api")])),
                )],
                vec![ij_model::PolicyPort::tcp(8080)],
            )))
            .unwrap();
        let index = PolicyIndex::build(&cluster);
        for dst in 0..index.pod_count() {
            for port in [8080u16, 9999] {
                let column = index.allowed_sources(dst, port, Protocol::Tcp);
                for src in 0..index.pod_count() {
                    assert_eq!(
                        column.contains(src),
                        index.verdict(src, dst, port, Protocol::Tcp).is_allowed(),
                        "src={src} dst={dst} port={port}"
                    );
                }
            }
        }
    }
}
