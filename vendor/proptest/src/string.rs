//! `string_regex`: a strategy producing strings matching a regex subset.

use crate::regex::Pattern;
use crate::{Strategy, TestRng};

pub struct RegexGeneratorStrategy {
    pattern: Pattern,
}

/// Compiles `pattern` into a string strategy. Errors (unsupported
/// constructs, malformed classes) are returned so callers can `.expect`.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
    Ok(RegexGeneratorStrategy {
        pattern: Pattern::parse(pattern)?,
    })
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.pattern.generate(rng)
    }
}
