//! Differential conformance over real on-disk charts.
//!
//! The analyzer's trustworthiness rests on a chain of equivalences: the
//! compiled render equals the naive render byte-for-byte, the value-tree
//! render equals the emit-and-reparse text path, the compiled policy index
//! answers exactly like the naive [`PolicyEngine`] oracle, and interned
//! findings carry the identity of their owned originals. Each link has its
//! own property tests over *generated* inputs; this module closes the loop
//! over *real* chart shapes: every fixture chart under a directory is pushed
//! through every pipeline pair and any disagreement is reported.
//!
//! The outcome per chart is total — there are no silent skips:
//!
//! * [`ChartStatus::Conformant`] — every differential check agreed;
//! * [`ChartStatus::Unsupported`] — the chart exercises a feature the
//!   engine deliberately rejects (YAML anchors, packed subcharts, unknown
//!   template functions, …); the typed error text is the named feature;
//! * [`ChartStatus::Divergent`] — two pipelines that must agree did not.
//!   This is always a bug.
//!
//! [`ConformanceReport::to_json`] renders a stable machine-readable
//! artifact (committed as `CONFORMANCE.json` and regression-checked like
//! the `BENCH_*.json` baselines); [`ConformanceReport::to_markdown`] ranks
//! the losses — divergences first, then unsupported features by how many
//! charts they cost.

use ij_chart::{stamp_namespace, Chart, Release};
use ij_cluster::{Cluster, ClusterConfig, PolicyEngine};
use ij_core::{chart_defines_network_policies, Analyzer, CompactFinding, SymbolTable};
use ij_model::{NetworkPolicy, Object, Protocol};
use ij_probe::{HostBaseline, RuntimeAnalyzer};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Namespace every conformance release installs into; deliberately not
/// `default` so the namespace-stamping step of decode is exercised.
const CONFORM_NAMESPACE: &str = "conform";

/// Extra probe ports checked beyond the ports the chart's pods declare:
/// a well-known low port, a database port, and an ephemeral-range port.
const EXTRA_PORTS: [u16; 3] = [80, 5432, 40000];

/// Why a fixtures directory could not be walked at all.
#[derive(Debug)]
pub enum ConformanceError {
    /// The fixtures path is not a directory.
    NotADirectory(PathBuf),
    /// The fixtures directory holds no chart subdirectories.
    NoCharts(PathBuf),
    /// Reading the directory failed.
    Io(PathBuf, String),
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::NotADirectory(p) => {
                write!(f, "{}: not a directory", p.display())
            }
            ConformanceError::NoCharts(p) => {
                write!(f, "{}: no chart directories found", p.display())
            }
            ConformanceError::Io(p, msg) => write!(f, "{}: {msg}", p.display()),
        }
    }
}

impl std::error::Error for ConformanceError {}

/// Terminal state of one chart's conformance run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChartStatus {
    /// Every differential check agreed.
    Conformant,
    /// The chart uses a feature the engine rejects with a typed error.
    Unsupported {
        /// The typed error text naming the rejected feature.
        feature: String,
    },
    /// Two pipelines that must agree disagreed — a bug, not a limitation.
    Divergent {
        /// Which differential check failed.
        check: String,
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl ChartStatus {
    /// Machine-readable status tag used in the JSON artifact.
    pub fn tag(&self) -> &'static str {
        match self {
            ChartStatus::Conformant => "conformant",
            ChartStatus::Unsupported { .. } => "unsupported",
            ChartStatus::Divergent { .. } => "divergent",
        }
    }
}

/// One chart's conformance outcome plus the work the checks covered.
#[derive(Debug, Clone)]
pub struct ChartConformance {
    /// Chart directory name (not the `Chart.yaml` name, which an
    /// unsupported chart may never surrender).
    pub chart: String,
    /// Terminal status.
    pub status: ChartStatus,
    /// Rendered objects (0 when the chart never rendered).
    pub objects: usize,
    /// Findings produced by the hybrid analyzer (and identity-checked).
    pub findings: usize,
    /// Policy verdicts compared between the index and the naive engine.
    pub verdicts: usize,
}

/// The full differential run over a fixtures directory.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Per-chart outcomes, sorted by chart name.
    pub charts: Vec<ChartConformance>,
}

impl ConformanceReport {
    /// Number of fully conformant charts.
    pub fn conformant(&self) -> usize {
        self.count(|s| matches!(s, ChartStatus::Conformant))
    }

    /// Number of charts rejected over an unsupported feature.
    pub fn unsupported(&self) -> usize {
        self.count(|s| matches!(s, ChartStatus::Unsupported { .. }))
    }

    /// Number of charts where two pipelines disagreed.
    pub fn divergent(&self) -> usize {
        self.count(|s| matches!(s, ChartStatus::Divergent { .. }))
    }

    fn count(&self, pred: impl Fn(&ChartStatus) -> bool) -> usize {
        self.charts.iter().filter(|c| pred(&c.status)).count()
    }

    /// True when every chart is conformant (no losses at all).
    pub fn all_conformant(&self) -> bool {
        self.conformant() == self.charts.len()
    }

    /// Stable machine-readable JSON (sorted charts, no timestamps), the
    /// `CONFORMANCE.json` regression artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"charts\": [\n");
        for (i, c) in self.charts.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"chart\": \"{}\",\n", escape(&c.chart)));
            out.push_str(&format!("      \"status\": \"{}\",\n", c.status.tag()));
            match &c.status {
                ChartStatus::Unsupported { feature } => {
                    out.push_str(&format!("      \"feature\": \"{}\",\n", escape(feature)));
                }
                ChartStatus::Divergent { check, detail } => {
                    out.push_str(&format!("      \"check\": \"{}\",\n", escape(check)));
                    out.push_str(&format!("      \"detail\": \"{}\",\n", escape(detail)));
                }
                ChartStatus::Conformant => {}
            }
            out.push_str(&format!("      \"objects\": {},\n", c.objects));
            out.push_str(&format!("      \"findings\": {},\n", c.findings));
            out.push_str(&format!("      \"verdicts\": {}\n", c.verdicts));
            out.push_str(if i + 1 == self.charts.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ],\n  \"summary\": {\n");
        out.push_str(&format!("    \"charts\": {},\n", self.charts.len()));
        out.push_str(&format!("    \"conformant\": {},\n", self.conformant()));
        out.push_str(&format!("    \"unsupported\": {},\n", self.unsupported()));
        out.push_str(&format!("    \"divergent\": {}\n", self.divergent()));
        out.push_str("  }\n}\n");
        out
    }

    /// The ranked markdown loss report (`CONFORMANCE.md`): divergences
    /// first (each one is a bug), then unsupported features ranked by the
    /// number of charts they cost, then the full per-chart table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Chart-ingestion conformance\n\n");
        out.push_str(&format!(
            "{} fixture chart(s): {} conformant, {} unsupported, {} divergent.\n\n",
            self.charts.len(),
            self.conformant(),
            self.unsupported(),
            self.divergent()
        ));

        out.push_str("## Divergences (bugs)\n\n");
        let divergent: Vec<_> = self
            .charts
            .iter()
            .filter_map(|c| match &c.status {
                ChartStatus::Divergent { check, detail } => Some((c, check, detail)),
                _ => None,
            })
            .collect();
        if divergent.is_empty() {
            out.push_str("None — every supported chart agreed across all pipeline pairs.\n\n");
        } else {
            for (c, check, detail) in divergent {
                out.push_str(&format!("* **{}** — `{}`: {}\n", c.chart, check, detail));
            }
            out.push('\n');
        }

        out.push_str("## Unsupported features (ranked by charts lost)\n\n");
        let mut features: Vec<(String, Vec<&str>)> = Vec::new();
        for c in &self.charts {
            if let ChartStatus::Unsupported { feature } = &c.status {
                match features.iter_mut().find(|(f, _)| f == feature) {
                    Some((_, charts)) => charts.push(&c.chart),
                    None => features.push((feature.clone(), vec![&c.chart])),
                }
            }
        }
        features.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(&b.0)));
        if features.is_empty() {
            out.push_str("None — every fixture chart is fully supported.\n\n");
        } else {
            out.push_str("| charts lost | feature | charts |\n|---|---|---|\n");
            for (feature, charts) in &features {
                out.push_str(&format!(
                    "| {} | {} | {} |\n",
                    charts.len(),
                    feature.replace('|', "\\|"),
                    charts.join(", ")
                ));
            }
            out.push('\n');
        }

        out.push_str("## Per-chart results\n\n");
        out.push_str("| chart | status | objects | findings | verdicts |\n|---|---|---|---|---|\n");
        for c in &self.charts {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                c.chart,
                c.status.tag(),
                c.objects,
                c.findings,
                c.verdicts
            ));
        }
        out
    }
}

/// JSON string escaping for the hand-rolled artifact writer.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Walks every chart directory under `fixtures_dir` (sorted by name) and
/// runs the full differential battery on each.
pub fn run_conformance(fixtures_dir: &Path) -> Result<ConformanceReport, ConformanceError> {
    if !fixtures_dir.is_dir() {
        return Err(ConformanceError::NotADirectory(fixtures_dir.to_path_buf()));
    }
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(fixtures_dir)
        .map_err(|e| ConformanceError::Io(fixtures_dir.to_path_buf(), e.to_string()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    if dirs.is_empty() {
        return Err(ConformanceError::NoCharts(fixtures_dir.to_path_buf()));
    }
    let charts = dirs
        .iter()
        .map(|dir| conform_chart(dir, fixtures_dir))
        .collect();
    Ok(ConformanceReport { charts })
}

/// Strips the fixtures-directory prefix out of error text so the committed
/// artifact is byte-stable across checkouts.
fn relativize(message: String, fixtures_dir: &Path) -> String {
    let prefix = format!("{}/", fixtures_dir.display());
    message.replace(&prefix, "")
}

/// Runs the full differential battery on one chart directory.
fn conform_chart(dir: &Path, fixtures_dir: &Path) -> ChartConformance {
    let chart_name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| dir.display().to_string());
    let mut result = ChartConformance {
        chart: chart_name,
        status: ChartStatus::Conformant,
        objects: 0,
        findings: 0,
        verdicts: 0,
    };

    macro_rules! unsupported {
        ($stage:expr, $err:expr) => {{
            result.status = ChartStatus::Unsupported {
                feature: format!("{}: {}", $stage, relativize($err.to_string(), fixtures_dir)),
            };
            return result;
        }};
    }
    macro_rules! divergent {
        ($check:expr, $($detail:tt)*) => {{
            result.status = ChartStatus::Divergent {
                check: $check.to_string(),
                detail: format!($($detail)*),
            };
            return result;
        }};
    }

    // Ingest. A typed ingest error is an unsupported feature, not a bug.
    let chart = match Chart::from_dir(dir) {
        Ok(c) => c,
        Err(e) => unsupported!("ingest", e),
    };
    let release = Release::new(&chart.name, CONFORM_NAMESPACE);

    // Naive render is the reference; its failure marks the chart's template
    // feature set as unsupported (e.g. an unknown function).
    let naive = match chart.render(&release) {
        Ok(r) => r,
        Err(e) => unsupported!("render", e),
    };
    result.objects = naive.objects.len();

    // Compiled render must agree byte-for-byte wherever naive succeeded.
    let compiled = match chart.compile() {
        Ok(c) => c,
        Err(e) => divergent!("compile", "naive render succeeded but compile failed: {e}"),
    };
    let compiled_render = match compiled.render(&release) {
        Ok(r) => r,
        Err(e) => divergent!(
            "compiled-render",
            "naive render succeeded but compiled render failed: {e}"
        ),
    };
    let naive_manifests: Vec<String> = naive.objects.iter().map(|o| o.to_manifest()).collect();
    let compiled_manifests: Vec<String> = compiled_render
        .objects
        .iter()
        .map(|o| o.to_manifest())
        .collect();
    if naive_manifests != compiled_manifests {
        divergent!(
            "compiled-render",
            "compiled render produced {} object(s) vs naive {}; first mismatch: {}",
            compiled_manifests.len(),
            naive_manifests.len(),
            first_mismatch(&naive_manifests, &compiled_manifests)
        );
    }

    // Value-tree render: each document must survive emit + reparse exactly,
    // and decoding the stream under the release namespace must reproduce
    // the naive objects.
    let docs = match compiled.render_values(&release) {
        Ok(d) => d,
        Err(e) => divergent!(
            "render-values",
            "naive render succeeded but render_values failed: {e}"
        ),
    };
    let mut decoded_manifests = Vec::new();
    for doc in docs.iter().filter(|d| !d.is_null()) {
        let text = ij_yaml::to_string(doc);
        let back = match ij_yaml::parse(&text) {
            Ok(v) => v,
            Err(e) => divergent!(
                "value-fixpoint",
                "emitted document failed to reparse: {e}\n{text}"
            ),
        };
        if &back != doc {
            divergent!(
                "value-fixpoint",
                "document changed across emit+reparse:\n{text}"
            );
        }
        let mut obj = match Object::decode(&back) {
            Ok(o) => o,
            Err(e) => divergent!("value-decode", "document failed to decode: {e}\n{text}"),
        };
        stamp_namespace(&mut obj, CONFORM_NAMESPACE);
        decoded_manifests.push(obj.to_manifest());
    }
    if decoded_manifests != naive_manifests {
        divergent!(
            "render-values",
            "value-tree render decoded {} object(s) vs naive {}; first mismatch: {}",
            decoded_manifests.len(),
            naive_manifests.len(),
            first_mismatch(&naive_manifests, &decoded_manifests)
        );
    }

    // Install into a fresh simulated cluster. A denial is a feature gap of
    // the fixture (admission rejected it), not a pipeline divergence.
    let mut cluster = Cluster::new(ClusterConfig::default());
    let baseline = HostBaseline::capture(&cluster);
    if let Err(e) = cluster.install(&naive) {
        unsupported!("install", e);
    }

    // Policy-verdict parity: the compiled index vs the naive engine, for
    // every ordered pod pair over the declared container ports plus probes.
    let policies: Vec<NetworkPolicy> = cluster.network_policies().into_iter().cloned().collect();
    let engine = PolicyEngine::new(&policies, cluster.namespace_labels());
    let index = cluster.policy_index();
    let mut ports: BTreeSet<u16> = EXTRA_PORTS.into_iter().collect();
    for pod in cluster.pods() {
        for container in &pod.pod.spec.containers {
            for port in &container.ports {
                ports.insert(port.container_port);
            }
        }
    }
    for src in cluster.pods() {
        let Some(si) = index.pod_index(&src.qualified_name()) else {
            divergent!(
                "policy-index",
                "{} missing from the index",
                src.qualified_name()
            );
        };
        for dst in cluster.pods() {
            let Some(di) = index.pod_index(&dst.qualified_name()) else {
                divergent!(
                    "policy-index",
                    "{} missing from the index",
                    dst.qualified_name()
                );
            };
            for &port in &ports {
                for protocol in [Protocol::Tcp, Protocol::Udp] {
                    let fast = index.verdict(si, di, port, protocol);
                    let slow = engine.verdict(src, dst, port, protocol);
                    result.verdicts += 1;
                    if fast != slow {
                        divergent!(
                            "policy-verdict",
                            "{} -> {} :{port}/{protocol:?}: index={fast:?} engine={slow:?}",
                            src.qualified_name(),
                            dst.qualified_name()
                        );
                    }
                }
            }
        }
    }

    // Finding-identity parity: interning a finding and resolving it back
    // must preserve both the value and the 64-bit identity.
    let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
    let findings = Analyzer::hybrid().analyze_app(
        &chart.name,
        &naive.objects,
        &cluster,
        Some(&runtime),
        chart_defines_network_policies(&chart),
    );
    result.findings = findings.len();
    let mut table = SymbolTable::default();
    for finding in &findings {
        let compact = CompactFinding::intern(finding, &mut table);
        if compact.identity(&table) != finding.identity() {
            divergent!(
                "finding-identity",
                "{}: interned identity {:#x} != owned identity {:#x}",
                finding.object,
                compact.identity(&table),
                finding.identity()
            );
        }
        let resolved = compact.resolve(&table);
        if &resolved != finding {
            divergent!(
                "finding-identity",
                "{}: finding changed across intern+resolve",
                finding.object
            );
        }
    }

    result
}

/// Points at the first differing pair for a divergence message.
fn first_mismatch(a: &[String], b: &[String]) -> String {
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            return format!("object {i}:\n--- naive ---\n{x}\n--- other ---\n{y}");
        }
    }
    format!("lengths differ ({} vs {})", a.len(), b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ij-conform-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir scratch");
        dir
    }

    fn write(path: &Path, content: &str) {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write");
    }

    fn demo_chart(dir: &Path) {
        write(&dir.join("Chart.yaml"), "name: demo\nversion: 0.1.0\n");
        write(&dir.join("values.yaml"), "port: 8080\n");
        write(
            &dir.join("templates/deploy.yaml"),
            "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-app
spec:
  replicas: 1
  selector:
    matchLabels:
      app: demo
  template:
    metadata:
      labels:
        app: demo
    spec:
      containers:
        - name: app
          image: img/app
          ports:
            - containerPort: {{ .Values.port }}
",
        );
    }

    #[test]
    fn conformant_chart_reports_work_done() {
        let root = scratch("ok");
        demo_chart(&root.join("demo"));
        let report = run_conformance(&root).expect("runs");
        assert_eq!(report.charts.len(), 1);
        assert_eq!(report.charts[0].status, ChartStatus::Conformant);
        assert_eq!(report.charts[0].objects, 1);
        assert!(report.charts[0].verdicts > 0, "pods were compared");
        assert!(report.all_conformant());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unsupported_feature_is_reported_not_skipped() {
        let root = scratch("unsupported");
        demo_chart(&root.join("demo"));
        let bad = root.join("anchored");
        write(&bad.join("Chart.yaml"), "name: anchored\nversion: 0.1.0\n");
        write(&bad.join("values.yaml"), "a: &x\n  b: 1\n");
        let report = run_conformance(&root).expect("runs");
        assert_eq!(report.charts.len(), 2, "no silent skips");
        let anchored = &report.charts[0];
        assert_eq!(anchored.chart, "anchored");
        match &anchored.status {
            ChartStatus::Unsupported { feature } => {
                assert!(feature.contains("anchor"), "{feature}");
                assert!(
                    !feature.contains(&root.display().to_string()),
                    "paths are relativized for stable artifacts: {feature}"
                );
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        assert!(!report.all_conformant());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_fixtures_directory_is_an_error() {
        let root = scratch("none");
        assert!(matches!(
            run_conformance(&root),
            Err(ConformanceError::NoCharts(_))
        ));
        assert!(matches!(
            run_conformance(&root.join("missing")),
            Err(ConformanceError::NotADirectory(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let report = ConformanceReport {
            charts: vec![
                ChartConformance {
                    chart: "a".into(),
                    status: ChartStatus::Conformant,
                    objects: 2,
                    findings: 1,
                    verdicts: 8,
                },
                ChartConformance {
                    chart: "b".into(),
                    status: ChartStatus::Unsupported {
                        feature: "uses \"quotes\"\nand newlines".into(),
                    },
                    objects: 0,
                    findings: 0,
                    verdicts: 0,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"status\": \"conformant\""));
        assert!(json.contains("uses \\\"quotes\\\"\\nand newlines"));
        assert!(json.contains("\"unsupported\": 1"));
        let md = report.to_markdown();
        assert!(md.contains("ranked by charts lost"));
        assert!(md.contains("| a | conformant | 2 | 1 | 8 |"));
    }
}
